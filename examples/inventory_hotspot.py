"""An aggregate-field hot spot, three ways (paper Section 8).

One quantity-on-hand counter takes every update in the company. The
naive design serializes everything behind one exclusive lock; O'Neil's
escrow method (the paper's cited comparator) overlaps transactions but
stays centralized; DvP spreads the counter across the warehouses so
each sale is a local transaction.

Run:  python examples/inventory_hotspot.py
"""

from repro.baselines.common import BaselineConfig
from repro.baselines.escrow import CentralCounterSystem
from repro.core import CounterDomain, DvPSystem, SystemConfig
from repro.metrics.collector import Collector
from repro.net.link import LinkConfig
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver
from repro.workloads.inventory import InventoryWorkload

WAREHOUSES = [f"wh{index}" for index in range(6)]
WORK = 2.0          # time each transaction computes while holding its claim
RATE = 0.07         # arrivals per warehouse per time unit
DURATION = 500.0


def drive(system, sites) -> Collector:
    config = WorkloadConfig(arrival_rate=RATE, duration=DURATION,
                            mix=OpMix(reserve=0.75, cancel=0.25),
                            amount_low=1, amount_high=2, work=WORK)
    source = InventoryWorkload(["sku-hot"], config)
    collector = Collector()
    WorkloadDriver(system.sim, system, sites, source, config,
                   collector).install()
    system.run_for(DURATION + 120.0)
    return collector


def main() -> None:
    print(f"== One hot counter, {len(WAREHOUSES)} warehouses, "
          f"work={WORK}/txn ==\n")
    rows = []

    for mode in ("lock", "escrow"):
        system = CentralCounterSystem(
            list(WAREHOUSES), central=WAREHOUSES[0], mode=mode, seed=3,
            link=LinkConfig(base_delay=2.0),
            config=BaselineConfig(txn_timeout=30.0))
        system.add_item("sku-hot", 1_000_000)
        collector = drive(system, list(WAREHOUSES))
        rows.append((f"central {mode}", collector))

    system = DvPSystem(SystemConfig(
        sites=list(WAREHOUSES), seed=3, txn_timeout=30.0,
        link=LinkConfig(base_delay=2.0)))
    system.add_item("sku-hot", CounterDomain(), total=1_000_000)
    collector = drive(system, list(WAREHOUSES))
    system.auditor.assert_ok()
    rows.append(("DvP fragments", collector))

    print(f"  {'design':<16} {'commits':>8} {'commit%':>8} "
          f"{'throughput':>11} {'p50':>7} {'p95':>7}")
    for name, collector in rows:
        summary = collector.latency_summary()
        print(f"  {name:<16} {len(collector.committed):>8} "
              f"{100 * collector.commit_rate():>7.1f}% "
              f"{collector.throughput(DURATION):>11.3f} "
              f"{summary.p50:>7.1f} {summary.p95:>7.1f}")
    print("\n  the exclusive lock serializes the company; escrow overlaps "
          "but pays two central round trips; DvP sells out of the local "
          "fragment at local latency.")


if __name__ == "__main__":
    main()
