"""Airline reservations straight through a network partition.

The scenario the paper's introduction motivates: ticket counters at
four airports keep selling seats while the network between coasts is
down, with zero failure-detection machinery — sites only ever see
their own timeouts. After the partition heals, the books balance to
the seat.

Run:  python examples/airline_partition.py
"""

from repro.core import CounterDomain, DvPSystem, SystemConfig
from repro.metrics.collector import Collector
from repro.net.link import LinkConfig
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver

SITES = ["JFK", "ORD", "DEN", "SFO"]
PARTITION = ([["JFK", "ORD"], ["DEN", "SFO"]], 100.0, 300.0)
FLIGHTS = {"UA100": 72, "UA200": 48}


def main() -> None:
    print("== Selling seats through a coast-to-coast partition ==")
    system = DvPSystem(SystemConfig(
        sites=list(SITES), seed=7, txn_timeout=15.0,
        link=LinkConfig(base_delay=2.0, jitter=1.0,
                        loss_probability=0.05)))
    for flight, seats in FLIGHTS.items():
        system.add_item(flight, CounterDomain(), total=seats)
        print(f"  {flight}: {seats} seats split across "
              f"{', '.join(SITES)}")

    workload_config = WorkloadConfig(
        arrival_rate=0.06, duration=400.0,
        mix=OpMix(reserve=0.6, cancel=0.25, transfer=0.15))
    source = AirlineWorkload(list(FLIGHTS), workload_config)
    collector = Collector()
    WorkloadDriver(system.sim, system, SITES, source, workload_config,
                   collector).install()

    groups, split_at, heal_at = PARTITION
    system.sim.at(split_at, lambda: system.network.partition(groups))
    system.sim.at(heal_at, system.network.heal)
    print(f"  partition {groups[0]} | {groups[1]} "
          f"from t={split_at} to t={heal_at}")

    system.run_until(400.0)
    system.run_for(120.0)  # settle

    window = collector.in_window(split_at, heal_at)
    print(f"\n  during the partition: {len(window.results)} transactions "
          f"decided, {len(window.committed)} committed "
          f"({100 * window.commit_rate():.1f}%)")
    per_site: dict[str, int] = {}
    for result in window.committed:
        per_site[result.site] = per_site.get(result.site, 0) + 1
    for site in SITES:
        print(f"    {site}: {per_site.get(site, 0)} commits "
              f"(group {'A' if site in groups[0] else 'B'})")

    print("\n  after healing, the books:")
    for flight in FLIGHTS:
        report = system.auditor.check(flight)
        status = "balanced" if report.ok else "VIOLATION"
        print(f"    {flight}: fragments {report.per_site} + in-flight "
              f"{report.live_vm_total} = {report.observed} "
              f"(expected {report.expected}) -> {status}")
    system.auditor.assert_ok()
    summary = collector.latency_summary()
    print(f"\n  commit latency: p50={summary.p50:.1f} "
          f"p95={summary.p95:.1f} max={summary.maximum:.1f} "
          f"(timeout bound 15.0)")


if __name__ == "__main__":
    main()
