"""Banking on lossy links, with a crash in the middle of a withdrawal.

A customer's balance is value-partitioned across three branches
(paper Section 3: "the amount of money in the bank balance of an
individual"). Deposits commit anywhere, withdrawals gather funds via
virtual messages over links that lose 30% of their packets, and the
downtown branch crashes while money addressed to it is in flight. The
Vm machinery and independent recovery guarantee not a cent is lost.

Run:  python examples/banking_recovery.py
"""

from repro.core import (
    DecrementOp,
    DvPSystem,
    IncrementOp,
    MoneyDomain,
    SystemConfig,
    TransactionSpec,
)
from repro.net.link import LinkConfig

BRANCHES = ["downtown", "airport", "harbor"]


def money(cents: int) -> str:
    return f"${cents / 100:,.2f}"


def show_balance(system: DvPSystem, label: str) -> None:
    fragments = system.fragment_values("alice")
    pretty = ", ".join(f"{branch} {money(value)}"
                       for branch, value in fragments.items())
    print(f"  {label:<44} {pretty}")


def main() -> None:
    print("== Alice's balance, partitioned across three branches ==")
    system = DvPSystem(SystemConfig(
        sites=list(BRANCHES), seed=13, txn_timeout=25.0,
        retransmit_period=3.0, checkpoint_interval=6, request_retries=2,
        link=LinkConfig(base_delay=1.5, jitter=1.0,
                        loss_probability=0.3)))
    system.add_item("alice", MoneyDomain(),
                    split={"downtown": 40_000, "airport": 25_000,
                           "harbor": 15_000})
    show_balance(system, "opening balance ($800.00 total)")

    def report(result):
        verb = "committed" if result.committed else \
            f"aborted ({result.reason})"
        print(f"  {result.site}: {result.label} -> {verb}")

    # Deposits land anywhere, any time - they never need the network.
    system.submit("harbor", TransactionSpec(
        ops=(IncrementOp("alice", 12_000),), label="deposit $120"), report)
    system.submit("airport", TransactionSpec(
        ops=(IncrementOp("alice", 3_000),), label="deposit $30"), report)
    system.submit("airport", TransactionSpec(
        ops=(DecrementOp("alice", 8_000),), label="withdraw $80"), report)
    system.run_for(2)

    # A big withdrawal at the airport branch: $650 with only $250
    # local - it needs funds from BOTH other branches. The requests go
    # out; the granted money travels as virtual messages.
    system.submit("airport", TransactionSpec(
        ops=(DecrementOp("alice", 65_000),), label="withdraw $650"),
        report)
    system.run_for(6.0)  # the gather is in progress

    # Downtown crashes in the middle of the gather. Money already
    # granted travels as Vm (protected by the granters' logs); the
    # withdrawal itself simply keeps waiting inside its timeout.
    print("  !! downtown branch crashes mid-withdrawal "
          "(volatile state lost)")
    system.crash("downtown")
    system.run_for(8.0)
    show_balance(system, "while downtown is dark")

    print("  .. downtown restarts: recovery reads ONLY its local log")
    recovery = system.recover("downtown")
    print(f"     scanned {recovery.scanned_records} records "
          f"(checkpointed: {recovery.from_checkpoint}), "
          f"redid {recovery.redo_applied}, rebuilt "
          f"{recovery.vm_rebuilt} outgoing Vm, asked other branches "
          f"for {recovery.messages_needed} messages")

    # Normal processing resumes immediately; the retransmission loop
    # re-drives any Vm the crash interrupted.
    system.submit("downtown", TransactionSpec(
        ops=(IncrementOp("alice", 7_500),), label="deposit $75"), report)
    system.run_for(200.0)
    show_balance(system, "after recovery settles")

    report_audit = system.auditor.check("alice")
    total = report_audit.observed
    print(f"\n  audited balance: {money(total)} "
          f"(expected {money(report_audit.expected)}) -> "
          f"{'balanced to the cent' if report_audit.ok else 'VIOLATION'}")
    system.auditor.assert_ok()


if __name__ == "__main__":
    main()
