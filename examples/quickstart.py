"""Quickstart: the paper's Section 3 walkthrough, executable.

Four sites W, X, Y, Z share flight A's 100 seats as quotas of 25.
Customers reserve seats locally; when site X runs short it requests
value from its peers, which arrives as virtual messages; a network
partition does not stop anybody; and a full read at the end drains
every fragment to one site to compute N exactly.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CounterDomain,
    DecrementOp,
    DvPSystem,
    IncrementOp,
    ReadFullOp,
    SystemConfig,
    TransactionSpec,
)
from repro.net.link import LinkConfig


def show(system: DvPSystem, label: str) -> None:
    fragments = system.fragment_values("flightA")
    total = sum(fragments.values())
    pretty = " ".join(f"{site}={value}" for site, value in fragments.items())
    print(f"  {label:<38} {pretty}  (Σ fragments = {total})")


def main() -> None:
    print("== DvP quickstart: the paper's airline example ==")
    system = DvPSystem(SystemConfig(
        sites=["W", "X", "Y", "Z"], seed=42, txn_timeout=20.0,
        link=LinkConfig(base_delay=1.0, jitter=0.5)))
    system.add_item("flightA", CounterDomain(),
                    split={"W": 25, "X": 25, "Y": 25, "Z": 25})
    show(system, "initial quotas")

    # Customers at W reserve 3, 4 and 5 seats - purely local commits.
    for seats in (3, 4, 5):
        system.submit("W", TransactionSpec(
            ops=(DecrementOp("flightA", seats),), label=f"reserve-{seats}"),
            lambda result: print(f"  W: {result.label} -> "
                                 f"{result.outcome.value}"))
    system.run_for(5)
    show(system, "after three reservations at W")

    # Sell most seats everywhere so the fragments get small.
    for site, seats in (("X", 22), ("Y", 15), ("Z", 10)):
        system.submit(site, TransactionSpec(
            ops=(DecrementOp("flightA", seats),), label="bulk"))
    system.run_for(5)
    show(system, "after bulk sales")

    # A customer needing 5 seats arrives at X, which has only 3:
    # X requests value from its peers and commits once a Vm arrives.
    outcome = []
    system.submit("X", TransactionSpec(
        ops=(DecrementOp("flightA", 5),), label="needs-redistribution"),
        outcome.append)
    system.run_for(30)
    result = outcome[0]
    print(f"  X: needs 5 with 3 on hand -> {result.outcome.value} "
          f"after {result.latency:.1f} time units "
          f"({result.requests_sent} requests sent)")
    show(system, "after redistribution commit")

    # A partition cannot stop local processing.
    system.network.partition([["W", "X"], ["Y", "Z"]])
    print("  -- network partitioned into {W,X} | {Y,Z} --")
    done = []
    system.submit("Y", TransactionSpec(
        ops=(IncrementOp("flightA", 2),), label="cancel-2"), done.append)
    system.run_for(25)
    print(f"  Y: cancellation during partition -> {done[0].outcome.value}")
    system.network.heal()
    print("  -- partition healed --")

    # Finally, compute N exactly: a full read drains everything to W.
    # Under Conc1 the first attempt may be refused by peers whose
    # fragment timestamps outrank W's (Section 7's stale-clock effect);
    # the refusals gossip the winning stamps back, so a retry succeeds.
    read = []
    for attempt in (1, 2, 3):
        system.submit("W", TransactionSpec(
            ops=(ReadFullOp("flightA"),), label="read-N"), read.append)
        system.run_for(60)
        result = read[-1]
        print(f"  W: full read of N (attempt {attempt}) -> "
              f"{result.outcome.value}"
              + (f", N = {result.read_values['flightA']}"
                 if result.committed else f" ({result.reason})"))
        if result.committed:
            break
    show(system, "after the read drained all fragments")

    # The global invariant held throughout (the auditor watched).
    system.drain()
    for report in system.audit():
        print(f"  audit: {report}")


if __name__ == "__main__":
    main()
