"""Non-numeric DvP: a pool of distinguishable gift-card tokens.

Section 9 asks for "ways to extend the methods to handle more data
types". The Domain abstraction makes that a library exercise: here Γ is
multisets of token kinds (gold/silver/bronze cards) under multiset
union, partitioned across three mall kiosks. Selling specific card
kinds, restocking and rebalancing all ride the exact same Vm machinery
as seat counters — conservation is audited per token kind.

Run:  python examples/giftcard_tokens.py
"""

from collections import Counter

from repro.core import (
    ApplyOp,
    BoundedDecrement,
    DvPSystem,
    Increment,
    SystemConfig,
    TokenSetDomain,
    TransactionSpec,
)
from repro.net.link import LinkConfig

KIOSKS = ["north", "center", "south"]


def show(system: DvPSystem, label: str) -> None:
    domain = TokenSetDomain()
    fragments = system.fragment_values("cards")
    pretty = " | ".join(f"{kiosk}: {domain.describe(value)}"
                        for kiosk, value in fragments.items())
    print(f"  {label:<30} {pretty}")


def main() -> None:
    print("== Gift cards: DvP over a non-numeric domain ==")
    system = DvPSystem(SystemConfig(
        sites=list(KIOSKS), seed=5, txn_timeout=15.0,
        link=LinkConfig(base_delay=1.0)))
    system.add_item("cards", TokenSetDomain(), split={
        "north": Counter({"gold": 2, "silver": 5}),
        "center": Counter({"gold": 1, "bronze": 8}),
        "south": Counter({"silver": 3, "bronze": 4}),
    })
    show(system, "opening stock")

    def report(result):
        verb = "sold" if result.committed else \
            f"NOT sold ({result.reason})"
        print(f"  {result.site}: {result.label} -> {verb}")

    # Sell a gold card at north: in stock, local commit.
    system.submit("north", TransactionSpec(
        ops=(ApplyOp("cards", BoundedDecrement(Counter({"gold": 1}))),),
        label="1 gold"), report)
    system.run_for(2)

    # Sell two bronze at north: none locally -- the kiosk requests the
    # exact tokens from its peers, and they arrive as virtual messages.
    system.submit("north", TransactionSpec(
        ops=(ApplyOp("cards", BoundedDecrement(Counter({"bronze": 2}))),),
        label="2 bronze (needs redistribution)"), report)
    system.run_for(30)
    show(system, "after cross-kiosk sale")

    # Restock silver at south: increments never block.
    system.submit("south", TransactionSpec(
        ops=(ApplyOp("cards", Increment(Counter({"silver": 4}))),),
        label="restock 4 silver"), report)
    system.run_for(30)
    system.run_for(200)  # settle acks

    show(system, "closing stock")
    report_audit = system.auditor.check("cards")
    domain = TokenSetDomain()
    status = "balanced" if report_audit.ok else "VIOLATION"
    print(f"\n  audit: expected {domain.describe(report_audit.expected)} "
          f"observed {domain.describe(report_audit.observed)} -> {status}")
    system.auditor.assert_ok()


if __name__ == "__main__":
    main()
