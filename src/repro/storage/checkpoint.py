"""Checkpoint policy.

Section 7: "by using checkpointing mechanisms, the number of redo
actions required can be reduced in the usual manner". The policy decides
*when* to checkpoint; the site assembles the snapshot (fragments, live
channel state) and appends a ``CheckpointRecord``. Recovery then scans
only the suffix after the last checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CheckpointPolicy:
    """Checkpoint every *interval_records* log appends (0 disables)."""

    interval_records: int = 0

    def __post_init__(self) -> None:
        if self.interval_records < 0:
            raise ValueError("interval_records must be non-negative")

    def due(self, records_since_checkpoint: int) -> bool:
        if self.interval_records == 0:
            return False
        return records_since_checkpoint >= self.interval_records
