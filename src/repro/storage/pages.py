"""Stable page store: the site's local database.

Each fragment lives on a "page" stamped with the LSN of the log record
whose actions it last absorbed. The stamp is the idempotence guard for
redo: recovery re-applies a record only to pages whose stamp is older.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass
class Page:
    value: Any
    page_lsn: int = -1


class PageStore:
    """Crash-surviving map item -> (value, page_lsn)."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._pages: dict[str, Page] = {}
        self.writes = 0

    def __contains__(self, item: str) -> bool:
        return item in self._pages

    def items(self) -> Iterator[tuple[str, Any]]:
        for name, page in self._pages.items():
            yield name, page.value

    def create(self, item: str, value: Any) -> None:
        """Initialize a page (loading the initial quota)."""
        if item in self._pages:
            raise ValueError(f"page for {item!r} already exists")
        self._pages[item] = Page(value)

    def read(self, item: str) -> Any:
        return self._pages[item].value

    def page_lsn(self, item: str) -> int:
        return self._pages[item].page_lsn

    def write(self, item: str, value: Any, lsn: int) -> None:
        """Apply a logged action to the page, stamping it with *lsn*."""
        page = self._pages[item]
        page.value = value
        page.page_lsn = lsn
        self.writes += 1

    def write_if_newer(self, item: str, value: Any, lsn: int) -> bool:
        """Redo-apply: write only if the page hasn't absorbed *lsn* yet."""
        page = self._pages[item]
        if page.page_lsn >= lsn:
            return False
        page.value = value
        page.page_lsn = lsn
        self.writes += 1
        return True
