"""Append-only stable log with LSNs.

Appends are atomic and immediately stable (the simulated equivalent of a
forced write); a site crash never loses an appended record and never
keeps a partial one. The log supports scanning from an LSN, which is
all recovery and checkpointing need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class LogRecordEnvelope:
    """A record as stored: payload plus its log sequence number."""

    lsn: int
    record: Any


class StableLog:
    """A per-site stable log."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._records: list[LogRecordEnvelope] = []
        self.forces = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def next_lsn(self) -> int:
        return len(self._records)

    def append(self, record: Any) -> int:
        """Atomically force *record* to stable storage; return its LSN."""
        lsn = len(self._records)
        self._records.append(LogRecordEnvelope(lsn, record))
        self.forces += 1
        return lsn

    def read(self, lsn: int) -> Any:
        """The record at *lsn*."""
        return self._records[lsn].record

    def scan(self, from_lsn: int = 0) -> Iterator[LogRecordEnvelope]:
        """All records with LSN >= *from_lsn*, in order."""
        yield from self._records[from_lsn:]

    def scan_backwards(self) -> Iterator[LogRecordEnvelope]:
        yield from reversed(self._records)

    def last_matching(self,
                      predicate: Callable[[Any], bool]) -> LogRecordEnvelope | None:
        """Most recent record satisfying *predicate*, or None."""
        for envelope in self.scan_backwards():
            if predicate(envelope.record):
                return envelope
        return None
