"""Typed log records.

Two record shapes come straight from Section 4.2 of the paper:

* creating virtual messages writes ``[database-actions,
  message-sequence]`` as ONE record (:class:`VmCreateRecord` — also used
  as the commit record when a transaction both updates fragments and
  ships value);
* completing a Vm's lifespan at the receiver writes
  ``[database-actions]`` (:class:`VmAcceptRecord`).

Database actions are *absolute* fragment assignments
(:class:`SetFragment`). Because a fragment is only changed under its
exclusive lock, the final value is known when the record is written, and
replaying assignments in log order is naturally idempotent — the
property Section 7 demands of redo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class SetFragment:
    """Absolute assignment: local fragment of *item* becomes *value*.

    ``ts`` is the timestamp of the transaction performing the write;
    recovery replays it into the fragment's timestamp so that Conc1's
    "TS(t) > TS(d_j)" check stays sound across crashes (Section 7's
    argument that committed timestamps are correctly restored).
    """

    item: str
    value: Any
    ts: int = 0


@dataclass(frozen=True)
class VmEntry:
    """One virtual message: *amount* of *item* owed to site *dst*.

    ``channel_seq`` is the per-(src, dst) FIFO sequence number that the
    retransmission machinery and receiver-side dedup key on. ``kind``
    distinguishes value transfers from full-read drains.
    """

    dst: str
    item: str
    amount: Any
    channel_seq: int
    kind: str = "transfer"
    txn_id: str = ""


@dataclass(frozen=True)
class VmCreateRecord:
    """[database-actions, message-sequence] — atomically logged.

    Writing this record is the *commit point*: the fragment updates in
    ``actions`` are now permanent and each entry in ``messages`` is a
    live virtual message that will be retransmitted until acknowledged.
    """

    txn_id: str
    actions: tuple[SetFragment, ...] = ()
    messages: tuple[VmEntry, ...] = ()


@dataclass(frozen=True)
class VmAcceptRecord:
    """[database-actions] — a Vm's lifespan ends at the receiver.

    ``src``/``channel_seq`` identify the accepted Vm; recovery replays
    them into the channel dedup state so an already-accepted Vm is never
    absorbed twice.
    """

    src: str
    channel_seq: int
    actions: tuple[SetFragment, ...] = ()
    txn_id: str = ""


@dataclass(frozen=True)
class CommitRecord:
    """Commit of a purely local transaction (no messages created)."""

    txn_id: str
    actions: tuple[SetFragment, ...] = ()


@dataclass(frozen=True)
class AppliedRecord:
    """The database now reflects the actions of record *applied_lsn*.

    Section 5 step 6: after making the changes, "record on the log that
    the changes have been made" so recovery knows where redo can stop.
    """

    applied_lsn: int


@dataclass(frozen=True)
class CheckpointRecord:
    """Fuzzy checkpoint: fragment snapshot plus live channel state."""

    fragments: tuple[tuple[str, Any], ...] = ()
    fragment_timestamps: tuple[tuple[str, int], ...] = ()
    outgoing_unacked: tuple[VmEntry, ...] = ()
    incoming_cumulative: tuple[tuple[str, int], ...] = ()
    next_channel_seq: tuple[tuple[str, int], ...] = ()
    extra: tuple[tuple[str, Any], ...] = field(default=())
