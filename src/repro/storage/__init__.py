"""Stable-storage substrate: write-ahead log, page store, checkpoints.

The paper assumes "stable logging facilities"; this package provides
them with an explicit stable/volatile split. A site crash (see
``repro.core.recovery``) discards every volatile structure but leaves
the :class:`StableLog` and :class:`PageStore` intact — exactly the
survivability contract the Vm lifecycle and the independent-recovery
algorithm rely on.
"""

from repro.storage.checkpoint import CheckpointPolicy
from repro.storage.log import LogRecordEnvelope, StableLog
from repro.storage.pages import PageStore
from repro.storage.records import (
    CheckpointRecord,
    CommitRecord,
    AppliedRecord,
    SetFragment,
    VmAcceptRecord,
    VmCreateRecord,
    VmEntry,
)

__all__ = [
    "AppliedRecord",
    "CheckpointPolicy",
    "CheckpointRecord",
    "CommitRecord",
    "LogRecordEnvelope",
    "PageStore",
    "SetFragment",
    "StableLog",
    "VmAcceptRecord",
    "VmCreateRecord",
    "VmEntry",
]
