"""Command-line interface.

    python -m repro list                      # experiment index
    python -m repro run E3 [--full]           # run one experiment
    python -m repro run all [--full]          # run every experiment
    python -m repro run E6 --full --jobs 4    # fan cells over 4 workers
    python -m repro chaos --seed 7 --loss 0.4 # randomized audit run

``run`` uses the quick presets by default (seconds); ``--full``
reproduces the tables recorded in EXPERIMENTS.md. Each experiment is a
grid of independent cells: ``--jobs N`` computes them on N worker
processes, and results are memoized under ``--cache-dir`` (default
``.repro-cache``) so repeat runs with unchanged parameters replay
instantly; ``--no-cache`` recomputes everything.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments


def _cmd_list(_args) -> int:
    for experiment_id in experiments.all_ids():
        module = experiments.get(experiment_id)
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:>4}  {first_line}")
    return 0


def _cmd_run(args) -> int:
    from repro.harness.parallel import GridEvaluator, ResultCache

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    evaluator = GridEvaluator(jobs=args.jobs, cache=cache)
    targets = (experiments.all_ids() if args.experiment.lower() == "all"
               else [args.experiment])
    for experiment_id in targets:
        try:
            module = experiments.get(experiment_id)
        except KeyError:
            print(f"unknown experiment {experiment_id!r}; "
                  f"try one of {', '.join(experiments.all_ids())}",
                  file=sys.stderr)
            return 2
        params = module.Params() if args.full else module.Params.quick()
        print(module.run(params, evaluate=evaluator))
        print()
    if cache is not None:
        print(f"[cells: {evaluator.cache_hits} cached, "
              f"{evaluator.computed} computed "
              f"(jobs={args.jobs}, cache={cache.root})]",
              file=sys.stderr)
    return 0


def _cmd_chaos(args) -> int:
    from repro.core.domain import CounterDomain
    from repro.core.system import DvPSystem, SystemConfig
    from repro.metrics.collector import Collector
    from repro.net.link import LinkConfig
    from repro.workloads.airline import AirlineWorkload
    from repro.workloads.base import WorkloadConfig, WorkloadDriver

    sites = [f"S{index}" for index in range(args.sites)]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=args.seed, txn_timeout=args.timeout,
        link=LinkConfig(base_delay=1.0, jitter=1.0,
                        loss_probability=args.loss,
                        duplicate_probability=0.1)))
    system.add_item("item", CounterDomain(), total=args.total)
    config = WorkloadConfig(arrival_rate=args.rate,
                            duration=args.duration)
    collector = Collector()
    WorkloadDriver(system.sim, system, sites,
                   AirlineWorkload(["item"], config), config,
                   collector).install()
    rng = system.sim.rng.stream("cli-chaos")
    half = len(sites) // 2
    system.sim.at(args.duration * 0.25,
                  lambda: system.network.partition(
                      [sites[:half], sites[half:]]))
    system.sim.at(args.duration * 0.6, system.network.heal)
    victim = rng.choice(sites)
    system.sim.at(args.duration * 0.4, lambda: system.crash(victim))
    system.sim.at(args.duration * 0.7, lambda: system.recover(victim))
    system.run_until(args.duration)
    system.network.heal()
    for site in system.sites.values():
        if not site.alive:
            site.recover()
    system.run_for(args.timeout + 300.0)

    print(f"sites={args.sites} loss={args.loss} seed={args.seed} "
          f"duration={args.duration}")
    print(f"decided {len(collector.results)} transactions "
          f"({100 * collector.commit_rate():.1f}% committed, "
          f"max decision time {collector.max_latency():.1f} <= "
          f"timeout {args.timeout})")
    ok = True
    for report in system.audit():
        print(f"audit: {report}")
        ok = ok and report.ok
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Data-value Partitioning and "
                    "Virtual Messages' (PODS 1990)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments") \
        .set_defaults(func=_cmd_list)

    run_parser = commands.add_parser("run", help="run an experiment")
    run_parser.add_argument("experiment",
                            help="experiment id (E1..E11) or 'all'")
    run_parser.add_argument("--full", action="store_true",
                            help="full preset (EXPERIMENTS.md numbers)")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes for grid cells "
                                 "(default 1: in-process)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="do not read or write the result cache")
    run_parser.add_argument("--cache-dir", default=".repro-cache",
                            help="result cache directory "
                                 "(default .repro-cache)")
    run_parser.set_defaults(func=_cmd_run)

    chaos_parser = commands.add_parser(
        "chaos", help="randomized failure run with conservation audit")
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument("--sites", type=int, default=4)
    chaos_parser.add_argument("--loss", type=float, default=0.3)
    chaos_parser.add_argument("--rate", type=float, default=0.08)
    chaos_parser.add_argument("--total", type=int, default=200)
    chaos_parser.add_argument("--duration", type=float, default=200.0)
    chaos_parser.add_argument("--timeout", type=float, default=15.0)
    chaos_parser.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
