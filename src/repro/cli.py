"""Command-line interface.

    python -m repro list                      # experiment index
    python -m repro run E3 [--full]           # run one experiment
    python -m repro run all [--full]          # run every experiment
    python -m repro run E6 --full --jobs 4    # fan cells over 4 workers
    python -m repro chaos --budget 200 --seed 7   # fault-plan search
    python -m repro chaos --replay tests/repros/<name>.json
    python -m repro trace tests/repros/<name>.json --site S1 --kind vm.

``run`` uses the quick presets by default (seconds); ``--full``
reproduces the tables recorded in EXPERIMENTS.md. Each experiment is a
grid of independent cells: ``--jobs N`` computes them on N worker
processes, and results are memoized under ``--cache-dir`` (default
``.repro-cache``) so repeat runs with unchanged parameters replay
instantly; ``--no-cache`` recomputes everything.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.harness import experiments


def _cmd_list(_args) -> int:
    for experiment_id in experiments.all_ids():
        module = experiments.get(experiment_id)
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:>4}  {first_line}")
    return 0


def _cmd_run(args) -> int:
    from repro.harness.parallel import GridEvaluator, ResultCache

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    evaluator = GridEvaluator(jobs=args.jobs, cache=cache)
    targets = (experiments.all_ids() if args.experiment.lower() == "all"
               else [args.experiment])
    for experiment_id in targets:
        try:
            module = experiments.get(experiment_id)
        except KeyError:
            print(f"unknown experiment {experiment_id!r}; "
                  f"try one of {', '.join(experiments.all_ids())}",
                  file=sys.stderr)
            return 2
        params = module.Params() if args.full else module.Params.quick()
        print(module.run(params, evaluate=evaluator))
        print()
    if cache is not None:
        print(f"[cells: {evaluator.cache_hits} cached, "
              f"{evaluator.computed} computed "
              f"(jobs={args.jobs}, cache={cache.root})]",
              file=sys.stderr)
    return 0


def _cmd_chaos(args) -> int:
    from repro.harness import chaos as chaos_harness

    if args.budget < 1:
        print("--budget must be >= 1", file=sys.stderr)
        return 2
    return chaos_harness.main(args)


def _cmd_trace(args) -> int:
    from repro.chaos.artifact import ReproArtifact
    from repro.obs import TraceFilter, event_to_json, render_timeline

    if args.limit < 1:
        print("--limit must be >= 1", file=sys.stderr)
        return 2
    artifact = ReproArtifact.load(args.artifact)
    result = artifact.replay(trace_limit=args.limit,
                             trace_kernel=args.kernel)
    narrowed = TraceFilter(site=args.site, item=args.item,
                           txn=args.txn, kind=args.kind)
    events = list(narrowed.apply(result.system.sim.obs.events()))
    if args.jsonl:
        for event in events:
            print(event_to_json(event))
        return 0
    truncated = result.system.sim.obs.truncated
    title = (f"trace of {args.artifact} "
             f"(seed={artifact.seed} actions={len(artifact.plan)}"
             + (f", {truncated} earlier events beyond --limit"
                if truncated else "") + ")")
    print(render_timeline(events, title=title))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Data-value Partitioning and "
                    "Virtual Messages' (PODS 1990)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiments") \
        .set_defaults(func=_cmd_list)

    run_parser = commands.add_parser("run", help="run an experiment")
    run_parser.add_argument("experiment",
                            help="experiment id (E1..E13) or 'all'")
    run_parser.add_argument("--full", action="store_true",
                            help="full preset (EXPERIMENTS.md numbers)")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes for grid cells "
                                 "(default 1: in-process)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="do not read or write the result cache")
    run_parser.add_argument("--cache-dir", default=".repro-cache",
                            help="result cache directory "
                                 "(default .repro-cache)")
    run_parser.set_defaults(func=_cmd_run)

    chaos_parser = commands.add_parser(
        "chaos",
        help="deterministic fault-plan search with oracle checking "
             "(see docs/CHAOS.md)")
    chaos_parser.add_argument("--budget", type=int, default=200,
                              metavar="N",
                              help="fault plans to sample and run "
                                   "(default 200)")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="master seed; every plan and run "
                                   "seed derives from it (default 0)")
    chaos_parser.add_argument("--shrink", action="store_true",
                              help="delta-debug failing plans to "
                                   "locally-minimal repros and write "
                                   "JSON artifacts")
    chaos_parser.add_argument("--replay", metavar="PATH", default=None,
                              help="replay a frozen repro artifact "
                                   "instead of exploring")
    chaos_parser.add_argument("--inject", default=None,
                              choices=["write", "crash",
                                       "view-staleness"],
                              help="arm a test-only injection (oracle "
                                   "self-test): a conservation leak, or "
                                   "a view service that republishes "
                                   "stale snapshots as fresh")
    chaos_parser.add_argument("--repro-dir", default="tests/repros",
                              help="where --shrink writes artifacts "
                                   "(default tests/repros)")
    chaos_parser.add_argument("--rebalance", default=None,
                              choices=["static-rr", "demand-weighted",
                                       "pull"],
                              help="run a rebalance daemon at every "
                                   "site with this policy (default: "
                                   "no daemons)")
    chaos_parser.add_argument("--rebalance-period", type=float,
                              default=6.0, metavar="T",
                              help="daemon tick period in virtual time "
                                   "(default 6.0)")
    chaos_parser.add_argument("--bundle-delay", type=float, default=None,
                              metavar="T",
                              help="enable transport bundling with this "
                                   "flush window in virtual time "
                                   "(default: bundling off)")
    chaos_parser.add_argument("--partitioner", default="all",
                              choices=["all", "hash", "range",
                                       "consistent"],
                              help="placement directory partitioner "
                                   "(default 'all': every site owns "
                                   "every item, the seed behaviour)")
    chaos_parser.add_argument("--replicas", type=int, default=None,
                              metavar="K",
                              help="owners per item under a non-'all' "
                                   "partitioner (default: every site)")
    chaos_parser.add_argument(
        "--serving", default=None,
        choices=["random", "least-queue", "locality", "view-aware"],
        help="route chaos arrivals through the serving front-end "
             "(router + bounded queues + admission control) instead "
             "of direct site submission (default: off)")
    chaos_parser.add_argument(
        "--serving-depth", type=int, default=8,
        help="serving queue depth bound per site (default: 8)")
    chaos_parser.add_argument(
        "--serving-inflight", type=int, default=2,
        help="serving service slots per site (default: 2)")
    chaos_parser.add_argument(
        "--views", type=float, default=None, metavar="BOUND",
        help="run the bounded-staleness view service and give a slice "
             "of the read workload ReadViewOp(bound=BOUND) (see "
             "docs/READS.md; default: views off, the seed read path)")
    chaos_parser.add_argument(
        "--view-refresh", type=float, default=4.0, metavar="T",
        help="view refresh (write-behind publish) period in virtual "
             "time (default: 4.0)")
    chaos_parser.add_argument("--reshard", action="store_true",
                              help="sample elastic-topology motifs too "
                                   "(site joins, decommissions, replica "
                                   "reshards; see docs/PARTITIONING.md)")
    chaos_parser.add_argument("--baseline", default=None,
                              choices=["paxos"],
                              help="explore a commit-protocol baseline "
                                   "(crash/partition motifs, "
                                   "conservation + agreement + liveness "
                                   "oracles) instead of the DvP system")
    chaos_parser.add_argument("--sites", type=int, default=4)
    chaos_parser.add_argument("--items", type=int, default=2)
    chaos_parser.add_argument("--txns", type=int, default=24)
    chaos_parser.add_argument("--duration", type=float, default=80.0)
    chaos_parser.add_argument("--timeout", type=float, default=10.0)
    chaos_parser.set_defaults(func=_cmd_chaos)

    trace_parser = commands.add_parser(
        "trace",
        help="replay a chaos repro artifact with structured tracing "
             "and render its timeline (see docs/OBSERVABILITY.md)")
    trace_parser.add_argument("artifact",
                              help="path to a dvp-chaos-repro/1 JSON file")
    trace_parser.add_argument("--site", default=None,
                              help="only events mentioning this site "
                                   "(as site, src, or dst)")
    trace_parser.add_argument("--item", default=None,
                              help="only events about this item")
    trace_parser.add_argument("--txn", default=None,
                              help="only events for this transaction id "
                                   "or label")
    trace_parser.add_argument("--kind", default=None,
                              help="event-kind prefix filter, e.g. 'vm.' "
                                   "or 'txn.abort'")
    trace_parser.add_argument("--jsonl", action="store_true",
                              help="dump canonical JSONL instead of an "
                                   "aligned timeline")
    trace_parser.add_argument("--limit", type=int, default=65536,
                              metavar="N",
                              help="ring-buffer retention while "
                                   "replaying (default 65536)")
    trace_parser.add_argument("--kernel", action="store_true",
                              help="include one kernel.step event per "
                                   "executed simulator event (verbose)")
    trace_parser.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Timelines and JSONL dumps get piped into head/grep; a closed
        # pipe is a normal way for the read side to say "enough".
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # conventional 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
