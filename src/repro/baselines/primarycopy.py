"""Primary-copy replication.

Each item has one *primary* site; every update executes at the primary
(remote origins forward the operation and wait for the reply), and the
primary lazily propagates new versions to the backups. Reads may be
served locally from a (possibly stale) backup copy when
``allow_stale_reads`` is set, else they go to the primary too.

Partition behaviour: only the group containing the primary can update —
everyone else times out. If the primary site *fails*, nobody can update
at all (the paper's "a primary copy site fails" remark). This is the
second comparator for availability experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.baselines.common import (
    BaselineConfig,
    IdSource,
    PendingDone,
    UnknownItem,
    WholeStore,
    make_result,
)
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    Outcome,
    ReadFullOp,
    TransactionSpec,
    TxnResult,
    UnsupportedSpec,
)
from repro.net.link import LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.storage.log import StableLog


@dataclass(frozen=True)
class ForwardReq:
    txn_id: str
    origin: str
    item: str
    ops: tuple  # of core ops

@dataclass(frozen=True)
class ForwardReply:
    txn_id: str
    committed: bool
    reason: str
    read_values: tuple[tuple[str, Any], ...] = ()
    deltas: tuple[tuple[str, int, Any], ...] = ()


@dataclass(frozen=True)
class PropagateMsg:
    item: str
    value: Any
    version: int


class PrimaryCopySite:
    """Holds a replica of every item; primary for some of them."""

    def __init__(self, name: str, sim: Simulator, network: Network,
                 config: BaselineConfig, system: "PrimaryCopySystem") -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.config = config
        self.system = system
        self.store = WholeStore()
        self.log = StableLog(name)
        self.alive = True
        self._ids = IdSource(name)
        self._pending: dict[str, tuple[PendingDone, float, str]] = {}
        self._timers: dict[str, Timer] = {}
        network.register(name, self.deliver)

    # -- client API --------------------------------------------------------

    def submit(self, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None) -> str:
        if len(spec.items()) != 1:
            raise UnsupportedSpec("primary-copy baseline supports "
                             "single-item txns")
        txn_id = self._ids.next()
        item = next(iter(spec.items()))
        if item not in self.system.primary:
            # Typed refusal before any message leaves: neither the
            # local stale-read path nor the primary should discover a
            # nonexistent item inside a delivery event.
            raise UnknownItem(f"unknown item {item!r}")
        is_read_only = all(isinstance(op, ReadFullOp) for op in spec.ops)
        if is_read_only and self.system.allow_stale_reads:
            value = self.store.get(item).value
            result = make_result(txn_id, spec.label, Outcome.COMMITTED,
                                 "stale-read", self.name, self.sim.now,
                                 self.sim.now, read_values={item: value})
            PendingDone(on_done).fire(result)
            self.system.results.append(result)
            return txn_id
        primary = self.system.primary[item]
        done = PendingDone(on_done)
        self._pending[txn_id] = (done, self.sim.now, spec.label)
        request = ForwardReq(txn_id, self.name, item, spec.ops)
        if primary == self.name:
            self._on_forward(request)
        else:
            self.network.send(self.name, primary, request)
        timer = Timer(self.sim, lambda: self._timeout(txn_id, spec.label),
                      label=f"pc-timeout:{txn_id}")
        timer.start(self.config.txn_timeout)
        self._timers[txn_id] = timer
        return txn_id

    # -- primary side ---------------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, ForwardReq):
            self._on_forward(payload)
        elif isinstance(payload, ForwardReply):
            self._on_reply(payload)
        elif isinstance(payload, PropagateMsg):
            self._on_propagate(payload)

    def _on_forward(self, request: ForwardReq) -> None:
        if self.system.primary[request.item] != self.name:
            return  # mis-routed (e.g. stale directory); ignore
        item = self.store.get(request.item)
        committed = True
        reason = "ok"
        reads: list[tuple[str, Any]] = []
        deltas: list[tuple[str, int, Any]] = []
        new_value = item.value
        for op in request.ops:
            if isinstance(op, DecrementOp):
                if new_value < op.amount:
                    committed, reason = False, "insufficient"
                    break
                new_value -= op.amount
                deltas.append((op.item, -1, op.amount))
            elif isinstance(op, IncrementOp):
                new_value += op.amount
                deltas.append((op.item, +1, op.amount))
            elif isinstance(op, ReadFullOp):
                reads.append((op.item, new_value))
            else:
                committed, reason = False, "unsupported-op"
                break
        if committed and new_value != item.value:
            item.value = new_value
            item.version += 1
            self.log.append(("primary-write", request.txn_id, request.item,
                             new_value, item.version))
            for backup in self.system.sites:
                if backup != self.name:
                    self.network.send(self.name, backup, PropagateMsg(
                        request.item, new_value, item.version))
        reply = ForwardReply(request.txn_id, committed, reason,
                             tuple(reads), tuple(deltas))
        if request.origin == self.name:
            self._on_reply(reply)
        else:
            self.network.send(self.name, request.origin, reply)

    def _on_propagate(self, message: PropagateMsg) -> None:
        item = self.store.get(message.item)
        if message.version > item.version:
            item.value = message.value
            item.version = message.version

    # -- origin side -------------------------------------------------------------

    def _on_reply(self, reply: ForwardReply) -> None:
        pending = self._pending.pop(reply.txn_id, None)
        if pending is None:
            return
        done, submitted_at, label = pending
        timer = self._timers.pop(reply.txn_id, None)
        if timer is not None:
            timer.cancel()
        outcome = Outcome.COMMITTED if reply.committed else Outcome.ABORTED
        result = make_result(reply.txn_id, label, outcome, reply.reason,
                             self.name, submitted_at, self.sim.now,
                             deltas=list(reply.deltas),
                             read_values=dict(reply.read_values))
        done.fire(result)
        self.system.results.append(result)

    def _timeout(self, txn_id: str, label: str) -> None:
        pending = self._pending.pop(txn_id, None)
        if pending is None:
            return
        done, submitted_at, _label = pending
        self._timers.pop(txn_id, None)
        result = make_result(txn_id, label, Outcome.ABORTED, "timeout",
                             self.name, submitted_at, self.sim.now)
        done.fire(result)
        self.system.results.append(result)


class PrimaryCopySystem:
    """Primary-copy replicated store."""

    def __init__(self, sites: list[str], seed: int = 0,
                 link: LinkConfig | None = None,
                 config: BaselineConfig | None = None,
                 allow_stale_reads: bool = False) -> None:
        self.sim = Simulator(seed)
        self.network = Network(self.sim, link or LinkConfig())
        self.config = config or BaselineConfig()
        self.allow_stale_reads = allow_stale_reads
        self.primary: dict[str, str] = {}
        self.results: list[TxnResult] = []
        self.sites = {name: PrimaryCopySite(name, self.sim, self.network,
                                            self.config, self)
                      for name in sites}

    def add_item(self, item: str, primary: str, initial: Any) -> None:
        self.primary[item] = primary
        for site in self.sites.values():
            site.store.create(item, initial)

    def submit(self, origin: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None) -> str:
        return self.sites[origin].submit(spec, on_done)

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)

    def value(self, item: str) -> Any:
        return self.sites[self.primary[item]].store.get(item).value
