"""Paxos Commit (Gray & Lamport, *Consensus on Transaction Commit*).

Two-phase commit blocks: a participant that voted YES and lost its
coordinator holds locks until that one process returns. Paxos Commit
removes the single point of failure by running one Paxos consensus
instance per participant's prepared/aborted *vote*, with 2F+1 acceptors
shared across instances. The transaction commits iff every instance
chooses "prepared"; the decision is reachable whenever any leader can
talk to a majority of acceptors — the coordinator is just the initial
leader, not a dependency.

Mapping onto the paper's protocol:

* The origin site is the ballot-0 leader. It sends each participant
  its ops; a participant votes by sending its phase-2a ballot-0 message
  ("prepared" or "aborted") straight to the acceptors — the paper's
  co-location optimization that makes the happy path the same message
  depth as 2PC plus the acceptor round.
* Acceptors log promises and accepted values; phase-2b messages go to
  the ballot's leader, which decides an instance once a majority of
  acceptors accepted the same (ballot, value).
* Leader election on coordinator timeout is participant takeover: a
  prepared participant that has heard no decision within the
  transaction timeout runs phase 1 at a ballot only it can use
  (``round * n_sites + rank``), adopts the highest accepted value a
  majority reports (free choice = "aborted"), and drives phase 2.
  Concurrent leaders are safe — that is Paxos — and each keeps
  escalating its ballot every retry period until a decision lands, so
  progress resumes as soon as a majority of acceptors is reachable.
* Recovery is *independent* in the sense 2PC's is not: a recovered
  in-doubt participant re-learns the outcome from the acceptors (who
  logged their accepts), never from one distinguished coordinator.

Built on the shared baseline substrate (WholeStore homes, the
retry-period retransmission machinery, TxnResult shapes), so chaos
schedules, the metrics collector, and the experiment harness drive it
exactly like the 2PC and quorum baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.common import (
    BaselineConfig,
    IdSource,
    PendingDone,
    SimpleOp,
    WholeStore,
    make_result,
    partition_ops,
)
from repro.core.transactions import (
    Outcome,
    TransactionSpec,
    TxnResult,
)
from repro.net.link import LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.storage.log import StableLog

PREPARED = "prepared"
ABORTED = "aborted"

# -- wire protocol ------------------------------------------------------------


@dataclass(frozen=True)
class BeginMsg:
    """Ballot-0 leader -> participant: your ops and the full roster."""

    txn_id: str
    coordinator: str
    participants: tuple[str, ...]
    ops: tuple[SimpleOp, ...]


@dataclass(frozen=True)
class Phase1a:
    """Recovery leader -> acceptor: promise me ballot ``ballot``."""

    txn_id: str
    participant: str
    ballot: int
    leader: str
    participants: tuple[str, ...]


@dataclass(frozen=True)
class Phase1b:
    """Acceptor -> leader: promised; here is what I last accepted."""

    txn_id: str
    participant: str
    ballot: int
    acceptor: str
    accepted_ballot: int = -1
    accepted_value: str = ""


@dataclass(frozen=True)
class Phase2a:
    """Leader (or the participant itself at ballot 0) -> acceptor."""

    txn_id: str
    participant: str
    ballot: int
    value: str  # PREPARED | ABORTED
    leader: str
    participants: tuple[str, ...]
    reads: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class Phase2b:
    """Acceptor -> the ballot's leader: accepted (ballot, value)."""

    txn_id: str
    participant: str
    ballot: int
    value: str
    acceptor: str
    participants: tuple[str, ...]
    reads: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class DecisionMsg:
    txn_id: str
    commit: bool


@dataclass(frozen=True)
class DecisionAck:
    txn_id: str
    participant: str


# -- per-site state ----------------------------------------------------------


@dataclass
class _Coordination:
    """Client-facing state at the origin (the ballot-0 leader)."""

    txn_id: str
    label: str
    ops_by_site: dict[str, tuple[SimpleOp, ...]]
    done: PendingDone
    submitted_at: float
    read_values: dict[str, Any] = field(default_factory=dict)
    decided: bool = False
    commit: bool = False


@dataclass
class _Prepared:
    """Participant-side in-doubt state (locks held)."""

    txn_id: str
    coordinator: str
    participants: tuple[str, ...]
    ops: tuple[SimpleOp, ...]
    prepared_at: float


@dataclass
class _AcceptorSlot:
    """One acceptor's state for one (txn, participant) instance."""

    promised: int = -1
    accepted_ballot: int = -1
    accepted_value: str = ""


@dataclass
class _Lead:
    """Leader-side Paxos bookkeeping for one transaction.

    The origin holds one from submission (ballot 0); any participant
    that takes over after a timeout creates its own. ``support`` counts
    phase-2b acceptors per (instance, ballot, value); ``promises``
    collects phase-1b replies per (instance, ballot).
    """

    txn_id: str
    roster: tuple[str, ...]
    rounds: int = 0
    ballot: int = 0
    chosen: dict[str, str] = field(default_factory=dict)
    support: dict[tuple[str, int, str], set[str]] = \
        field(default_factory=dict)
    promises: dict[tuple[str, int], dict[str, tuple[int, str]]] = \
        field(default_factory=dict)
    proposed: set[tuple[str, int]] = field(default_factory=set)
    round_started_at: float = 0.0
    decided: bool = False
    commit: bool = False
    acked: set[str] = field(default_factory=set)


class PaxosCommitSite:
    """One site: client leader, participant, and (maybe) acceptor."""

    def __init__(self, name: str, sim: Simulator, network: Network,
                 config: BaselineConfig, home: dict[str, str],
                 system: "PaxosCommitSystem") -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.config = config
        self.home = home
        self.system = system
        self.store = WholeStore()
        self.log = StableLog(name)
        self.alive = True
        self._ids = IdSource(name)
        self._coordinations: dict[str, _Coordination] = {}
        self._prepared: dict[str, _Prepared] = {}
        self._applied: set[str] = set()
        self._led: dict[str, _Lead] = {}
        self._acc: dict[tuple[str, str], _AcceptorSlot] = {}
        self._timers: dict[str, Timer] = {}
        self._decision_pusher = PeriodicTimer(
            sim, config.retry_period, self._push_decisions,
            label=f"paxos-decisions:{name}")
        self._takeover_pusher = PeriodicTimer(
            sim, config.retry_period, self._push_takeovers,
            label=f"paxos-takeover:{name}")
        network.register(name, self.deliver)

    # -- client API -------------------------------------------------------

    def submit(self, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None) -> str:
        txn_id = self._ids.next()
        ops_by_site = partition_ops(spec, self.home)
        roster = tuple(sorted(ops_by_site))
        coordination = _Coordination(
            txn_id=txn_id, label=spec.label, ops_by_site=ops_by_site,
            done=PendingDone(on_done), submitted_at=self.sim.now)
        self._coordinations[txn_id] = coordination
        self._led[txn_id] = _Lead(txn_id, roster)
        self.log.append(("coord-begin", txn_id, sorted(ops_by_site)))
        for participant, ops in ops_by_site.items():
            message = BeginMsg(txn_id, self.name, roster, ops)
            if participant == self.name:
                self._on_begin(message)
            else:
                self.network.send(self.name, participant, message)
        timer = Timer(self.sim, lambda: self._client_timeout(txn_id),
                      label=f"paxos-timeout:{txn_id}")
        timer.start(self.config.txn_timeout)
        self._timers[txn_id] = timer
        return txn_id

    def _client_timeout(self, txn_id: str) -> None:
        """The origin cannot presume abort unilaterally (an instance
        may already have chosen "prepared"); it *proposes* abort by
        running recovery rounds until the consensus decides."""
        lead = self._led.get(txn_id)
        if lead is None or lead.decided:
            return
        self._takeover(lead)
        self._takeover_pusher.start()

    # -- message dispatch -------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, BeginMsg):
            self._on_begin(payload)
        elif isinstance(payload, Phase1a):
            self._on_phase1a(payload)
        elif isinstance(payload, Phase1b):
            self._on_phase1b(payload)
        elif isinstance(payload, Phase2a):
            self._on_phase2a(payload)
        elif isinstance(payload, Phase2b):
            self._on_phase2b(payload)
        elif isinstance(payload, DecisionMsg):
            self._on_decision(payload, src=envelope.src)
        elif isinstance(payload, DecisionAck):
            self._on_decision_ack(payload)

    def _route(self, dst: str, payload: Any) -> None:
        if dst == self.name:
            self.deliver(Envelope(src=self.name, dst=dst, payload=payload))
        else:
            self.network.send(self.name, dst, payload)

    # -- participant side -------------------------------------------------

    def _on_begin(self, message: BeginMsg) -> None:
        if message.txn_id in self._prepared or \
                message.txn_id in self._applied:
            return  # duplicate
        vote = PREPARED
        reads: list[tuple[str, Any]] = []
        items = {op.item for op in message.ops}
        for item in items:
            if self.store.get(item).locked_by is not None:
                vote = ABORTED
        if vote == PREPARED:
            shadow = {item: self.store.get(item).value for item in items}
            for op in message.ops:
                if op.kind == "dec":
                    if shadow[op.item] < op.amount:
                        vote = ABORTED
                        break
                    shadow[op.item] -= op.amount
                elif op.kind == "inc":
                    shadow[op.item] += op.amount
                else:
                    reads.append((op.item, shadow[op.item]))
        if vote == PREPARED:
            for item in items:
                self.store.get(item).locked_by = message.txn_id
            self.log.append(("prepared", message.txn_id,
                             message.coordinator, message.participants,
                             message.ops))
            self._prepared[message.txn_id] = _Prepared(
                message.txn_id, message.coordinator, message.participants,
                message.ops, self.sim.now)
            self._takeover_pusher.start()
        # The vote is the instance's ballot-0 phase-2a, sent straight
        # to every acceptor (paper §4's co-location optimization).
        proposal = Phase2a(message.txn_id, self.name, 0, vote,
                           message.coordinator, message.participants,
                           tuple(reads))
        for acceptor in self.system.acceptors:
            self._route(acceptor, proposal)

    def _on_decision(self, message: DecisionMsg, src: str) -> None:
        prepared = self._prepared.pop(message.txn_id, None)
        self._applied.add(message.txn_id)
        if prepared is not None:
            blocked_for = self.sim.now - prepared.prepared_at
            self.system.record_lock_hold(self.name, message.txn_id,
                                         blocked_for)
            if message.commit:
                for op in prepared.ops:
                    item = self.store.get(op.item)
                    if op.kind == "dec":
                        item.value -= op.amount
                    elif op.kind == "inc":
                        item.value += op.amount
                    item.version += 1
                self.log.append(("participant-commit", message.txn_id))
            else:
                self.log.append(("participant-abort", message.txn_id))
            for op in prepared.ops:
                item = self.store.get(op.item)
                if item.locked_by == message.txn_id:
                    item.locked_by = None
        if src != self.name:
            self._route(src, DecisionAck(message.txn_id, self.name))
        else:
            self._on_decision_ack(DecisionAck(message.txn_id, self.name))
        # The origin's client callback rides on its own leader state.
        self._learn_decision(message.txn_id, message.commit)

    def _push_takeovers(self) -> None:
        """Leader election on coordinator timeout: every prepared
        participant that has waited out the transaction timeout starts
        (or escalates) its own recovery rounds."""
        outstanding = False
        for prepared in list(self._prepared.values()):
            age = self.sim.now - prepared.prepared_at
            if age < self.config.txn_timeout:
                outstanding = True  # not yet suspicious; keep watching
                continue
            lead = self._led.setdefault(
                prepared.txn_id,
                _Lead(prepared.txn_id, prepared.participants))
            if lead.decided:
                continue
            outstanding = True
            self.system.recovery_messages += 1
            self._takeover(lead)
        for lead in self._led.values():
            # The origin proposing abort after its client timeout also
            # keeps escalating until the consensus answers.
            if not lead.decided and lead.rounds > 0 and \
                    lead.txn_id not in self._prepared:
                outstanding = True
                self._takeover(lead)
        if not outstanding:
            self._takeover_pusher.stop()

    # -- leader side ------------------------------------------------------

    def _ballot(self, rounds: int) -> int:
        """Ballots unique to this site: round * n + rank (ballot 0 is
        reserved for the participants' own votes)."""
        names = self.system.site_names
        return rounds * len(names) + names.index(self.name) + 1

    def _takeover(self, lead: _Lead) -> None:
        if lead.decided:
            return
        if lead.rounds > 0 and (self.sim.now - lead.round_started_at
                                <= self.config.retry_period):
            # The previous round has not had a full retry period to
            # come back yet. Escalating here would raise the ballot at
            # the very instant the old round's phase-1b replies land,
            # so they would all fail the current-ballot check — with a
            # retry period at or below the network round trip that
            # repeats every round and the recovery livelocks.
            return
        lead.rounds += 1
        lead.round_started_at = self.sim.now
        lead.ballot = self._ballot(lead.rounds)
        for participant in lead.roster:
            if participant in lead.chosen:
                continue
            inquiry = Phase1a(lead.txn_id, participant, lead.ballot,
                              self.name, lead.roster)
            for acceptor in self.system.acceptors:
                self._route(acceptor, inquiry)

    def _on_phase1b(self, message: Phase1b) -> None:
        lead = self._led.get(message.txn_id)
        if lead is None or lead.decided or message.ballot != lead.ballot:
            return
        key = (message.participant, message.ballot)
        replies = lead.promises.setdefault(key, {})
        replies[message.acceptor] = (message.accepted_ballot,
                                     message.accepted_value)
        if len(replies) < self.system.majority or key in lead.proposed:
            return
        lead.proposed.add(key)
        # Classic Paxos choice rule: adopt the value of the highest
        # accepted ballot; free choice (no acceptor accepted anything
        # for this instance) means the participant never voted — the
        # paper's rule is to choose "aborted".
        accepted_ballot, accepted_value = max(replies.values())
        value = accepted_value if accepted_ballot >= 0 else ABORTED
        proposal = Phase2a(lead.txn_id, message.participant, lead.ballot,
                           value, self.name, lead.roster)
        for acceptor in self.system.acceptors:
            self._route(acceptor, proposal)

    def _on_phase2b(self, message: Phase2b) -> None:
        lead = self._led.get(message.txn_id)
        if lead is None:
            return
        if not lead.roster:
            lead.roster = message.participants
        coordination = self._coordinations.get(message.txn_id)
        if coordination is not None:
            coordination.read_values.update(dict(message.reads))
        if lead.decided:
            return
        key = (message.participant, message.ballot, message.value)
        backers = lead.support.setdefault(key, set())
        backers.add(message.acceptor)
        if len(backers) < self.system.majority:
            return
        lead.chosen.setdefault(message.participant, message.value)
        if set(lead.chosen) == set(lead.roster):
            commit = all(value == PREPARED
                         for value in lead.chosen.values())
            self._decide(lead, commit)

    def _decide(self, lead: _Lead, commit: bool) -> None:
        lead.decided = True
        lead.commit = commit
        self.log.append(("coord-decision", lead.txn_id, commit))
        self._broadcast_decision(lead)
        self._decision_pusher.start()
        self._learn_decision(lead.txn_id, commit)

    def _broadcast_decision(self, lead: _Lead) -> None:
        message = DecisionMsg(lead.txn_id, lead.commit)
        targets = set(lead.roster)
        origin = lead.txn_id.split("#", 1)[0]
        targets.add(origin)
        for target in targets - lead.acked:
            self._route(target, message)

    def _push_decisions(self) -> None:
        outstanding = False
        for lead in self._led.values():
            if lead.decided and \
                    lead.acked < set(lead.roster) | \
                    {lead.txn_id.split("#", 1)[0]}:
                outstanding = True
                self._broadcast_decision(lead)
        if not outstanding:
            self._decision_pusher.stop()

    def _on_decision_ack(self, ack: DecisionAck) -> None:
        lead = self._led.get(ack.txn_id)
        if lead is not None:
            lead.acked.add(ack.participant)

    def _learn_decision(self, txn_id: str, commit: bool) -> None:
        """Resolve the client callback at the origin, exactly once."""
        lead = self._led.get(txn_id)
        if lead is not None and not lead.decided:
            lead.decided = True
            lead.commit = commit
        coordination = self._coordinations.get(txn_id)
        if coordination is None or coordination.decided:
            return
        coordination.decided = True
        coordination.commit = commit
        timer = self._timers.pop(txn_id, None)
        if timer is not None:
            timer.cancel()
        deltas: list[tuple[str, int, Any]] = []
        if commit:
            for ops in coordination.ops_by_site.values():
                for op in ops:
                    if op.kind == "dec":
                        deltas.append((op.item, -1, op.amount))
                    elif op.kind == "inc":
                        deltas.append((op.item, +1, op.amount))
        outcome = Outcome.COMMITTED if commit else Outcome.ABORTED
        reason = "ok" if commit else "vote-no"
        coordination.done.fire(make_result(
            txn_id, coordination.label, outcome, reason, self.name,
            coordination.submitted_at, self.sim.now, deltas=deltas,
            read_values=coordination.read_values))
        self.system.record_result(coordination.done.collected[-1])

    # -- acceptor side ----------------------------------------------------

    def _on_phase1a(self, message: Phase1a) -> None:
        slot = self._acc.setdefault(
            (message.txn_id, message.participant), _AcceptorSlot())
        if message.ballot <= slot.promised:
            return
        slot.promised = message.ballot
        self.log.append(("paxos-promise", message.txn_id,
                         message.participant, message.ballot))
        self._route(message.leader, Phase1b(
            message.txn_id, message.participant, message.ballot,
            self.name, slot.accepted_ballot, slot.accepted_value))

    def _on_phase2a(self, message: Phase2a) -> None:
        slot = self._acc.setdefault(
            (message.txn_id, message.participant), _AcceptorSlot())
        if message.ballot < slot.promised:
            return
        slot.promised = message.ballot
        slot.accepted_ballot = message.ballot
        slot.accepted_value = message.value
        self.log.append(("paxos-accept", message.txn_id,
                         message.participant, message.ballot,
                         message.value))
        self._route(message.leader, Phase2b(
            message.txn_id, message.participant, message.ballot,
            message.value, self.name, message.participants,
            message.reads))

    # -- failure injection ------------------------------------------------

    def crash(self) -> None:
        self.alive = False
        self._decision_pusher.stop()
        self._takeover_pusher.stop()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._coordinations.clear()
        self._prepared.clear()
        self._applied.clear()
        self._led.clear()
        self._acc.clear()
        for item in self.store.items().values():
            item.locked_by = None

    def recover(self) -> dict[str, Any]:
        """Rebuild acceptor state and in-doubt participations from the
        log. Unlike 2PC, an in-doubt participant does not depend on one
        coordinator: its takeover rounds re-learn the outcome from any
        majority of acceptors."""
        self.alive = True
        decided: set[str] = set()
        prepared: dict[str, tuple[str, tuple[str, ...],
                                  tuple[SimpleOp, ...]]] = {}
        scanned = 0
        for envelope in self.log.scan():
            scanned += 1
            record = envelope.record
            if record[0] == "prepared":
                prepared[record[1]] = (record[2], record[3], record[4])
            elif record[0] in ("participant-commit", "participant-abort"):
                decided.add(record[1])
            elif record[0] == "paxos-promise":
                slot = self._acc.setdefault((record[1], record[2]),
                                            _AcceptorSlot())
                slot.promised = max(slot.promised, record[3])
            elif record[0] == "paxos-accept":
                slot = self._acc.setdefault((record[1], record[2]),
                                            _AcceptorSlot())
                slot.promised = max(slot.promised, record[3])
                if record[3] >= slot.accepted_ballot:
                    slot.accepted_ballot = record[3]
                    slot.accepted_value = record[4]
        self._applied |= decided
        in_doubt = {txn_id: info for txn_id, info in prepared.items()
                    if txn_id not in decided}
        for txn_id, (coordinator, roster, ops) in in_doubt.items():
            for op in ops:
                self.store.get(op.item).locked_by = txn_id
            self._prepared[txn_id] = _Prepared(
                txn_id, coordinator, roster, ops,
                self.sim.now - self.config.txn_timeout)
        if in_doubt:
            self._push_takeovers()
            self._takeover_pusher.start()
        return {"site": self.name, "scanned": scanned,
                "in_doubt": len(in_doubt),
                "messages_needed": len(in_doubt)}


class PaxosCommitSystem:
    """A distributed database committing through Paxos Commit."""

    def __init__(self, sites: list[str], seed: int = 0,
                 link: LinkConfig | None = None,
                 config: BaselineConfig | None = None,
                 acceptors: list[str] | None = None) -> None:
        self.sim = Simulator(seed)
        self.network = Network(self.sim, link or LinkConfig())
        self.config = config or BaselineConfig()
        self.home: dict[str, str] = {}
        self.results: list[TxnResult] = []
        self.lock_holds: list[tuple[str, str, float]] = []
        self.recovery_messages = 0
        self.site_names = list(sites)
        if acceptors is None:
            # 2F+1 acceptors; F capped at 2 so the acceptor round does
            # not scale with the site count (the paper recommends a
            # small fixed acceptor set — F failures tolerated).
            f = min((len(sites) - 1) // 2, 2)
            acceptors = list(sites[:2 * f + 1])
        unknown = set(acceptors) - set(sites)
        if unknown:
            raise ValueError(f"acceptors {sorted(unknown)} are not sites")
        self.acceptors = list(acceptors)
        self.majority = len(self.acceptors) // 2 + 1
        self.sites = {name: PaxosCommitSite(name, self.sim, self.network,
                                            self.config, self.home, self)
                      for name in sites}

    def add_item(self, item: str, home: str, initial: Any) -> None:
        self.home[item] = home
        self.sites[home].store.create(item, initial)

    def submit(self, origin: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None) -> str:
        return self.sites[origin].submit(spec, on_done)

    def record_result(self, result: TxnResult) -> None:
        self.results.append(result)

    def record_lock_hold(self, site: str, txn_id: str,
                         duration: float) -> None:
        self.lock_holds.append((site, txn_id, duration))

    def currently_blocked(self) -> list[tuple[str, str, float]]:
        """Prepared participants still awaiting a decision — with a
        majority of acceptors connected this drains; 2PC's equivalent
        does not while its coordinator stays dark."""
        blocked = []
        for site in self.sites.values():
            for prepared in site._prepared.values():
                blocked.append((site.name, prepared.txn_id,
                                self.sim.now - prepared.prepared_at))
        return blocked

    def total_value(self, items: list[str] | None = None) -> Any:
        names = items if items is not None else list(self.home)
        return sum(self.sites[self.home[item]].store.get(item).value
                   for item in names)

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)

    def crash(self, site: str) -> None:
        self.sites[site].crash()

    def recover(self, site: str) -> dict[str, Any]:
        return self.sites[site].recover()
