"""Comparator systems implemented on the identical substrate.

The paper argues against these designs in prose; implementing them
makes the arguments measurable:

* :mod:`~repro.baselines.twopc` — traditional distributed transactions
  with two-phase commit (blocks under partitions: experiment E1, E5);
* :mod:`~repro.baselines.quorum` — replicated data with quorum
  consensus (minority partitions lose all access: E2);
* :mod:`~repro.baselines.primarycopy` — primary-copy replication (the
  primary's group keeps working, everyone else does not: E2);
* :mod:`~repro.baselines.escrow` — O'Neil's escrow method, the paper's
  cited hot-spot comparator, plus a plain exclusive-lock central
  counter (E6);
* :mod:`~repro.baselines.paxoscommit` — Gray & Lamport's Paxos Commit,
  the strongest coordinated contender: non-blocking through any F
  faults given 2F+1 acceptors, but still quorum-bound under partition
  (E15's commit-protocol showdown).
"""

from repro.baselines.common import UnknownItem
from repro.baselines.escrow import CentralCounterSystem
from repro.baselines.paxoscommit import PaxosCommitSystem
from repro.baselines.primarycopy import PrimaryCopySystem
from repro.baselines.quorum import QuorumSystem
from repro.baselines.twopc import TwoPCSystem

__all__ = [
    "CentralCounterSystem",
    "PaxosCommitSystem",
    "PrimaryCopySystem",
    "QuorumSystem",
    "TwoPCSystem",
    "UnknownItem",
]
