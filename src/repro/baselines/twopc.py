"""Traditional distributed transactions with two-phase commit.

Each item is stored whole at a *home* site. A transaction touching
items with several homes runs the textbook 2PC: the origin site
coordinates, participants prepare (lock + log + vote) and then obey the
coordinator's decision.

This baseline exists to exhibit exactly the failure mode the paper's
Section 2 is about: a participant that has voted YES and lost contact
with its coordinator holds its locks *indefinitely* — it cannot decide
unilaterally. The blocked-duration metrics below are the evidence
experiment E1 reports against DvP's bounded timeout aborts. Recovery of
a prepared participant is likewise *dependent*: it must reach the
coordinator before the in-doubt items become available (experiment E5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.common import (
    BaselineConfig,
    IdSource,
    PendingDone,
    SimpleOp,
    WholeStore,
    make_result,
    partition_ops,
)
from repro.core.transactions import (
    Outcome,
    TransactionSpec,
    TxnResult,
)
from repro.net.link import LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.storage.log import StableLog

# -- wire protocol ------------------------------------------------------------


@dataclass(frozen=True)
class PrepareMsg:
    txn_id: str
    coordinator: str
    ops: tuple[SimpleOp, ...]


@dataclass(frozen=True)
class VoteMsg:
    txn_id: str
    participant: str
    yes: bool
    read_values: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class DecisionMsg:
    txn_id: str
    commit: bool


@dataclass(frozen=True)
class DecisionAck:
    txn_id: str
    participant: str


@dataclass(frozen=True)
class DecisionRequest:
    txn_id: str
    participant: str


# -- per-site state ----------------------------------------------------------


@dataclass
class _Coordination:
    txn_id: str
    label: str
    participants: set[str]
    ops_by_site: dict[str, tuple[SimpleOp, ...]]
    done: PendingDone
    submitted_at: float
    votes: dict[str, bool] = field(default_factory=dict)
    read_values: dict[str, Any] = field(default_factory=dict)
    decided: bool = False
    commit: bool = False
    acked: set[str] = field(default_factory=set)
    deltas: list[tuple[str, int, Any]] = field(default_factory=list)


@dataclass
class _Prepared:
    txn_id: str
    coordinator: str
    ops: tuple[SimpleOp, ...]
    prepared_at: float


class TwoPCSite:
    """One site: possible coordinator, possible participant."""

    def __init__(self, name: str, sim: Simulator, network: Network,
                 config: BaselineConfig, home: dict[str, str],
                 system: "TwoPCSystem") -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.config = config
        self.home = home
        self.system = system
        self.store = WholeStore()
        self.log = StableLog(name)
        self.alive = True
        self._ids = IdSource(name)
        self._coordinations: dict[str, _Coordination] = {}
        self._prepared: dict[str, _Prepared] = {}
        self._timers: dict[str, Timer] = {}
        self._decision_pusher = PeriodicTimer(
            sim, config.retry_period, self._push_decisions,
            label=f"2pc-decisions:{name}")
        self._inquiry_pusher = PeriodicTimer(
            sim, config.retry_period, self._push_inquiries,
            label=f"2pc-inquiry:{name}")
        network.register(name, self.deliver)

    # -- client API -------------------------------------------------------

    def submit(self, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None) -> str:
        txn_id = self._ids.next()
        ops_by_site = partition_ops(spec, self.home)
        coordination = _Coordination(
            txn_id=txn_id, label=spec.label,
            participants=set(ops_by_site),
            ops_by_site=ops_by_site, done=PendingDone(on_done),
            submitted_at=self.sim.now)
        self._coordinations[txn_id] = coordination
        self.log.append(("coord-begin", txn_id, sorted(ops_by_site)))
        for participant, ops in ops_by_site.items():
            message = PrepareMsg(txn_id, self.name, ops)
            if participant == self.name:
                self._on_prepare(message)
            else:
                self.network.send(self.name, participant, message)
        timer = Timer(self.sim, lambda: self._coordinator_timeout(txn_id),
                      label=f"2pc-timeout:{txn_id}")
        timer.start(self.config.txn_timeout)
        self._timers[txn_id] = timer
        return txn_id

    # -- message dispatch -----------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, PrepareMsg):
            self._on_prepare(payload)
        elif isinstance(payload, VoteMsg):
            self._on_vote(payload)
        elif isinstance(payload, DecisionMsg):
            self._on_decision(payload)
        elif isinstance(payload, DecisionAck):
            self._on_decision_ack(payload)
        elif isinstance(payload, DecisionRequest):
            self._on_decision_request(payload)

    # -- participant side -------------------------------------------------------

    def _on_prepare(self, message: PrepareMsg) -> None:
        if message.txn_id in self._prepared:
            return  # duplicate
        vote_yes = True
        reads: list[tuple[str, Any]] = []
        items = {op.item for op in message.ops}
        # Check locks and feasibility; all-or-nothing locking.
        for item in items:
            if self.store.get(item).locked_by is not None:
                vote_yes = False
        if vote_yes:
            shadow = {item: self.store.get(item).value for item in items}
            for op in message.ops:
                if op.kind == "dec":
                    if shadow[op.item] < op.amount:
                        vote_yes = False
                        break
                    shadow[op.item] -= op.amount
                elif op.kind == "inc":
                    shadow[op.item] += op.amount
                else:
                    reads.append((op.item, shadow[op.item]))
        if not vote_yes:
            self._send_vote(message, yes=False, reads=())
            return
        for item in items:
            self.store.get(item).locked_by = message.txn_id
        self.log.append(("prepared", message.txn_id, message.coordinator,
                         message.ops))
        self._prepared[message.txn_id] = _Prepared(
            message.txn_id, message.coordinator, message.ops, self.sim.now)
        self._send_vote(message, yes=True, reads=tuple(reads))

    def _send_vote(self, message: PrepareMsg, yes: bool,
                   reads: tuple[tuple[str, Any], ...]) -> None:
        vote = VoteMsg(message.txn_id, self.name, yes, reads)
        if message.coordinator == self.name:
            self._on_vote(vote)
        else:
            self.network.send(self.name, message.coordinator, vote)

    def _on_decision(self, message: DecisionMsg) -> None:
        prepared = self._prepared.pop(message.txn_id, None)
        if prepared is not None:
            blocked_for = self.sim.now - prepared.prepared_at
            self.system.record_lock_hold(self.name, message.txn_id,
                                         blocked_for)
            if message.commit:
                for op in prepared.ops:
                    item = self.store.get(op.item)
                    if op.kind == "dec":
                        item.value -= op.amount
                    elif op.kind == "inc":
                        item.value += op.amount
                    item.version += 1
                self.log.append(("participant-commit", message.txn_id))
            else:
                self.log.append(("participant-abort", message.txn_id))
            for op in prepared.ops:
                item = self.store.get(op.item)
                if item.locked_by == message.txn_id:
                    item.locked_by = None
        coordinator = prepared.coordinator if prepared else None
        target = coordinator or self._coordinator_of(message.txn_id)
        if target is not None and target != self.name:
            self.network.send(self.name, target,
                              DecisionAck(message.txn_id, self.name))
        elif target == self.name:
            self._on_decision_ack(DecisionAck(message.txn_id, self.name))

    def _coordinator_of(self, txn_id: str) -> str | None:
        # txn ids embed the coordinator name ("W#3").
        return txn_id.split("#", 1)[0]

    # -- coordinator side ---------------------------------------------------------

    def _on_vote(self, vote: VoteMsg) -> None:
        coordination = self._coordinations.get(vote.txn_id)
        if coordination is None or coordination.decided:
            return
        coordination.votes[vote.participant] = vote.yes
        coordination.read_values.update(dict(vote.read_values))
        if not vote.yes:
            self._decide(coordination, commit=False, reason="vote-no")
        elif set(coordination.votes) == coordination.participants:
            self._decide(coordination, commit=True, reason="ok")

    def _coordinator_timeout(self, txn_id: str) -> None:
        coordination = self._coordinations.get(txn_id)
        if coordination is None or coordination.decided:
            return
        self._decide(coordination, commit=False, reason="timeout")

    def _decide(self, coordination: _Coordination, commit: bool,
                reason: str) -> None:
        coordination.decided = True
        coordination.commit = commit
        self.log.append(("coord-decision", coordination.txn_id, commit))
        timer = self._timers.pop(coordination.txn_id, None)
        if timer is not None:
            timer.cancel()
        if commit:
            for ops in coordination.ops_by_site.values():
                for op in ops:
                    if op.kind == "dec":
                        coordination.deltas.append((op.item, -1, op.amount))
                    elif op.kind == "inc":
                        coordination.deltas.append((op.item, +1, op.amount))
        self._broadcast_decision(coordination)
        self._decision_pusher.start()
        outcome = Outcome.COMMITTED if commit else Outcome.ABORTED
        coordination.done.fire(make_result(
            coordination.txn_id, coordination.label, outcome, reason,
            self.name, coordination.submitted_at, self.sim.now,
            deltas=coordination.deltas,
            read_values=coordination.read_values))
        self.system.record_result(coordination.done.collected[-1])

    def _broadcast_decision(self, coordination: _Coordination) -> None:
        message = DecisionMsg(coordination.txn_id, coordination.commit)
        for participant in coordination.participants:
            if participant in coordination.acked:
                continue
            if participant == self.name:
                self._on_decision(message)
            else:
                self.network.send(self.name, participant, message)

    def _on_decision_ack(self, ack: DecisionAck) -> None:
        coordination = self._coordinations.get(ack.txn_id)
        if coordination is None:
            return
        coordination.acked.add(ack.participant)

    def _push_decisions(self) -> None:
        """Retransmit decisions until every participant acknowledged."""
        outstanding = False
        for coordination in self._coordinations.values():
            if coordination.decided and \
                    coordination.acked < coordination.participants:
                outstanding = True
                self._broadcast_decision(coordination)
        if not outstanding:
            self._decision_pusher.stop()

    def _on_decision_request(self, request: DecisionRequest) -> None:
        """Answer a recovering participant from the coordinator log."""
        for envelope in self.log.scan_backwards():
            record = envelope.record
            if isinstance(record, tuple) and record[0] == "coord-decision" \
                    and record[1] == request.txn_id:
                self.network.send(self.name, request.participant,
                                  DecisionMsg(request.txn_id, record[2]))
                return
        # No decision logged: the coordinator never decided before its
        # own failure — presumed abort.
        self.network.send(self.name, request.participant,
                          DecisionMsg(request.txn_id, False))

    def _push_inquiries(self) -> None:
        """A recovered participant keeps asking about in-doubt txns."""
        if not self._prepared:
            self._inquiry_pusher.stop()
            return
        for prepared in self._prepared.values():
            self.system.recovery_messages += 1
            self.network.send(self.name, prepared.coordinator,
                              DecisionRequest(prepared.txn_id, self.name))

    # -- failure injection -----------------------------------------------------

    def crash(self) -> None:
        self.alive = False
        self._decision_pusher.stop()
        self._inquiry_pusher.stop()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._coordinations.clear()
        self._prepared.clear()
        for item in self.store.items().values():
            item.locked_by = None

    def recover(self) -> dict[str, Any]:
        """2PC recovery is NOT independent: in-doubt transactions need
        the coordinator. Returns a report mirroring DvP's for E5."""
        self.alive = True
        decided: set[str] = set()
        prepared: dict[str, tuple[str, tuple[SimpleOp, ...], Any]] = {}
        scanned = 0
        for envelope in self.log.scan():
            scanned += 1
            record = envelope.record
            if record[0] == "prepared":
                prepared[record[1]] = (record[2], record[3], envelope.lsn)
            elif record[0] in ("participant-commit", "participant-abort"):
                decided.add(record[1])
        in_doubt = {txn_id: info for txn_id, info in prepared.items()
                    if txn_id not in decided}
        for txn_id, (coordinator, ops, _lsn) in in_doubt.items():
            # Re-lock the in-doubt items; they stay unavailable until
            # the coordinator answers.
            for op in ops:
                self.store.get(op.item).locked_by = txn_id
            self._prepared[txn_id] = _Prepared(txn_id, coordinator, ops,
                                               self.sim.now)
        if in_doubt:
            self._push_inquiries()
            self._inquiry_pusher.start()
        return {"site": self.name, "scanned": scanned,
                "in_doubt": len(in_doubt),
                "messages_needed": len(in_doubt)}


class TwoPCSystem:
    """A traditional distributed database with 2PC commitment."""

    def __init__(self, sites: list[str], seed: int = 0,
                 link: LinkConfig | None = None,
                 config: BaselineConfig | None = None) -> None:
        self.sim = Simulator(seed)
        self.network = Network(self.sim, link or LinkConfig())
        self.config = config or BaselineConfig()
        self.home: dict[str, str] = {}
        self.results: list[TxnResult] = []
        self.lock_holds: list[tuple[str, str, float]] = []
        self.recovery_messages = 0
        self.sites = {name: TwoPCSite(name, self.sim, self.network,
                                      self.config, self.home, self)
                      for name in sites}

    def add_item(self, item: str, home: str, initial: Any) -> None:
        self.home[item] = home
        self.sites[home].store.create(item, initial)

    def submit(self, origin: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None) -> str:
        return self.sites[origin].submit(spec, on_done)

    def record_result(self, result: TxnResult) -> None:
        self.results.append(result)

    def record_lock_hold(self, site: str, txn_id: str,
                         duration: float) -> None:
        self.lock_holds.append((site, txn_id, duration))

    def currently_blocked(self) -> list[tuple[str, str, float]]:
        """Prepared participants still awaiting a decision (site,
        txn, how long so far) — the unbounded tail E1 exposes."""
        blocked = []
        for site in self.sites.values():
            for prepared in site._prepared.values():
                blocked.append((site.name, prepared.txn_id,
                                self.sim.now - prepared.prepared_at))
        return blocked

    def total_value(self, items: list[str] | None = None) -> Any:
        names = items if items is not None else list(self.home)
        return sum(self.sites[self.home[item]].store.get(item).value
                   for item in names)

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)

    def crash(self, site: str) -> None:
        self.sites[site].crash()

    def recover(self, site: str) -> dict[str, Any]:
        return self.sites[site].recover()
