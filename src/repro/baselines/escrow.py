"""O'Neil's escrow method and a plain exclusive-lock central counter.

Section 8 positions DvP as a *distributed* answer to aggregate-field
hot spots and cites the escrow transactional method as the specialized
centralized answer. This module implements both central designs over
the shared substrate so experiment E6 can compare three points:

* ``mode="lock"`` — the naive hot spot: one site, one exclusive lock,
  every transaction queues; throughput is capped at 1/work_time.
* ``mode="escrow"`` — O'Neil: the central site tracks, per item, the
  worst-case bounds implied by outstanding escrows (``inf`` = value
  minus all escrowed decrements). A decrement is granted immediately
  whenever ``inf - amount >= 0``, so transactions overlap freely; but
  everything still funnels through one site, and a partition cuts
  remote clients off entirely.
* DvP (from :mod:`repro.core`) — fragments spread the counter across
  sites; transactions are local.

Protocol (both modes): origin sends an acquire request; the central
site grants (immediately, after queueing, or never); the origin then
"works" for ``spec.work`` virtual time and sends the commit, which the
central applies. Origins retransmit unanswered commits — escrowed
quantities must not leak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.common import (
    BaselineConfig,
    IdSource,
    PendingDone,
    UnknownItem,
    make_result,
)
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    Outcome,
    TransactionSpec,
    TxnResult,
    UnsupportedSpec,
)
from repro.net.link import LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.timers import PeriodicTimer, Timer
from repro.storage.log import StableLog


@dataclass(frozen=True)
class AcquireReq:
    txn_id: str
    origin: str
    item: str
    kind: str  # "dec" | "inc"
    amount: Any


@dataclass(frozen=True)
class AcquireReply:
    txn_id: str
    granted: bool
    reason: str = ""


@dataclass(frozen=True)
class CommitReq:
    txn_id: str
    origin: str


@dataclass(frozen=True)
class CommitDone:
    txn_id: str


@dataclass(frozen=True)
class AbandonReq:
    """Client gave up (timed out) before/while holding the grant."""

    txn_id: str
    origin: str


@dataclass
class _CentralItem:
    value: Any
    locked_by: str | None = None
    wait_queue: list[str] = field(default_factory=list)
    #: txn -> (kind, amount): escrowed-but-uncommitted operations.
    journal: dict[str, tuple[str, Any]] = field(default_factory=dict)

    def escrow_inf(self) -> Any:
        """Worst-case committed value if every escrowed dec commits."""
        held = sum(amount for kind, amount in self.journal.values()
                   if kind == "dec")
        return self.value - held


@dataclass
class _ClientTxn:
    txn_id: str
    spec: TransactionSpec
    item: str
    kind: str
    amount: Any
    done: PendingDone
    submitted_at: float
    granted: bool = False
    committed: bool = False


class CentralCounterSystem:
    """A single hot counter managed at one central site.

    Clients at every site issue increments/decrements against items
    living at ``central``. ``mode`` selects exclusive locking or escrow
    accounting at the central site.
    """

    def __init__(self, sites: list[str], central: str, mode: str = "escrow",
                 seed: int = 0, link: LinkConfig | None = None,
                 config: BaselineConfig | None = None) -> None:
        if mode not in ("escrow", "lock"):
            raise ValueError(f"unknown mode {mode!r}")
        if central not in sites:
            raise ValueError("central site must be one of the sites")
        self.mode = mode
        self.central = central
        self.sim = Simulator(seed)
        self.network = Network(self.sim, link or LinkConfig())
        self.config = config or BaselineConfig()
        self.results: list[TxnResult] = []
        self.log = StableLog(central)
        self._items: dict[str, _CentralItem] = {}
        self._ids = IdSource("hot")
        self._clients: dict[str, _ClientTxn] = {}
        self._pending_requests: dict[str, AcquireReq] = {}
        self._timers: dict[str, Timer] = {}
        self._commit_retry = PeriodicTimer(
            self.sim, self.config.retry_period, self._retry_commits,
            label="escrow-commit-retry")
        self.site_names = list(sites)
        for name in sites:
            self.network.register(name, self._make_handler(name))

    # -- setup -------------------------------------------------------------

    def add_item(self, item: str, initial: Any) -> None:
        self._items[item] = _CentralItem(initial)

    def value(self, item: str) -> Any:
        return self._items[item].value

    # -- client API ----------------------------------------------------------

    def submit(self, origin: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None) -> str:
        if len(spec.ops) != 1 or not isinstance(
                spec.ops[0], (DecrementOp, IncrementOp)):
            raise UnsupportedSpec("central-counter baseline supports single "
                             "increment/decrement transactions")
        op = spec.ops[0]
        if op.item not in self._items:
            # Typed refusal: the central site indexes _items directly
            # on AcquireReq delivery and must never see unknown names.
            raise UnknownItem(f"unknown item {op.item!r}")
        kind = "dec" if isinstance(op, DecrementOp) else "inc"
        txn_id = f"{origin}:{self._ids.next()}"
        client = _ClientTxn(txn_id, spec, op.item, kind, op.amount,
                            PendingDone(on_done), self.sim.now)
        self._clients[txn_id] = client
        request = AcquireReq(txn_id, origin, op.item, kind, op.amount)
        self._route(origin, self.central, request)
        timer = Timer(self.sim, lambda: self._client_timeout(txn_id),
                      label=f"hot-timeout:{txn_id}")
        timer.start(self.config.txn_timeout)
        self._timers[txn_id] = timer
        return txn_id

    # -- message plumbing -------------------------------------------------------

    def _make_handler(self, name: str):
        def handler(envelope: Envelope) -> None:
            payload = envelope.payload
            if name == self.central and isinstance(payload, AcquireReq):
                self._central_acquire(payload)
            elif name == self.central and isinstance(payload, CommitReq):
                self._central_commit(payload)
            elif name == self.central and isinstance(payload, AbandonReq):
                self._central_abandon(payload)
            elif isinstance(payload, AcquireReply):
                self._client_granted(payload)
            elif isinstance(payload, CommitDone):
                self._client_done(payload)
        return handler

    def _route(self, src: str, dst: str, payload: Any) -> None:
        if src == dst:
            # Local client at the central site: no network hop.
            self.sim.after(0.0, lambda: self._dispatch_local(dst, payload),
                           label="hot-local")
        else:
            self.network.send(src, dst, payload)

    def _dispatch_local(self, name: str, payload: Any) -> None:
        handler = self._make_handler(name)
        self._deliver_direct(handler, name, payload)

    @staticmethod
    def _deliver_direct(handler, name: str, payload: Any) -> None:
        handler(Envelope(src=name, dst=name, payload=payload))

    # -- central site -------------------------------------------------------------

    def _central_acquire(self, request: AcquireReq) -> None:
        item = self._items[request.item]
        if self.mode == "escrow":
            self._escrow_acquire(request, item)
        else:
            self._lock_acquire(request, item)

    def _escrow_acquire(self, request: AcquireReq,
                        item: _CentralItem) -> None:
        if request.txn_id in item.journal:
            return  # duplicate request
        if request.kind == "dec" and \
                item.escrow_inf() - request.amount < 0:
            self._route(self.central, request.origin,
                        AcquireReply(request.txn_id, False, "insufficient"))
            return
        item.journal[request.txn_id] = (request.kind, request.amount)
        self.log.append(("escrow", request.txn_id, request.kind,
                         request.amount))
        self._pending_requests[request.txn_id] = request
        self._route(self.central, request.origin,
                    AcquireReply(request.txn_id, True))

    def _lock_acquire(self, request: AcquireReq,
                      item: _CentralItem) -> None:
        self._pending_requests[request.txn_id] = request
        if item.locked_by is None:
            self._lock_grant(request, item)
        elif request.txn_id not in item.wait_queue and \
                item.locked_by != request.txn_id:
            item.wait_queue.append(request.txn_id)

    def _lock_grant(self, request: AcquireReq, item: _CentralItem) -> None:
        if request.kind == "dec" and item.value < request.amount:
            self._pending_requests.pop(request.txn_id, None)
            self._route(self.central, request.origin,
                        AcquireReply(request.txn_id, False, "insufficient"))
            self._lock_next(item)
            return
        item.locked_by = request.txn_id
        item.journal[request.txn_id] = (request.kind, request.amount)
        self._route(self.central, request.origin,
                    AcquireReply(request.txn_id, True))

    def _lock_next(self, item: _CentralItem) -> None:
        while item.wait_queue and item.locked_by is None:
            txn_id = item.wait_queue.pop(0)
            request = self._pending_requests.get(txn_id)
            if request is not None:
                self._lock_grant(request, item)

    def _central_commit(self, request: CommitReq) -> None:
        pending = self._pending_requests.pop(request.txn_id, None)
        if pending is None:
            # Already committed (duplicate commit): just re-confirm.
            self._route(self.central, request.origin,
                        CommitDone(request.txn_id))
            return
        item = self._items[pending.item]
        entry = item.journal.pop(request.txn_id, None)
        if entry is not None:
            kind, amount = entry
            item.value = item.value - amount if kind == "dec" \
                else item.value + amount
            self.log.append(("commit", request.txn_id, kind, amount))
        if self.mode == "lock" and item.locked_by == request.txn_id:
            item.locked_by = None
            self._lock_next(item)
        self._route(self.central, request.origin,
                    CommitDone(request.txn_id))

    def _central_abandon(self, request: AbandonReq) -> None:
        """Undo an acquire whose client gave up: drop the journal entry
        (and the lock), then serve the queue."""
        pending = self._pending_requests.pop(request.txn_id, None)
        if pending is None:
            return
        item = self._items[pending.item]
        item.journal.pop(request.txn_id, None)
        if request.txn_id in item.wait_queue:
            item.wait_queue.remove(request.txn_id)
        if item.locked_by == request.txn_id:
            item.locked_by = None
            self._lock_next(item)

    # -- client side ------------------------------------------------------------------

    def _client_granted(self, reply: AcquireReply) -> None:
        client = self._clients.get(reply.txn_id)
        if client is None or client.done.fired:
            # A grant for a transaction that already timed out: give it
            # back so the central site doesn't leak the lock/escrow.
            if client is not None and not client.granted:
                origin = reply.txn_id.split(":", 1)[0]
                self._route(origin, self.central,
                            AbandonReq(reply.txn_id, origin))
            return
        if client.granted:
            return
        if not reply.granted:
            self._finish(client, Outcome.ABORTED, reply.reason or "refused")
            return
        client.granted = True
        # Perform the transaction's local work, then commit.
        self.sim.after(client.spec.work,
                       lambda: self._send_commit(client),
                       label=f"hot-work:{client.txn_id}")

    def _send_commit(self, client: _ClientTxn) -> None:
        if client.done.fired and not client.granted:
            return
        origin = client.txn_id.split(":", 1)[0]
        self._route(origin, self.central, CommitReq(client.txn_id, origin))
        self._commit_retry.start()

    def _retry_commits(self) -> None:
        outstanding = False
        for client in self._clients.values():
            if client.granted and not client.committed:
                outstanding = True
                self._send_commit(client)
        if not outstanding:
            self._commit_retry.stop()

    def _client_done(self, done_msg: CommitDone) -> None:
        client = self._clients.get(done_msg.txn_id)
        if client is None or client.committed:
            return
        client.committed = True
        sign = -1 if client.kind == "dec" else +1
        self._finish(client, Outcome.COMMITTED, "ok",
                     deltas=[(client.item, sign, client.amount)])

    def _client_timeout(self, txn_id: str) -> None:
        client = self._clients.get(txn_id)
        if client is None or client.done.fired:
            return
        if client.granted:
            # Escrow held, commit in flight: the retry loop will land it
            # eventually; the client-visible outcome stays open past the
            # timeout only in this already-granted state.
            return
        self._finish(client, Outcome.ABORTED, "timeout")

    def _finish(self, client: _ClientTxn, outcome: Outcome, reason: str,
                deltas: list | None = None) -> None:
        timer = self._timers.pop(client.txn_id, None)
        if timer is not None:
            timer.cancel()
        origin = client.txn_id.split(":", 1)[0]
        result = make_result(client.txn_id, client.spec.label, outcome,
                             reason, origin, client.submitted_at,
                             self.sim.now, deltas=deltas)
        if client.done.fire(result):
            self.results.append(result)

    # -- running -----------------------------------------------------------------------

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)
