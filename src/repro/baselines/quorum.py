"""Replicated data with quorum consensus.

Every item is fully replicated at every site with a version number. An
update must lock and write a *write quorum* of replicas; a read must
consult a *read quorum* (r + w > n). During a partition only a group
containing a quorum can make progress — the availability loss that
experiment E2 quantifies against DvP, where *every* group keeps serving
from its local quotas.

The implementation is the classic lock-quorum protocol: gather grants
from w replicas (each grant locks that replica), act on the
highest-version value, push the new version to the granting replicas,
release. A coordinator that cannot assemble the quorum inside its
timeout releases whatever it locked and aborts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.common import (
    BaselineConfig,
    IdSource,
    PendingDone,
    UnknownItem,
    WholeStore,
    make_result,
)
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    Outcome,
    ReadFullOp,
    TransactionSpec,
    TxnResult,
    UnsupportedSpec,
)
from repro.net.link import LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.storage.log import StableLog


@dataclass(frozen=True)
class LockReq:
    txn_id: str
    origin: str
    item: str
    round: int = 0


@dataclass(frozen=True)
class LockReply:
    txn_id: str
    replica: str
    item: str
    granted: bool
    version: int = -1
    value: Any = None
    round: int = 0


@dataclass(frozen=True)
class WriteReq:
    txn_id: str
    item: str
    value: Any
    version: int


@dataclass(frozen=True)
class ReleaseReq:
    txn_id: str
    item: str


@dataclass
class _Attempt:
    txn_id: str
    spec: TransactionSpec
    done: PendingDone
    submitted_at: float
    grants: dict[str, tuple[int, Any]] = field(default_factory=dict)
    denied: set[str] = field(default_factory=set)
    finished: bool = False
    round: int = 0


class QuorumSite:
    """One replica holder / coordinator."""

    def __init__(self, name: str, sim: Simulator, network: Network,
                 config: BaselineConfig, system: "QuorumSystem") -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.config = config
        self.system = system
        self.store = WholeStore()
        self.log = StableLog(name)
        self.alive = True
        self._ids = IdSource(name)
        self._attempts: dict[str, _Attempt] = {}
        self._timers: dict[str, Timer] = {}
        network.register(name, self.deliver)

    # -- client API --------------------------------------------------------

    def submit(self, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None) -> str:
        if len(spec.items()) != 1:
            raise UnsupportedSpec("quorum baseline supports single-item txns")
        item = next(iter(spec.items()))
        if item not in self.store:
            # Typed refusal at submit time: a replica receiving a lock
            # request for a nonexistent item would otherwise blow up
            # inside a delivery event.
            raise UnknownItem(f"unknown item {item!r}")
        txn_id = self._ids.next()
        attempt = _Attempt(txn_id, spec, PendingDone(on_done), self.sim.now)
        self._attempts[txn_id] = attempt
        self._send_lock_round(attempt)
        timer = Timer(self.sim, lambda: self._timeout(txn_id),
                      label=f"quorum-timeout:{txn_id}")
        timer.start(self.config.txn_timeout)
        self._timers[txn_id] = timer
        return txn_id

    def _send_lock_round(self, attempt: _Attempt) -> None:
        item = next(iter(attempt.spec.items()))
        for replica in self.system.sites:
            request = LockReq(attempt.txn_id, self.name, item,
                              attempt.round)
            if replica == self.name:
                self._on_lock_req(request)
            else:
                self.network.send(self.name, replica, request)

    # -- replica side ---------------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, LockReq):
            self._on_lock_req(payload)
        elif isinstance(payload, LockReply):
            self._on_lock_reply(payload)
        elif isinstance(payload, WriteReq):
            self._on_write(payload)
        elif isinstance(payload, ReleaseReq):
            self._on_release(payload)

    def _on_lock_req(self, request: LockReq) -> None:
        item = self.store.get(request.item)
        if item.locked_by is None or item.locked_by == request.txn_id:
            item.locked_by = request.txn_id
            reply = LockReply(request.txn_id, self.name, request.item,
                              True, item.version, item.value,
                              request.round)
        else:
            reply = LockReply(request.txn_id, self.name, request.item,
                              False, round=request.round)
        if request.origin == self.name:
            self._on_lock_reply(reply)
        else:
            self.network.send(self.name, request.origin, reply)

    def _on_write(self, request: WriteReq) -> None:
        item = self.store.get(request.item)
        if request.version > item.version:
            item.value = request.value
            item.version = request.version
            self.log.append(("replica-write", request.txn_id, request.item,
                             request.value, request.version))
        if item.locked_by == request.txn_id:
            item.locked_by = None

    def _on_release(self, request: ReleaseReq) -> None:
        item = self.store.get(request.item)
        if item.locked_by == request.txn_id:
            item.locked_by = None

    # -- coordinator side --------------------------------------------------------

    def _on_lock_reply(self, reply: LockReply) -> None:
        attempt = self._attempts.get(reply.txn_id)
        if attempt is None or attempt.finished:
            if reply.granted:
                # Straggler grant after the attempt ended: release it.
                self._send_release(reply.txn_id, reply.item, reply.replica)
            return
        if reply.round != attempt.round:
            # A *grant* from an abandoned round still holds the lock at
            # that replica: the retry released only the grants it had
            # seen when it reset. Unless the current round re-granted
            # there (same txn id — releasing would drop a lock we
            # hold), give it back, or the replica stays locked by this
            # transaction forever once it finishes elsewhere.
            if reply.granted and reply.replica not in attempt.grants:
                self._send_release(reply.txn_id, reply.item, reply.replica)
            return
        if reply.granted:
            attempt.grants[reply.replica] = (reply.version, reply.value)
        else:
            attempt.denied.add(reply.replica)
        needed = self.system.write_quorum
        if len(attempt.grants) >= needed:
            self._execute(attempt)
        elif len(self.system.sites) - len(attempt.denied) < needed:
            self._retry(attempt)

    def _retry(self, attempt: _Attempt) -> None:
        """Lock collision: back off and try a fresh round (until the
        transaction's own timeout aborts it)."""
        item_name = next(iter(attempt.spec.items()))
        for replica in list(attempt.grants):
            self._send_release(attempt.txn_id, item_name, replica)
        attempt.grants.clear()
        attempt.denied.clear()
        attempt.round += 1
        backoff = self.sim.rng.stream(f"quorum-backoff:{self.name}") \
            .uniform(0.5, 3.0)
        self.sim.after(backoff,
                       lambda: self._retry_fire(attempt.txn_id,
                                                attempt.round),
                       label=f"quorum-retry:{attempt.txn_id}")

    def _retry_fire(self, txn_id: str, round_number: int) -> None:
        attempt = self._attempts.get(txn_id)
        if attempt is None or attempt.finished or \
                attempt.round != round_number:
            return
        self._send_lock_round(attempt)

    def _execute(self, attempt: _Attempt) -> None:
        item_name = next(iter(attempt.spec.items()))
        version, value = max(attempt.grants.values())
        reads: dict[str, Any] = {}
        deltas: list[tuple[str, int, Any]] = []
        new_value = value
        for op in attempt.spec.ops:
            if isinstance(op, DecrementOp):
                if new_value < op.amount:
                    self._finish(attempt, Outcome.ABORTED, "insufficient")
                    return
                new_value -= op.amount
                deltas.append((op.item, -1, op.amount))
            elif isinstance(op, IncrementOp):
                new_value += op.amount
                deltas.append((op.item, +1, op.amount))
            elif isinstance(op, ReadFullOp):
                reads[op.item] = new_value
            else:
                self._finish(attempt, Outcome.ABORTED, "unsupported-op")
                return
        new_version = version + 1
        for replica in attempt.grants:
            request = WriteReq(attempt.txn_id, item_name, new_value,
                               new_version)
            if replica == self.name:
                self._on_write(request)
            else:
                self.network.send(self.name, replica, request)
        self._finish(attempt, Outcome.COMMITTED, "ok", deltas, reads)

    def _timeout(self, txn_id: str) -> None:
        attempt = self._attempts.get(txn_id)
        if attempt is None or attempt.finished:
            return
        self._finish(attempt, Outcome.ABORTED, "timeout")

    def _finish(self, attempt: _Attempt, outcome: Outcome, reason: str,
                deltas: list | None = None,
                reads: dict[str, Any] | None = None) -> None:
        attempt.finished = True
        timer = self._timers.pop(attempt.txn_id, None)
        if timer is not None:
            timer.cancel()
        if outcome is Outcome.ABORTED:
            item_name = next(iter(attempt.spec.items()))
            for replica in attempt.grants:
                self._send_release(attempt.txn_id, item_name, replica)
        result = make_result(attempt.txn_id, attempt.spec.label, outcome,
                             reason, self.name, attempt.submitted_at,
                             self.sim.now, deltas=deltas, read_values=reads)
        attempt.done.fire(result)
        self.system.results.append(result)

    def _send_release(self, txn_id: str, item: str, replica: str) -> None:
        request = ReleaseReq(txn_id, item)
        if replica == self.name:
            self._on_release(request)
        else:
            self.network.send(self.name, replica, request)

    # -- failure injection ------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: volatile coordination state is gone. Replica
        locks are released (they lived in memory); versioned values
        survive, so a coordinator's later write still version-checks.
        Retry backoffs armed before the crash hit ``_retry_fire`` with
        no matching attempt and fall through — nothing re-arms against
        the pre-crash incarnation."""
        self.alive = False
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._attempts.clear()
        for item in self.store.items().values():
            item.locked_by = None

    def recover(self) -> dict[str, Any]:
        self.alive = True
        return {"site": self.name, "in_doubt": 0}


class QuorumSystem:
    """Fully replicated items under quorum consensus."""

    def __init__(self, sites: list[str], seed: int = 0,
                 link: LinkConfig | None = None,
                 config: BaselineConfig | None = None,
                 write_quorum: int | None = None) -> None:
        self.sim = Simulator(seed)
        self.network = Network(self.sim, link or LinkConfig())
        self.config = config or BaselineConfig()
        self.results: list[TxnResult] = []
        self.sites: dict[str, QuorumSite] = {}
        for name in sites:
            self.sites[name] = QuorumSite(name, self.sim, self.network,
                                          self.config, self)
        self.write_quorum = (write_quorum if write_quorum is not None
                             else len(sites) // 2 + 1)

    def add_item(self, item: str, initial: Any) -> None:
        for site in self.sites.values():
            site.store.create(item, initial)

    def submit(self, origin: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None) -> str:
        return self.sites[origin].submit(spec, on_done)

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)

    def crash(self, site: str) -> None:
        self.sites[site].crash()

    def recover(self, site: str) -> Any:
        return self.sites[site].recover()

    def value(self, item: str) -> Any:
        """Latest-version value across replicas (god's-eye read)."""
        best = max((site.store.get(item).version, site.store.get(item).value)
                   for site in self.sites.values())
        return best[1]
