"""Shared pieces for the baseline systems.

Baselines store each logical item as a single whole value (possibly
replicated); they reuse the simulator, the network, the stable log and
the :class:`~repro.core.transactions.TxnResult` shape so every
comparison against DvP isolates the protocol difference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    Outcome,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
    TxnResult,
    UnsupportedSpec,
)
from repro.sim.kernel import Simulator


class UnknownItem(UnsupportedSpec):
    """Typed refusal for a spec naming an item the baseline never
    created.

    Subclasses :class:`UnsupportedSpec` so workload drivers treat it
    like any other out-of-scope spec (the customer walks away) instead
    of a raw ``KeyError`` crashing the simulation mid-event.
    """


@dataclass
class BaselineConfig:
    """Knobs shared by every baseline."""

    txn_timeout: float = 30.0
    #: Decision/retry retransmission period (2PC decisions, quorum
    #: releases) — baselines also need at-least-once delivery for
    #: their control messages.
    retry_period: float = 5.0


@dataclass
class WholeItem:
    """A single-copy (or one replica of a) data item."""

    value: Any
    version: int = 0
    locked_by: str | None = None


class WholeStore:
    """Item name -> :class:`WholeItem` at one site."""

    def __init__(self) -> None:
        self._items: dict[str, WholeItem] = {}

    def __contains__(self, item: str) -> bool:
        return item in self._items

    def create(self, item: str, value: Any) -> None:
        if item in self._items:
            raise ValueError(f"item {item!r} already exists")
        self._items[item] = WholeItem(value)

    def get(self, item: str) -> WholeItem:
        try:
            return self._items[item]
        except KeyError:
            raise UnknownItem(f"unknown item {item!r}") from None

    def items(self) -> dict[str, WholeItem]:
        return self._items


@dataclass(frozen=True)
class SimpleOp:
    """A home-site-local effect: +amount / -amount / read."""

    kind: str  # "inc" | "dec" | "read"
    item: str
    amount: Any = None


def partition_ops(spec: TransactionSpec, home: dict[str, str]
                  ) -> dict[str, tuple[SimpleOp, ...]]:
    """Group a spec's ops by the home site of each touched item.

    Shared by the coordinated baselines (2PC, Paxos Commit): both
    partition a transaction into per-participant effect lists. Raises
    :class:`UnknownItem` for items with no home — a typed refusal the
    submitter sees synchronously, not a ``KeyError`` inside a later
    delivery event.
    """
    grouped: dict[str, list[SimpleOp]] = {}

    def add(op: SimpleOp) -> None:
        try:
            site = home[op.item]
        except KeyError:
            raise UnknownItem(f"unknown item {op.item!r}") from None
        grouped.setdefault(site, []).append(op)

    for op in spec.ops:
        if isinstance(op, DecrementOp):
            add(SimpleOp("dec", op.item, op.amount))
        elif isinstance(op, IncrementOp):
            add(SimpleOp("inc", op.item, op.amount))
        elif isinstance(op, TransferOp):
            add(SimpleOp("dec", op.src_item, op.amount))
            add(SimpleOp("inc", op.dst_item, op.amount))
        elif isinstance(op, ReadFullOp):
            add(SimpleOp("read", op.item))
        else:
            raise UnsupportedSpec(f"unsupported op for commit "
                                  f"protocol: {op!r}")
    return {site: tuple(ops) for site, ops in grouped.items()}


def make_result(txn_id: str, label: str, outcome: Outcome, reason: str,
                site: str, submitted_at: float, finished_at: float,
                deltas: list[tuple[str, int, Any]] | None = None,
                read_values: dict[str, Any] | None = None) -> TxnResult:
    """Build a TxnResult in baseline code without core's Transaction."""
    return TxnResult(
        txn_id=txn_id, label=label, outcome=outcome, reason=reason,
        site=site, submitted_at=submitted_at, finished_at=finished_at,
        read_values=read_values or {}, semantic_deltas=deltas or [])


class IdSource:
    """Monotonic ids with a prefix (txn ids, message ids)."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def next(self) -> str:
        return f"{self._prefix}#{next(self._counter)}"


@dataclass
class PendingDone:
    """Callback wrapper that guarantees exactly-once completion."""

    callback: Callable[[TxnResult], None] | None
    fired: bool = False
    collected: list[TxnResult] = field(default_factory=list)

    def fire(self, result: TxnResult) -> bool:
        if self.fired:
            return False
        self.fired = True
        self.collected.append(result)
        if self.callback is not None:
            self.callback(result)
        return True


def within(sim: Simulator, start: float, timeout: float) -> bool:
    return sim.now - start < timeout
