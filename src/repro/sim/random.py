"""Named, independently seeded RNG streams.

Each component asks for a stream by name (``rng.stream("link:W->X")``).
Stream seeds are derived from the master seed and the name, so the draws
one component makes can never perturb another's — a prerequisite for
meaningful A/B experiments on the same seed.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed derived from (master_seed, name)."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) stream for *name*."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child family of streams, independent of this one."""
        return RandomStreams(derive_seed(self.master_seed, f"fork:{name}"))
