"""Deterministic discrete-event simulation kernel.

Every component of the reproduction — sites, links, clients, failure
injectors — runs on top of this kernel. Determinism matters because the
paper's claims are about protocol behaviour under failures; a seeded,
deterministic simulator turns each claim into a repeatable experiment.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.timers import Timer

__all__ = ["Event", "EventQueue", "Simulator", "RandomStreams", "Timer"]
