"""Restartable timeout handles built on kernel events.

Transactions (Section 5 of the paper) arm a timeout when they send
requests and abort when it fires; the Vm layer arms retransmission
timers. Both need cancel/restart semantics, which raw events lack.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import Event
from repro.sim.kernel import Simulator


class Timer:
    """A one-shot timer that can be cancelled and re-armed.

    *site* is an optional placement hint for sharded simulations
    (repro.sim.shard): a site-hinted timer always arms on the shard
    owning that site's state, even when :meth:`start` is called from
    setup code outside any event. On the single-queue kernel the hint
    is free (``call_in_site`` runs the arming immediately).
    """

    def __init__(self, sim: Simulator, action: Callable[[], Any],
                 label: str = "timer", site: str | None = None) -> None:
        self._sim = sim
        self._action = action
        self._label = label
        self._site = site
        self._event: Event | None = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire after *delay*."""
        self.cancel()
        if self._site is None:
            self._event = self._sim.after(delay, self._fire,
                                          label=self._label)
        else:
            self._event = self._sim.call_in_site(
                self._site,
                lambda: self._sim.after(delay, self._fire,
                                        label=self._label))

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._action()


class PeriodicTimer:
    """Fires *action* every *period* until stopped.

    Used by the Vm retransmission loop: as long as a site has
    unacknowledged virtual messages it periodically re-sends the real
    messages that carry them.
    """

    def __init__(self, sim: Simulator, period: float,
                 action: Callable[[], Any], label: str = "periodic",
                 site: str | None = None) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._action = action
        self._label = label
        self._site = site           # placement hint, as on Timer
        self._event: Event | None = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule(self) -> None:
        if self._site is None:
            self._event = self._sim.after(self.period, self._tick,
                                          label=self._label)
        else:
            self._event = self._sim.call_in_site(
                self._site,
                lambda: self._sim.after(self.period, self._tick,
                                        label=self._label))

    def _tick(self) -> None:
        self._event = None
        if not self._running:
            return
        self._action()
        if self._running:
            self._schedule()
