"""The simulation kernel: a virtual clock driving an event queue."""

from __future__ import annotations

import hashlib
from typing import Any, Callable

from repro.obs.bus import TraceBus
from repro.obs.events import KernelStep
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Event, EventQueue
from repro.sim.random import RandomStreams


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class LookaheadError(SimulationError):
    """A cross-shard event was scheduled closer than the lookahead bound
    (see :mod:`repro.sim.shard`): the conservative synchronization
    protocol cannot deliver it in time."""


class Simulator:
    """Deterministic discrete-event simulator.

    The kernel owns the virtual clock and the pending-event queue.
    Components schedule work with :meth:`at` (absolute time) or
    :meth:`after` (relative delay); the run loops advance the clock to
    each event's timestamp and invoke its callback.

    A single integer *seed* fans out into independent named RNG streams
    (see :class:`~repro.sim.random.RandomStreams`), so adding randomness
    to one component never perturbs another component's draws.
    """

    def __init__(self, seed: int = 0,
                 queue_factory: Callable[[], Any] | None = None) -> None:
        self._queue = (queue_factory or EventQueue)()
        self._now = 0.0
        self.rng = RandomStreams(seed)
        self._trace: list[tuple[float, str]] | None = None
        self._trace_hash: "hashlib._Hash | None" = None
        self._trace_limit: int | None = None
        self._steps = 0
        # End-of-event hooks (see defer_to_event_end): callbacks that
        # must observe everything the current event did — e.g. the Vm
        # ack coalescer deciding whether an explicit ack is redundant
        # because a transfer to the same peer already left this instant.
        self._executing = False
        self._event_end: list[Callable[[], Any]] = []
        #: Structured observability (docs/OBSERVABILITY.md): the typed
        #: event bus and the metrics registry shared by every component
        #: of this simulation. The bus starts disabled; instrumentation
        #: guards on ``obs.enabled`` so the default cost is one branch.
        self.obs = TraceBus()
        self.metrics = MetricsRegistry()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of events executed so far."""
        return self._steps

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def defer_to_event_end(self, action: Callable[[], Any]) -> bool:
        """Run *action* right after the current event's callback returns.

        Returns True when an event is executing (the action is queued
        and will run at the same virtual instant, before the next event
        pops — later deferrals from inside a deferred action are also
        honored, FIFO). Returns False outside the event loop, in which
        case the caller must fall back to acting immediately.
        """
        if not self._executing:
            return False
        self._event_end.append(action)
        return True

    def _drain_event_end(self) -> None:
        queue = self._event_end
        index = 0
        while index < len(queue):
            queue[index]()
            index += 1
        queue.clear()

    def enable_trace(self, limit: int | None = None) -> None:
        """Record (time, label) for every executed event.

        Every traced event also feeds a running SHA-256 so two runs can
        be compared bit-for-bit without retaining the whole schedule:
        *limit* caps how many (time, label) pairs the :attr:`trace`
        list keeps (None = all), but the fingerprint always covers every
        event executed after tracing was enabled. The chaos engine's
        replay-determinism checks (see :mod:`repro.chaos`) hinge on
        this hook.
        """
        self._trace = []
        self._trace_hash = hashlib.sha256()
        self._trace_limit = limit

    @property
    def trace(self) -> list[tuple[float, str]]:
        if self._trace is None:
            raise SimulationError("tracing is not enabled")
        return self._trace

    def trace_fingerprint(self) -> str:
        """Hex digest over every (time, label) executed while tracing."""
        if self._trace_hash is None:
            raise SimulationError("tracing is not enabled")
        return self._trace_hash.hexdigest()

    def _record(self, time: float, label: str) -> None:
        if self._trace_limit is None or len(self._trace) < self._trace_limit:
            self._trace.append((time, label))
        self._trace_hash.update(f"{time!r}\x1f{label}\x1e".encode())

    def at(self, time: float, action: Callable[[], Any], priority: int = 0,
           label: str = "") -> Event:
        """Schedule *action* at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        return self._queue.push(time, action, priority, label)

    def after(self, delay: float, action: Callable[[], Any], priority: int = 0,
              label: str = "") -> Event:
        """Schedule *action* after a non-negative *delay*."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, action, priority, label)

    # -- placement hooks (overridden by repro.sim.shard) -------------------
    #
    # On this single-queue kernel every placement hint collapses to the
    # plain schedule calls above, so callers can route unconditionally.
    # The ShardedSimulator overrides them: *site* hints place the event
    # on the shard owning that site's state, and *global* events run at
    # a synchronization barrier where every shard has reached their
    # timestamp. The contract callers must follow for shard-correctness:
    #
    # * events that touch one site's state carry that site (at_site /
    #   after_for_site),
    # * events that touch the whole topology (partitions, heals,
    #   cross-site probes) use at_global,
    # * setup code that arms site-owned timers outside any event wraps
    #   the arming in call_in_site.

    def at_site(self, site: str, time: float, action: Callable[[], Any],
                priority: int = 0, label: str = "") -> Event:
        """Schedule *action* at *time*, placed with *site*'s state."""
        return self.at(time, action, priority, label)

    def after_for_site(self, site: str, delay: float,
                       action: Callable[[], Any], priority: int = 0,
                       label: str = "") -> Event:
        """Schedule *action* after *delay*, placed with *site*'s state."""
        return self.after(delay, action, priority, label)

    def at_global(self, time: float, action: Callable[[], Any],
                  priority: int = 0, label: str = "") -> Event:
        """Schedule a topology-wide *action* at *time*."""
        return self.at(time, action, priority, label)

    def call_in_site(self, site: str, action: Callable[[], Any]) -> Any:
        """Run setup code in *site*'s scheduling context, immediately."""
        return action()

    def shard_of(self, site: str) -> int:
        """The shard owning *site* (single-queue kernel: always 0)."""
        return 0

    def adopt_site(self, site: str) -> int:
        """Admit a site created after construction into the placement
        plan (elastic topology); returns its shard. A no-op here — the
        single-queue kernel places everything on shard 0."""
        return 0

    def step(self) -> bool:
        """Execute the next event; return False when the queue is drained."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._steps += 1
        if self._trace is not None:
            self._record(event.time, event.label)
        if self.obs.kernel_steps:
            self.obs.emit(KernelStep(t=event.time, label=event.label))
        self._executing = True
        try:
            event.action()
            if self._event_end:
                self._drain_event_end()
        finally:
            self._executing = False
            self._event_end.clear()
        return True

    def run(self, max_steps: int | None = None) -> None:
        """Run until the queue drains (or at most *max_steps* events)."""
        remaining = max_steps
        while remaining is None or remaining > 0:
            if not self.step():
                return
            if remaining is not None:
                remaining -= 1

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= *time*, then set clock there.

        ``_executing`` is flipped once for the whole loop, not per
        event: between one action returning (and its end-of-event hooks
        draining) and the next pop, no foreign code runs, so the flag
        is still truthful for defer_to_event_end.
        """
        queue = self._queue
        trace = self._trace
        obs = self.obs
        event_end = self._event_end
        self._executing = True
        try:
            while True:
                event = queue.pop_if_due(time)
                if event is None:
                    break
                self._now = event.time
                self._steps += 1
                if trace is not None:
                    self._record(event.time, event.label)
                if obs.kernel_steps:
                    obs.emit(KernelStep(t=event.time, label=event.label))
                event.action()
                if event_end:
                    self._drain_event_end()
        finally:
            self._executing = False
            event_end.clear()
        self._now = max(self._now, time)
