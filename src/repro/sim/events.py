"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, seq)``. The monotonically
increasing ``seq`` makes ordering total and stable: two events scheduled
for the same instant fire in scheduling order, which keeps runs
deterministic regardless of heap internals.

Cancellation is lazy (a cancelled event stays in the heap until it
reaches the top), but the queue tracks how many cancelled entries it is
carrying and *compacts* the heap when they dominate: long chaos runs
cancel thousands of timers (retransmission timers stopped by acks,
transaction timeouts disarmed by commits), and without compaction every
``push``/``pop`` keeps paying the log factor of a heap mostly full of
corpses.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

#: Compaction triggers only above this heap size (small heaps never pay
#: a rebuild) and only when cancelled entries are the majority.
COMPACT_MIN_HEAP = 1024


@dataclass(slots=True)
class Event:
    """A pending callback, comparable by (time, priority, seq).

    ``slots=True`` drops the per-event ``__dict__``: simulations
    allocate one Event per arrival, message hop, and timer tick, so the
    slimmer layout measurably cuts allocation and comparison cost in
    long runs.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Back-reference to the owning queue while the event sits in its
    #: heap (cleared on removal) — lets cancel() keep the queue's
    #: cancelled-entry count exact without a scan.
    queue: "EventQueue | None" = field(compare=False, default=None,
                                       repr=False)

    def __lt__(self, other: "Event") -> bool:
        # Hand-written instead of dataclass(order=True): the generated
        # method builds two field tuples per comparison, and heap
        # sift-up/down makes this the hottest function in long runs.
        # Times almost always differ, so the common path is one load
        # and one float compare per side.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancel()


class EventQueue:
    """Min-heap of :class:`Event` with lazy cancellation + compaction."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._cancelled = 0
        self.compactions = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events.

        Counting live events keeps the answer stable across lazy
        discards and heap compaction.
        """
        return len(self._heap) - self._cancelled

    def push(self, time: float, action: Callable[[], Any], priority: int = 0,
             label: str = "") -> Event:
        """Enqueue *action* to run at *time*; return a cancellable handle."""
        event = Event(time, priority, self._seq, action, label, queue=self)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event.queue = None
            if not event.cancelled:
                return event
            self._cancelled -= 1
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).queue = None
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_if_due(self, time: float) -> Event | None:
        """Pop the earliest live event iff it is due by *time*.

        One heap traversal replaces the ``peek_time()``-then-``pop()``
        pair the run-until loop used to make per event: cancelled heads
        are discarded on the way, and a live head scheduled after
        *time* stays queued.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap).queue = None
                self._cancelled -= 1
                continue
            if event.time > time:
                return None
            event = heapq.heappop(heap)
            event.queue = None
            return event
        return None

    # -- compaction --------------------------------------------------------

    def _note_cancel(self) -> None:
        """One in-heap event was cancelled; compact if corpses dominate."""
        self._cancelled += 1
        if (len(self._heap) > COMPACT_MIN_HEAP
                and self._cancelled * 2 > len(self._heap)):
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        O(live) — heapify over the survivors. Order is preserved
        because events compare by ``(time, priority, seq)``, which is
        independent of heap layout.
        """
        survivors = [event for event in self._heap if not event.cancelled]
        self._heap = survivors
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def clear(self) -> None:
        for event in self._heap:
            event.queue = None
        self._heap.clear()
        self._cancelled = 0
