"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, seq)``. The monotonically
increasing ``seq`` makes ordering total and stable: two events scheduled
for the same instant fire in scheduling order, which keeps runs
deterministic regardless of queue internals.

Two queue implementations share that contract:

* :class:`HeapEventQueue` — the original binary heap. Every push and
  pop pays ``O(log pending)`` Python-level ``Event.__lt__`` calls,
  which PR 5's profiling showed is the kernel's hottest code.
* :class:`CalendarEventQueue` — a calendar-queue / timer-wheel hybrid
  (``EventQueue`` aliases it). Virtual time is cut into fixed-width
  *days*; an event lands in an O(1) unsorted wheel bucket for its day,
  a far-future overflow heap, or the small *current-day* heap that
  feeds ``pop``. Most events (link deliveries a few time units out,
  timers tens of units out) take the O(1) bucket path and only ever
  pay heap costs against the handful of events sharing their day —
  not against every pending retransmission timer in the run.

Both orders are *identical* — the calendar structure only changes
where an event waits, never when it pops — so trace fingerprints and
every replay artifact recorded against the heap still verify.

Cancellation is lazy (a cancelled event stays stored until it reaches
the front), but the queue tracks how many cancelled entries it is
carrying and *compacts* when they dominate: long chaos runs cancel
thousands of timers (retransmission timers stopped by acks, transaction
timeouts disarmed by commits). In the calendar queue a cancelled wheel
entry additionally costs nothing until its day is reached — corpses
never sift through a heap they were removed from.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

#: Compaction triggers only above this store size (small queues never
#: pay a rebuild) and only when cancelled entries are the majority.
COMPACT_MIN_HEAP = 1024

#: Width of one calendar day in virtual-time units. Link delays and
#: timer periods in this codebase are O(1)–O(10) units, so a day holds
#: only the events of one delivery "generation".
DEFAULT_DAY_WIDTH = 1.0

#: Days covered by the wheel before events spill to the overflow heap.
DEFAULT_WHEEL_DAYS = 256


@dataclass(slots=True)
class Event:
    """A pending callback, comparable by (time, priority, seq).

    ``slots=True`` drops the per-event ``__dict__``: simulations
    allocate one Event per arrival, message hop, and timer tick, so the
    slimmer layout measurably cuts allocation and comparison cost in
    long runs.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Back-reference to the owning queue while the event sits in its
    #: store (cleared on removal — including lazy discards and
    #: compaction — so a popped handle can never keep a dead queue
    #: alive) — lets cancel() keep the queue's cancelled-entry count
    #: exact without a scan.
    queue: "HeapEventQueue | CalendarEventQueue | None" = field(
        compare=False, default=None, repr=False)

    def __lt__(self, other: "Event") -> bool:
        # Hand-written instead of dataclass(order=True): the generated
        # method builds two field tuples per comparison, and heap
        # sift-up/down makes this the hottest function in long runs.
        # Times almost always differ, so the common path is one load
        # and one float compare per side.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancel()


class HeapEventQueue:
    """Min-heap of :class:`Event` with lazy cancellation + compaction.

    The pre-calendar implementation, kept as the ordering *reference*:
    the calendar queue's property tests replay random schedules against
    it and demand identical pop sequences. It is also a drop-in
    fallback (``Simulator(queue_factory=HeapEventQueue)``).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._cancelled = 0
        self.compactions = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events.

        Counting live events keeps the answer stable across lazy
        discards and heap compaction.
        """
        return len(self._heap) - self._cancelled

    def push(self, time: float, action: Callable[[], Any], priority: int = 0,
             label: str = "") -> Event:
        """Enqueue *action* to run at *time*; return a cancellable handle."""
        event = Event(time, priority, self._seq, action, label, queue=self)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event.queue = None
            if not event.cancelled:
                return event
            self._cancelled -= 1
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).queue = None
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_if_due(self, time: float) -> Event | None:
        """Pop the earliest live event iff it is due by *time*.

        One heap traversal replaces the ``peek_time()``-then-``pop()``
        pair the run-until loop used to make per event: cancelled heads
        are discarded on the way, and a live head scheduled after
        *time* stays queued.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap).queue = None
                self._cancelled -= 1
                continue
            if event.time > time:
                return None
            event = heapq.heappop(heap)
            event.queue = None
            return event
        return None

    # -- compaction --------------------------------------------------------

    def _note_cancel(self) -> None:
        """One stored event was cancelled; compact if corpses dominate."""
        self._cancelled += 1
        if (len(self._heap) > COMPACT_MIN_HEAP
                and self._cancelled * 2 > len(self._heap)):
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        O(live) — heapify over the survivors. Order is preserved
        because events compare by ``(time, priority, seq)``, which is
        independent of heap layout.
        """
        survivors = []
        for event in self._heap:
            if event.cancelled:
                event.queue = None
            else:
                survivors.append(event)
        self._heap = survivors
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def clear(self) -> None:
        for event in self._heap:
            event.queue = None
        self._heap.clear()
        self._cancelled = 0


class CalendarEventQueue:
    """Calendar-queue / timer-wheel hybrid with exact heap-order parity.

    Storage tiers, by how far ahead an event's *day*
    (``floor(time / day_width)``) lies:

    * day <= current day — the **current run**, a list kept sorted in
      *descending* ``(time, priority, seq)`` order. ``pop`` only ever
      touches this tier, and because the next event sits at the tail it
      is a comparison-free ``list.pop()`` — where the binary heap paid
      ``~2·log(pending)`` Python-level ``__lt__`` calls sifting down.
    * within ``wheel_days`` days — an **unsorted wheel bucket**;
      push is an O(1) list append with zero comparisons.
    * beyond the wheel — the **overflow heap** (far-future events are
      rare: recovery backstops, experiment horizons).

    When the current run drains, ``_refill`` advances the calendar to
    the next populated day — the nearest non-empty wheel bucket or the
    overflow head's day, whichever is earlier — and sorts that day's
    survivors as the new current run (one Timsort over the few events
    sharing a day, instead of per-event sifting against every pending
    timer in the simulation). A wheel bucket holds exactly one day's
    events (a later day mapping to the same slot cannot be pushed until
    this day has been consumed — the wheel spans fewer days than one
    lap), so refill never has to sift entries back.

    Order parity with :class:`HeapEventQueue` is structural: every tier
    orders by the same total comparator, later days only hold strictly
    later times, and pushes into a day the calendar already passed
    binary-insert into the current run where the comparator places
    them.
    """

    def __init__(self, day_width: float = DEFAULT_DAY_WIDTH,
                 wheel_days: int = DEFAULT_WHEEL_DAYS) -> None:
        if day_width <= 0:
            raise ValueError("day_width must be positive")
        if wheel_days < 2:
            raise ValueError("wheel_days must be at least 2")
        self._width = day_width
        self._wheel: list[list[Event]] = [[] for _ in range(wheel_days)]
        self._wheel_days = wheel_days
        self._wheel_count = 0      # entries (live + cancelled) in buckets
        self._day = 0              # the day the current run covers
        #: Descending (time, priority, seq) — the next event is last.
        self._current: list[Event] = []
        self._overflow: list[Event] = []
        self._seq = 0
        self._cancelled = 0        # cancelled entries still stored
        self._size = 0             # total entries stored (live + cancelled)
        self.compactions = 0
        #: Calendar jumps taken by :meth:`_refill` (observability).
        self.refills = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return self._size - self._cancelled

    def push(self, time: float, action: Callable[[], Any], priority: int = 0,
             label: str = "") -> Event:
        """Enqueue *action* to run at *time*; return a cancellable handle."""
        event = Event(time, priority, self._seq, action, label, queue=self)
        self._seq += 1
        self._size += 1
        day = int(time / self._width)
        gap = day - self._day
        if gap <= 0:
            # Today or a day the calendar already passed (possible after
            # an idle-gap jump): binary-insert into the descending
            # current run. The comparator is total (seq breaks every
            # tie), so the slot is unique.
            current = self._current
            lo, hi = 0, len(current)
            while lo < hi:
                mid = (lo + hi) // 2
                if event < current[mid]:
                    lo = mid + 1
                else:
                    hi = mid
            current.insert(lo, event)
        elif gap < self._wheel_days:
            self._wheel[day % self._wheel_days].append(event)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if drained."""
        current = self._current
        while True:
            while current:
                event = current.pop()
                event.queue = None
                self._size -= 1
                if not event.cancelled:
                    return event
                self._cancelled -= 1
            if not self._refill():
                return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        current = self._current
        while True:
            while current and current[-1].cancelled:
                current.pop().queue = None
                self._cancelled -= 1
                self._size -= 1
            if current:
                return current[-1].time
            if not self._refill():
                return None

    def pop_if_due(self, time: float) -> Event | None:
        """Pop the earliest live event iff it is due by *time*."""
        current = self._current
        while True:
            while current:
                event = current[-1]
                if event.cancelled:
                    current.pop().queue = None
                    self._cancelled -= 1
                    self._size -= 1
                    continue
                if event.time > time:
                    return None
                current.pop()
                event.queue = None
                self._size -= 1
                return event
            if not self._refill():
                return None

    def _refill(self) -> bool:
        """Advance the calendar to the next populated day.

        Precondition: the current heap is empty. Moves that day's wheel
        bucket — and any overflow entries whose day has come within
        reach — into the current heap. Returns False when nothing is
        stored anywhere.
        """
        overflow = self._overflow
        while overflow and overflow[0].cancelled:
            # Keep the overflow head live so its day is meaningful.
            heapq.heappop(overflow).queue = None
            self._cancelled -= 1
            self._size -= 1
        wheel_day = None
        if self._wheel_count:
            # The nearest populated bucket is at most one lap away.
            for step in range(1, self._wheel_days + 1):
                if self._wheel[(self._day + step) % self._wheel_days]:
                    wheel_day = self._day + step
                    break
        over_day = (int(overflow[0].time / self._width)
                    if overflow else None)
        if wheel_day is None and over_day is None:
            return False
        if over_day is not None and (wheel_day is None
                                     or over_day < wheel_day):
            target = over_day
        else:
            target = wheel_day
        self._day = target
        self.refills += 1
        current = self._current
        if target == wheel_day:
            bucket = self._wheel[target % self._wheel_days]
            self._wheel_count -= len(bucket)
            for event in bucket:
                if event.cancelled:
                    event.queue = None
                    self._cancelled -= 1
                    self._size -= 1
                else:
                    current.append(event)
            bucket.clear()
        end = (target + 1) * self._width
        while overflow and overflow[0].time < end:
            event = heapq.heappop(overflow)
            if event.cancelled:
                event.queue = None
                self._cancelled -= 1
                self._size -= 1
            else:
                current.append(event)
        current.sort(reverse=True)
        return True

    # -- compaction --------------------------------------------------------

    def _note_cancel(self) -> None:
        """One stored event was cancelled; compact if corpses dominate."""
        self._cancelled += 1
        if (self._size > COMPACT_MIN_HEAP
                and self._cancelled * 2 > self._size):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry from all three tiers.

        O(stored). Order is preserved because events compare by
        ``(time, priority, seq)``, independent of storage layout. Each
        dropped corpse's back-reference is cleared so popped-and-held
        handles never pin the queue.
        """
        self._current = self._sweep(self._current)  # sweep keeps order
        self._overflow = self._sweep(self._overflow)
        heapq.heapify(self._overflow)
        for index, bucket in enumerate(self._wheel):
            if bucket:
                survivors = self._sweep(bucket)
                self._wheel_count -= len(bucket) - len(survivors)
                self._wheel[index] = survivors
        self._cancelled = 0
        self.compactions += 1

    def _sweep(self, events: list[Event]) -> list[Event]:
        survivors = []
        for event in events:
            if event.cancelled:
                event.queue = None
                self._size -= 1
            else:
                survivors.append(event)
        return survivors

    def clear(self) -> None:
        for store in (self._current, self._overflow, *self._wheel):
            for event in store:
                event.queue = None
            store.clear()
        self._wheel_count = 0
        self._cancelled = 0
        self._size = 0


#: The kernel's default queue. The calendar hybrid pops in exactly the
#: heap's (time, priority, seq) order, so swapping the default changes
#: no fingerprint, no replay artifact, and no test expectation.
EventQueue = CalendarEventQueue
