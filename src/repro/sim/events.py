"""Event objects and the pending-event queue.

Events are ordered by ``(time, priority, seq)``. The monotonically
increasing ``seq`` makes ordering total and stable: two events scheduled
for the same instant fire in scheduling order, which keeps runs
deterministic regardless of heap internals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True, slots=True)
class Event:
    """A pending callback, comparable by (time, priority, seq).

    ``slots=True`` drops the per-event ``__dict__``: simulations
    allocate one Event per arrival, message hop, and timer tick, so the
    slimmer layout measurably cuts allocation and comparison cost in
    long runs.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], Any], priority: int = 0,
             label: str = "") -> Event:
        """Enqueue *action* to run at *time*; return a cancellable handle."""
        event = Event(time, priority, self._seq, action, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_if_due(self, time: float) -> Event | None:
        """Pop the earliest live event iff it is due by *time*.

        One heap traversal replaces the ``peek_time()``-then-``pop()``
        pair the run-until loop used to make per event: cancelled heads
        are discarded on the way, and a live head scheduled after
        *time* stays queued.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if event.time > time:
                return None
            return heapq.heappop(heap)
        return None

    def clear(self) -> None:
        self._heap.clear()
