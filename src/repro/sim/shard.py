"""Sharded simulation: N site-group shards under conservative lookahead.

One logical simulation is split into *shards*, each owning a site
group with its own :class:`~repro.sim.events.EventQueue`, virtual
clock, and trace stream. Shards synchronize with the classic
conservative (null-message/barrier) discipline:

* Cross-shard interaction happens **only** through timestamped events
  routed by :meth:`ShardedSimulator.after_for_site` /
  :meth:`~ShardedSimulator.at_site` — in this codebase that means
  through ``Network``/``Outbox`` deliveries, whose delay is bounded
  below by the link's ``delay_lower_bound``.
* That bound is the **lookahead** ``L``: while the global clock stands
  at ``H``, no shard can be sent anything that executes before
  ``H + L``, so every shard may safely execute all its events in the
  window ``[H, H + L]`` without hearing from the others.
* Execution therefore proceeds in *barrier rounds*: each round, every
  shard runs its local queue up to the window horizon; at the barrier
  the cross-shard mailboxes are drained into the destination queues
  (every mailed event's timestamp lands at or beyond the next window)
  and the global clock advances. An idle shard simply has nothing due
  in the window — the barrier itself plays the role of null messages,
  and rounds fast-forward over globally idle gaps.

Determinism contract (tested in ``tests/test_sim_shard.py``):

* Within a shard, events execute in exact ``(time, priority, seq)``
  order — the same total order the single-queue kernel guarantees.
* Mailboxes are drained at each barrier in canonical (source shard,
  send order) order, so destination-side sequence numbers never depend
  on which worker ran which shard first.
* The trace fingerprint is computed **per shard** and combined in
  shard-id order, so it is bit-identical for any worker count: the
  ``workers`` parameter only permutes the order shards execute within
  a round, which per-shard traces cannot observe.

Global actions (partitions, heals, topology-wide probes) do not belong
to any one shard: :meth:`ShardedSimulator.at_global` runs them at a
barrier, after every shard has reached their timestamp and before any
shard passes it — a consistent cut. For real OS-level parallelism over
shard groups see :mod:`repro.sim.parallel`, which runs whole shards in
worker processes and exchanges only picklable mail at the barriers.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable, Mapping

from repro.obs.bus import TraceBus
from repro.obs.events import KernelStep
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import LookaheadError, SimulationError, Simulator
from repro.sim.random import RandomStreams

#: Tolerance for float horizon comparisons: a delivery landing exactly
#: on the next window edge is legal (no shard has run past it), so the
#: lookahead guard must only reject genuinely short delays.
_EPS = 1e-9


class ShardPlan:
    """Site-to-shard assignment plus the lookahead bound.

    *lookahead* must lower-bound the virtual-time delay of every
    cross-shard interaction — for DvP systems, the minimum link
    ``delay_lower_bound`` over links that cross shard boundaries.
    """

    def __init__(self, site_shard: Mapping[str, int],
                 lookahead: float) -> None:
        if lookahead <= 0:
            raise ValueError("lookahead must be positive: zero-delay "
                             "cross-shard events cannot be synchronized "
                             "conservatively")
        if not site_shard:
            raise ValueError("at least one site required")
        shards = sorted(set(site_shard.values()))
        if shards != list(range(len(shards))):
            raise ValueError(f"shard ids must be dense 0..N-1, got {shards}")
        self.site_shard = dict(site_shard)
        self.lookahead = float(lookahead)
        self.shards = len(shards)

    @classmethod
    def round_robin(cls, sites: Iterable[str], shards: int,
                    lookahead: float) -> "ShardPlan":
        """Deal *sites* across *shards* in listed order."""
        sites = list(sites)
        if shards < 1:
            raise ValueError("need at least one shard")
        shards = min(shards, len(sites))
        return cls({site: index % shards
                    for index, site in enumerate(sites)}, lookahead)

    def shard_of(self, site: str) -> int:
        try:
            return self.site_shard[site]
        except KeyError:
            raise KeyError(f"site {site!r} not in shard plan") from None

    def add_site(self, site: str) -> int:
        """Assign a late-joining site to a shard (elastic topology).

        Joins continue the round-robin deal, so the assignment depends
        only on the join order — never on which worker lane asked. The
        shard set itself is fixed at construction; a join only extends
        the site → shard mapping.
        """
        if site in self.site_shard:
            raise ValueError(f"site {site!r} already in shard plan")
        shard = len(self.site_shard) % self.shards
        self.site_shard[site] = shard
        return shard


class _Shard:
    """One shard's private kernel state."""

    __slots__ = ("id", "queue", "now", "steps", "event_end", "trace",
                 "trace_hash", "outbox", "rng")

    def __init__(self, shard_id: int, master_rng: RandomStreams,
                 queue_factory: Callable[[], Any]) -> None:
        self.id = shard_id
        self.queue = queue_factory()
        #: Per-shard stream family, sub-seeded from the master so the
        #: parallel executor can reconstruct exactly the same streams
        #: inside a worker process (fork name = "shard:<id>").
        self.rng = master_rng.fork(f"shard:{shard_id}")
        self.now = 0.0
        self.steps = 0
        self.event_end: list[Callable[[], Any]] = []
        self.trace: list[tuple[float, str]] | None = None
        self.trace_hash: Any = None
        #: Cross-shard sends made while this shard executes, in send
        #: order: (dst_shard, time, priority, action, label). Drained
        #: at the barrier in shard-id order, so the destination's seq
        #: assignment is independent of the worker schedule.
        self.outbox: list[tuple[int, float, int, Callable[[], Any], str]] = []


class ShardedSimulator(Simulator):
    """Drop-in :class:`Simulator` that executes as N lookahead shards.

    Preserves the public kernel API — ``at``/``after``/``run``/
    ``run_until``/``now``/``steps``/``pending``/``rng``/``obs``/
    ``metrics``/``defer_to_event_end``/``enable_trace``/
    ``trace_fingerprint`` — so ``core``, ``net``, ``chaos`` and the
    harness run unchanged on top of it. Placement follows the routing
    hooks declared on the base kernel: while a shard executes, plain
    ``at``/``after`` stay on that shard (site timers, wipes and lock
    cascades are armed from the site's own events, so site state never
    crosses shards); site-hinted calls route to the owning shard; and
    ``at_global`` runs at a barrier.

    *workers* deterministically lanes shards onto worker slots (shard
    ``i`` → worker ``i % workers``) and executes each round in
    worker-major order. This in-process mode reproduces exactly the
    per-shard schedules a parallel executor with that worker count
    produces, which is what the determinism tests pin; OS-level
    parallelism lives in :mod:`repro.sim.parallel`.
    """

    def __init__(self, plan: ShardPlan, seed: int = 0, workers: int = 1,
                 queue_factory: Callable[[], Any] | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        factory = queue_factory or EventQueue
        self._plan = plan
        self._master_rng = RandomStreams(seed)
        self._shards = [_Shard(index, self._master_rng, factory)
                        for index in range(plan.shards)]
        self._order = self._worker_major(plan.shards, workers)
        self.workers = workers
        self._clock = 0.0      # committed global time (last barrier)
        self._horizon = 0.0    # current window's end while a round runs
        self._active: _Shard | None = None
        self._globals = factory()   # dedicated queue for at_global events
        self._global_hash: Any = None
        self.rounds = 0
        # Shared plumbing, mirroring Simulator.__init__.
        self.obs = TraceBus()
        self.metrics = MetricsRegistry()
        self._trace: list[tuple[float, str]] | None = None
        self._trace_limit: int | None = None

    @staticmethod
    def _worker_major(shards: int, workers: int) -> list[int]:
        """Execution order for one round: worker 0's lane, then 1's, …"""
        lanes: list[list[int]] = [[] for _ in range(min(workers, shards))]
        for shard in range(shards):
            lanes[shard % len(lanes)].append(shard)
        return [shard for lane in lanes for shard in lane]

    # -- clock + counters --------------------------------------------------

    @property
    def now(self) -> float:
        """The executing shard's clock, or the committed barrier time."""
        active = self._active
        return active.now if active is not None else self._clock

    @property
    def rng(self) -> RandomStreams:
        """The executing shard's stream family, or the master family.

        Streams fetched during shard execution (link fate draws, site
        policy draws) come sub-seeded per shard; streams fetched at
        setup time come from the master and are shared. Either way a
        stream stays deterministic as long as its *name* is scoped to
        one site or link — which every stream in this codebase is —
        because then only one shard ever draws from it.
        """
        active = self._active
        return active.rng if active is not None else self._master_rng

    @property
    def steps(self) -> int:
        return sum(shard.steps for shard in self._shards)

    @property
    def pending(self) -> int:
        return (sum(len(shard.queue) for shard in self._shards)
                + sum(len(shard.outbox) for shard in self._shards)
                + len(self._globals))

    @property
    def shards(self) -> int:
        return self._plan.shards

    @property
    def lookahead(self) -> float:
        return self._plan.lookahead

    def shard_of(self, site: str) -> int:
        return self._plan.shard_of(site)

    def adopt_site(self, site: str) -> int:
        """Admit a late-joining site: extend the plan's site → shard
        mapping (round-robin continuation). The shard objects are fixed
        at construction, so no queue or trace stream is created — the
        joiner shares an existing shard's clock and fingerprint lane,
        keeping worker-count invariance intact."""
        return self._plan.add_site(site)

    def shard_clock(self, shard: int) -> float:
        return self._shards[shard].now

    # -- scheduling --------------------------------------------------------

    def _home(self) -> _Shard:
        """The shard an un-hinted schedule call lands on."""
        active = self._active
        return active if active is not None else self._shards[0]

    def at(self, time: float, action: Callable[[], Any], priority: int = 0,
           label: str = "") -> Event:
        shard = self._home()
        if time < shard.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={shard.now}")
        return shard.queue.push(time, action, priority, label)

    def after(self, delay: float, action: Callable[[], Any],
              priority: int = 0, label: str = "") -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        shard = self._home()
        return shard.queue.push(shard.now + delay, action, priority, label)

    def at_site(self, site: str, time: float, action: Callable[[], Any],
                priority: int = 0, label: str = "") -> Event | None:
        """Schedule on the shard owning *site*.

        Cross-shard calls return None: the event materializes on the
        destination shard at the barrier, so there is no handle to
        cancel — and by the lookahead argument the sender cannot
        observe anything about it before it runs anyway.
        """
        target = self._shards[self._plan.shard_of(site)]
        active = self._active
        if active is None:
            # Setup/barrier context: every queue is quiescent, push
            # directly (deterministic — no shard is running).
            if time < target.now:
                raise SimulationError(
                    f"cannot schedule at {time} before shard "
                    f"{target.id} now={target.now}")
            return target.queue.push(time, action, priority, label)
        if target is active:
            return self.at(time, action, priority, label)
        if time + _EPS < self._horizon:
            raise LookaheadError(
                f"cross-shard event for site {site!r} at t={time} lands "
                f"inside the current window (horizon {self._horizon}); "
                f"lookahead={self._plan.lookahead} does not cover it")
        active.outbox.append((target.id, time, priority, action, label))
        return None

    def after_for_site(self, site: str, delay: float,
                       action: Callable[[], Any], priority: int = 0,
                       label: str = "") -> Event | None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at_site(site, self.now + delay, action, priority, label)

    def at_global(self, time: float, action: Callable[[], Any],
                  priority: int = 0, label: str = "") -> Event:
        """Schedule *action* at a barrier at *time*.

        The action runs after every shard has executed all events with
        timestamp <= *time* and before any shard executes one beyond it
        — a consistent global cut. From inside a shard event it may
        only target times at or beyond the current window's horizon;
        the cut for earlier times has already been crossed.
        """
        if self._active is not None and time + _EPS < self._horizon:
            raise LookaheadError(
                f"global event at t={time} scheduled from inside the "
                f"window ending at {self._horizon}: other shards may "
                f"already have run past it")
        if time < self._clock:
            raise SimulationError(
                f"cannot schedule global event at {time} before "
                f"barrier time {self._clock}")
        return self._globals.push(time, action, priority, label)

    def call_in_site(self, site: str, action: Callable[[], Any]) -> Any:
        """Run *action* with *site*'s shard as scheduling context.

        Outside any event this establishes the context (setup code
        arming site-owned timers); inside an event on the owning shard
        it is a no-op wrapper (so façade methods like ``crash`` can use
        it unconditionally). Calling it from a *different* shard's
        event is a placement bug and raises.
        """
        target = self._shards[self._plan.shard_of(site)]
        active = self._active
        if active is target:
            return action()
        if active is not None:
            raise SimulationError(
                f"call_in_site({site!r}) from an event on shard "
                f"{active.id}, but the site lives on shard {target.id}; "
                "cross-shard effects must travel as timestamped events "
                "(at_site/after_for_site)")
        self._active = target
        try:
            return action()
        finally:
            self._active = None

    # -- defer-to-event-end ------------------------------------------------

    def defer_to_event_end(self, action: Callable[[], Any]) -> bool:
        active = self._active
        if active is None:
            return False
        active.event_end.append(action)
        return True

    # -- tracing -----------------------------------------------------------

    def enable_trace(self, limit: int | None = None) -> None:
        self._trace = []
        self._trace_limit = limit
        for shard in self._shards:
            shard.trace = []
            shard.trace_hash = hashlib.sha256()
        self._global_hash = hashlib.sha256()

    @property
    def trace(self) -> list[tuple[float, str]]:
        """Executed (time, label) pairs, concatenated in shard order.

        Shards interleave in wall time, so unlike the single-queue
        kernel this list is not globally time-sorted; within one shard
        it is. The fingerprint, not this list, is the replay contract.
        """
        if self._trace is None:
            raise SimulationError("tracing is not enabled")
        merged: list[tuple[float, str]] = []
        for shard in self._shards:
            merged.extend(shard.trace or [])
        if self._trace_limit is not None:
            merged = merged[:self._trace_limit]
        return merged

    def trace_fingerprint(self) -> str:
        """Per-shard SHA-256 digests combined in canonical shard order.

        Identical for every ``workers`` value by construction: each
        shard's stream hashes only its own events, and the combination
        order is the shard id, not the execution order.
        """
        if self._global_hash is None:
            raise SimulationError("tracing is not enabled")
        combined = hashlib.sha256()
        for shard in self._shards:
            combined.update(f"shard:{shard.id}:".encode())
            combined.update(shard.trace_hash.hexdigest().encode())
            combined.update(b"\n")
        combined.update(b"global:")
        combined.update(self._global_hash.hexdigest().encode())
        return combined.hexdigest()

    def _record_shard(self, shard: _Shard, time: float, label: str) -> None:
        if self._trace_limit is None or \
                len(shard.trace) < self._trace_limit:
            shard.trace.append((time, label))
        shard.trace_hash.update(f"{time!r}\x1f{label}\x1e".encode())

    # -- execution ---------------------------------------------------------

    def _next_timestamp(self) -> float | None:
        """Earliest pending timestamp anywhere (queues, mail, globals)."""
        times = [t for t in (shard.queue.peek_time()
                             for shard in self._shards) if t is not None]
        for shard in self._shards:
            times.extend(entry[1] for entry in shard.outbox)
        global_next = self._globals.peek_time()
        if global_next is not None:
            times.append(global_next)
        return min(times) if times else None

    def _run_shard_until(self, shard: _Shard, horizon: float,
                         max_steps: int | None = None) -> int:
        """Mirror of Simulator.run_until for one shard; returns steps."""
        queue = shard.queue
        traced = shard.trace_hash is not None
        obs = self.obs
        event_end = shard.event_end
        executed = 0
        self._active = shard
        try:
            while max_steps is None or executed < max_steps:
                event = queue.pop_if_due(horizon)
                if event is None:
                    break
                shard.now = event.time
                shard.steps += 1
                executed += 1
                if traced:
                    self._record_shard(shard, event.time, event.label)
                if obs.kernel_steps:
                    obs.emit(KernelStep(t=event.time, label=event.label))
                event.action()
                if event_end:
                    index = 0
                    while index < len(event_end):
                        event_end[index]()
                        index += 1
                    event_end.clear()
        finally:
            self._active = None
            event_end.clear()
        shard.now = max(shard.now, horizon)
        return executed

    def _deliver_mail(self) -> None:
        """Barrier: drain outboxes in shard-id order (canonical)."""
        for shard in self._shards:
            if not shard.outbox:
                continue
            for dst, time, priority, action, label in shard.outbox:
                self._shards[dst].queue.push(time, action, priority, label)
            shard.outbox.clear()

    def _run_globals_due(self, time: float) -> None:
        """Execute due global events at the barrier (all shards at cut)."""
        queue = self._globals
        while True:
            event = queue.pop_if_due(time)
            if event is None:
                return
            self._clock = max(self._clock, event.time)
            if self._global_hash is not None:
                self._global_hash.update(
                    f"{event.time!r}\x1f{event.label}\x1e".encode())
            if self.obs.kernel_steps:
                self.obs.emit(KernelStep(t=event.time, label=event.label))
            event.action()

    def _run_round(self, horizon: float) -> None:
        self._horizon = horizon
        self.rounds += 1
        shards = self._shards
        for index in self._order:
            self._run_shard_until(shards[index], horizon)
        self._deliver_mail()
        self._clock = horizon
        self._run_globals_due(horizon)
        # Global events may themselves send cross-site messages (a
        # migration ship, a probe-triggered retransmit). Those sends
        # land at or beyond the committed clock, which no shard has run
        # past, so they can be delivered immediately — leaving them in
        # the outbox would let the next round's window advance over
        # their timestamps before the following barrier drained them.
        self._deliver_mail()

    def _next_horizon(self, next_time: float) -> float:
        """One lookahead window past the idle gap, clipped at a cut."""
        horizon = max(self._clock, next_time) + self._plan.lookahead
        global_next = self._globals.peek_time()
        if global_next is not None:
            # A barrier event clips the window: every shard stops
            # exactly at the cut, the action runs, and the next round
            # resumes from it.
            horizon = min(horizon, global_next)
        return horizon

    def run_until(self, time: float) -> None:
        """Run all events with timestamp <= *time* in barrier rounds."""
        while True:
            next_time = self._next_timestamp()
            if next_time is None or next_time > time:
                break
            self._run_round(min(self._next_horizon(next_time), time))
        self._clock = max(self._clock, time)
        self._horizon = self._clock
        for shard in self._shards:
            shard.now = max(shard.now, time)

    def run(self, max_steps: int | None = None) -> None:
        """Run in barrier rounds until every queue drains.

        *max_steps* is a runaway guard checked between rounds (a round
        in progress completes), so totals can overshoot by up to one
        window's events; keeping the check at round granularity keeps
        execution schedule-independent.
        """
        start_steps = self.steps
        while True:
            if max_steps is not None and \
                    self.steps - start_steps >= max_steps:
                return
            next_time = self._next_timestamp()
            if next_time is None:
                return
            self._run_round(self._next_horizon(next_time))

    def step(self) -> bool:
        """Execute the earliest single event (a degenerate round).

        Provided for API completeness (debuggers, fine-grained tests);
        real runs use the round loops, which this interoperates with.
        """
        next_time = self._next_timestamp()
        if next_time is None:
            return False
        self._horizon = next_time
        for shard in self._shards:
            peek = shard.queue.peek_time()
            if peek is not None and peek <= next_time:
                if self._run_shard_until(shard, next_time, max_steps=1):
                    self._deliver_mail()
                    self._clock = max(self._clock, next_time)
                    return True
        # Only mail or global events remain at next_time: commit a
        # zero-width round to surface them, then retry.
        self._deliver_mail()
        self._run_globals_due(next_time)
        self._clock = max(self._clock, next_time)
        return self.step() if self._next_timestamp() is not None else True
