"""OS-level parallel execution of shard groups in worker processes.

:class:`~repro.sim.shard.ShardedSimulator` runs every shard in one
process — deterministic, API-compatible, but bounded by one core. This
module runs the same barrier-round protocol with the shards split
across ``multiprocessing`` workers, for workloads that are *shard
programs*: self-contained per-shard worlds that interact only through
timestamped, **picklable** payloads.

A shard program is any object with::

    build(sim, shard_id, sites, send) -> deliver
        Construct the shard's world against its private ``Simulator``.
        *send(dst_site, delay, payload, priority=0, label="")* mails a
        payload to another site; *deliver(payload)* is called on this
        shard for each payload mailed to one of its sites. Delays below
        the plan's lookahead raise :class:`LookaheadError`.
    collect(sim, shard_id) -> picklable        (optional)
        Summarize the shard's final state; gathered into
        :attr:`ParallelResult.collected` in shard order.

The full DvP system is *not* a shard program — its auditor and metrics
close over shared objects — which is exactly why the system runs on the
in-process ``ShardedSimulator``. The parallel runner exists for the
scaling benchmarks (``benchmarks/bench_kernel_scale.py``) and any
future serving front-end whose shards are genuinely share-nothing.

Determinism matches the in-process contract: per-shard event streams
are independent of the worker assignment (each shard runs the same
rounds against the same mail, delivered in canonical source-shard
order), so per-shard fingerprints — combined in shard-id order — are
bit-identical for every worker count, including ``workers=0`` (run
everything serially in the calling process, no subprocesses).
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.events import EventQueue
from repro.sim.kernel import LookaheadError, Simulator
from repro.sim.random import RandomStreams
from repro.sim.shard import ShardPlan, _EPS

#: Mail entry: (src_shard, dst_shard, time, priority, payload, label).
_Mail = tuple[int, int, float, int, Any, str]


@dataclass
class ParallelResult:
    """Outcome of a parallel (or serial-fallback) shard run."""

    steps: int
    rounds: int
    fingerprint: str
    shard_steps: list[int]
    collected: list[Any]
    workers: int            # worker processes actually used (0 = serial)


class _ShardHost:
    """Owns a group of shards inside one process (or the serial run).

    Every shard gets its own :class:`Simulator` whose stream family is
    sub-seeded exactly like the in-process kernel's
    (``RandomStreams(seed).fork("shard:<id>")``), so a program observes
    the same draws no matter which executor runs it.
    """

    def __init__(self, plan: ShardPlan, program: Any, seed: int,
                 shard_ids: list[int],
                 queue_factory: Callable[[], Any] | None) -> None:
        self._plan = plan
        self._horizon = 0.0
        master = RandomStreams(seed)
        self._sims: dict[int, Simulator] = {}
        self._deliver: dict[int, Callable[[Any], Any]] = {}
        self._outbox: list[_Mail] = []
        for shard_id in shard_ids:
            sim = Simulator(seed, queue_factory=queue_factory)
            sim.rng = master.fork(f"shard:{shard_id}")
            sim.enable_trace(limit=0)   # fingerprint only, keep no list
            sites = [site for site, shard in plan.site_shard.items()
                     if shard == shard_id]
            self._sims[shard_id] = sim
            self._deliver[shard_id] = program.build(
                sim, shard_id, sites, self._make_send(shard_id, sim))
        self._program = program

    def _make_send(self, src_shard: int, sim: Simulator):
        plan = self._plan

        def send(dst_site: str, delay: float, payload: Any,
                 priority: int = 0, label: str = "") -> None:
            time = sim.now + delay
            dst_shard = plan.shard_of(dst_site)
            if dst_shard == src_shard:
                deliver = self._deliver[src_shard]
                sim.at(time, lambda: deliver(payload), priority, label)
                return
            if time + _EPS < self._horizon:
                raise LookaheadError(
                    f"cross-shard payload for {dst_site!r} at t={time} "
                    f"lands inside the current window "
                    f"(horizon {self._horizon}); lookahead="
                    f"{plan.lookahead} does not cover it")
            self._outbox.append(
                (src_shard, dst_shard, time, priority, payload, label))

        return send

    # -- the four protocol verbs ------------------------------------------

    def next_time(self) -> float | None:
        times = [t for t in (sim._queue.peek_time()
                             for sim in self._sims.values())
                 if t is not None]
        times.extend(entry[2] for entry in self._outbox)
        return min(times) if times else None

    def run_round(self, horizon: float) -> list[_Mail]:
        self._horizon = horizon
        for shard_id in sorted(self._sims):
            self._sims[shard_id].run_until(horizon)
        mail, self._outbox = self._outbox, []
        return mail

    def deliver(self, batch: list[_Mail]) -> None:
        """Push mailed payloads, in the canonical order the caller
        established (ascending source shard, send order within)."""
        for _src, dst, time, priority, payload, label in batch:
            deliver = self._deliver[dst]
            self._sims[dst].at(
                time,
                lambda payload=payload, deliver=deliver: deliver(payload),
                priority, label)

    def finish(self) -> list[tuple[int, int, str, Any]]:
        results = []
        collect = getattr(self._program, "collect", None)
        for shard_id in sorted(self._sims):
            sim = self._sims[shard_id]
            summary = collect(sim, shard_id) if collect else None
            results.append((shard_id, sim.steps,
                            sim.trace_fingerprint(), summary))
        return results


def _worker_main(conn, plan, program, seed, shard_ids,
                 queue_factory) -> None:
    host = _ShardHost(plan, program, seed, shard_ids, queue_factory)
    while True:
        message = conn.recv()
        verb = message[0]
        if verb == "next":
            conn.send(host.next_time())
        elif verb == "round":
            conn.send(host.run_round(message[1]))
        elif verb == "mail":
            host.deliver(message[1])
            conn.send(None)
        elif verb == "finish":
            conn.send(host.finish())
            conn.close()
            return


def _canonical_mail(per_host_mail: list[list[_Mail]]) -> list[_Mail]:
    """Merge hosts' outgoing mail into the canonical barrier order:
    ascending source shard, original send order within a shard."""
    by_source: dict[int, list[_Mail]] = {}
    for mail in per_host_mail:
        for entry in mail:
            by_source.setdefault(entry[0], []).append(entry)
    merged: list[_Mail] = []
    for source in sorted(by_source):
        merged.extend(by_source[source])
    return merged


def _combine(finished: list[tuple[int, int, str, Any]], rounds: int,
             workers: int) -> ParallelResult:
    finished = sorted(finished)
    combined = hashlib.sha256()
    for shard_id, _steps, digest, _summary in finished:
        combined.update(f"shard:{shard_id}:".encode())
        combined.update(digest.encode())
        combined.update(b"\n")
    combined.update(b"global:")
    combined.update(hashlib.sha256().hexdigest().encode())
    return ParallelResult(
        steps=sum(entry[1] for entry in finished),
        rounds=rounds,
        fingerprint=combined.hexdigest(),
        shard_steps=[entry[1] for entry in finished],
        collected=[entry[3] for entry in finished],
        workers=workers)


def _lanes(shards: int, workers: int) -> list[list[int]]:
    lanes: list[list[int]] = [[] for _ in range(min(workers, shards))]
    for shard in range(shards):
        lanes[shard % len(lanes)].append(shard)
    return lanes


def run_parallel(plan: ShardPlan, program: Any, *, seed: int = 0,
                 workers: int = 2, until: float | None = None,
                 queue_factory: Callable[[], Any] | None = None,
                 ) -> ParallelResult:
    """Run *program* over *plan*'s shards; see the module docstring.

    ``workers=0`` (or an environment without ``fork``) runs the same
    barrier protocol serially in this process — same fingerprint, no
    subprocesses. Worker processes are forked, so the program object
    itself need not be picklable; only mailed payloads and ``collect``
    summaries cross process boundaries.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    serial = workers == 0 or plan.shards == 1
    if not serial and "fork" not in multiprocessing.get_all_start_methods():
        serial = True
    if serial:
        host = _ShardHost(plan, program, seed,
                          list(range(plan.shards)), queue_factory)
        rounds = 0
        while True:
            next_time = host.next_time()
            if next_time is None or (until is not None
                                     and next_time > until):
                break
            horizon = next_time + plan.lookahead
            if until is not None:
                horizon = min(horizon, until)
            rounds += 1
            mail = host.run_round(horizon)
            host.deliver(_canonical_mail([mail]))
        return _combine(host.finish(), rounds, workers=0)

    context = multiprocessing.get_context("fork")
    lanes = _lanes(plan.shards, workers)
    pipes, processes = [], []
    try:
        for lane in lanes:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, plan, program, seed, lane,
                      queue_factory),
                daemon=True)
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            processes.append(process)

        def broadcast(message) -> list[Any]:
            for conn in pipes:
                conn.send(message)
            return [conn.recv() for conn in pipes]

        rounds = 0
        while True:
            next_times = [t for t in broadcast(("next",)) if t is not None]
            if not next_times:
                break
            next_time = min(next_times)
            if until is not None and next_time > until:
                break
            horizon = next_time + plan.lookahead
            if until is not None:
                horizon = min(horizon, until)
            rounds += 1
            per_host = broadcast(("round", horizon))
            mail = _canonical_mail(per_host)
            if mail:
                owner = {shard: index for index, lane in enumerate(lanes)
                         for shard in lane}
                batches: list[list[_Mail]] = [[] for _ in lanes]
                for entry in mail:
                    batches[owner[entry[1]]].append(entry)
                for conn, batch in zip(pipes, batches):
                    conn.send(("mail", batch))
                for conn in pipes:
                    conn.recv()
        finished: list[tuple[int, int, str, Any]] = []
        for result in broadcast(("finish",)):
            finished.extend(result)
        return _combine(finished, rounds, workers=len(lanes))
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
        for conn in pipes:
            conn.close()


__all__ = ["ParallelResult", "run_parallel"]
