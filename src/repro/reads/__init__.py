"""Bounded-staleness Π(b) read views and the cache hierarchy.

See docs/READS.md. Public surface:

* :class:`ViewConfig` — knobs, passed as ``SystemConfig.views``;
* :class:`ViewService` / :class:`ViewStore` / :class:`SiteViewCache` —
  the authority, refresh, and per-site cache tiers;
* :class:`ViewEntry` / :class:`ViewRefresh` /
  :class:`ViewCertificate` — the wire/value types;
* ``set_view_leak`` — the chaos engine's planted certificate bug.
"""

from repro.reads.messages import ViewCertificate, ViewEntry, ViewRefresh
from repro.reads.views import (
    VIEW_LEAK_MODES,
    ObserverFanout,
    SiteViewCache,
    ViewConfig,
    ViewService,
    ViewStore,
    set_view_leak,
    view_leak,
)

__all__ = [
    "ViewCertificate", "ViewEntry", "ViewRefresh",
    "ViewConfig", "ViewService", "ViewStore", "SiteViewCache",
    "ObserverFanout", "VIEW_LEAK_MODES", "set_view_leak", "view_leak",
]
