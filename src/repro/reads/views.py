"""Materialized Π(b) views with bounded staleness (docs/READS.md).

The paper concedes that reading an item's full value N is expensive:
the exact protocol drains every remote fragment and every in-flight Vm
to the reader (O(n) messages, plus read-freeze collateral aborts —
e07). This module adds the read-scaling tier:

* :class:`ViewStore` — the authority tier. It consumes the exact same
  incremental observer feed the PR 1 conservation auditor consumes
  (fragment register/write, Vm create/accept) and maintains one running
  total per item. By the conservation equation N = Σ fragments +
  Σ live Vm, that total IS the item's logical value — the view is
  maintained *for free* off hooks that already exist and that
  ``ConservationAuditor.verify_full`` cross-checks against brute-force
  scans.
* :class:`ViewService` — the write-behind refresh loop. At global
  barriers (a consistent cut, so the totals are worker-invariant) it
  snapshots the store into :class:`~repro.reads.messages.ViewEntry`
  values and pushes one batched
  :class:`~repro.reads.messages.ViewRefresh` per (publisher,
  destination) pair over the ordinary network — riding the PR 5 outbox
  bundling, suffering real loss/partition/crash. Each item is
  published by its directory primary owner, so a dead or partitioned
  owner degrades its items' views realistically (caches go stale,
  readers fall back).
* :class:`SiteViewCache` — the per-site read-through tier. Serves a
  :class:`~repro.reads.messages.ViewCertificate` when it holds an
  entry that is fresh enough (staleness <= the reader's bound, and
  <= the TTL) and minted under the current directory epoch (PR 7
  fencing: reshard/migration can never serve values from a dead
  topology). Anything else is a miss and the reader escalates to the
  classic fan-out; the miss is then repaired read-through from the
  authority tier.

Safety note (why a lost refresh can never lie): refreshes only move
*older* snapshots around. Admission re-checks staleness against the
reader's bound at serve time, so the failure mode of every fault is
"staler than hoped → fall back to fan-out", never "wrong value". The
chaos ViewOracle (repro.chaos.oracles) proves exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.domain import Domain
from repro.obs.events import ReadViewMiss, ReadViewRefresh, ReadViewServe
from repro.reads.messages import ViewCertificate, ViewEntry, ViewRefresh

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.site import DvPSite
    from repro.core.system import DvPSystem
    from repro.sim.kernel import Simulator

#: Test-only fault injection mirroring ``fragments._TEST_LEAK`` (see
#: docs/CHAOS.md): a deliberately planted certificate bug the chaos
#: explorer's ViewOracle must catch and the shrinker must minimize.
#:
#: ``"view-staleness"`` — the publisher stamps each refresh with a
#: fresh ``as_of`` but keeps re-publishing the *first* snapshot's
#: values: the certificate claims "this was N at time t" when it was
#: not. Any write landing between refreshes followed by a view-served
#: read violates the certificate. Never set in production code paths.
_VIEW_LEAK: str | None = None

VIEW_LEAK_MODES = (None, "view-staleness")


def set_view_leak(mode: str | None) -> None:
    """Arm/disarm the planted certificate bug (test harnesses only)."""
    global _VIEW_LEAK
    if mode not in VIEW_LEAK_MODES:
        raise ValueError(
            f"unknown view leak mode {mode!r}; try {VIEW_LEAK_MODES}")
    _VIEW_LEAK = mode


def view_leak() -> str | None:
    return _VIEW_LEAK


@dataclass
class ViewConfig:
    """Knobs for the view maintenance and cache tiers."""

    #: Global-barrier period between write-behind refresh rounds.
    refresh_period: float = 5.0
    #: Cache entries older than this are misses regardless of the
    #: reader's bound; None = 2 × refresh_period (one missed round of
    #: grace before the cache declares itself cold).
    ttl: float | None = None
    #: Push refreshes to every site (the write-behind tier). False
    #: keeps only the authority tier + read-through fills — caches warm
    #: lazily from fallback reads instead of proactively.
    push: bool = True

    def __post_init__(self) -> None:
        if self.refresh_period <= 0:
            raise ValueError("refresh_period must be positive")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("ttl must be positive (or None)")

    @property
    def resolved_ttl(self) -> float:
        return (self.ttl if self.ttl is not None
                else 2.0 * self.refresh_period)


class ObserverFanout:
    """Tee the site/fragment observer feed to several consumers.

    Sites carry a single ``observer`` slot (historically the
    conservation auditor). With views enabled the slot holds one of
    these, delegating every notification in order — the auditor stays
    first so its books are settled before the view store's.
    """

    def __init__(self, targets: Iterable[Any]) -> None:
        self.targets = list(targets)

    def on_fragment_register(self, site: str, item: str, domain: Domain,
                             value: Any) -> None:
        for target in self.targets:
            target.on_fragment_register(site, item, domain, value)

    def on_fragment_write(self, site: str, item: str, old: Any,
                          new: Any) -> None:
        for target in self.targets:
            target.on_fragment_write(site, item, old, new)

    def on_vm_created(self, sender: str, entry) -> None:
        for target in self.targets:
            target.on_vm_created(sender, entry)

    def on_vm_accepted(self, receiver: str, src: str, entry) -> None:
        for target in self.targets:
            target.on_vm_accepted(receiver, src, entry)


class ViewStore:
    """Authority tier: one exact running total per item.

    Same books as the auditor's, folded into a single N per item:
    registration adds the initial quota, a fragment write adds
    (new − old), a Vm creation adds the in-flight amount, and an
    acceptance retires it (keyed by (sender, receiver, seq) so a
    retransmitted Vm retires exactly once). Redistribution is therefore
    net-neutral and the total moves only when committed transactions
    change value — N(t) at every instant.
    """

    def __init__(self) -> None:
        self._domains: dict[str, Domain] = {}
        self._totals: dict[str, Any] = {}
        self._live_entries: dict[tuple[str, str, int], tuple[str, Any]] = {}

    def items(self) -> list[str]:
        return sorted(self._totals)

    def total(self, item: str) -> Any:
        return self._totals[item]

    # -- the observer feed --------------------------------------------------

    def on_fragment_register(self, site: str, item: str, domain: Domain,
                             value: Any) -> None:
        self._domains.setdefault(item, domain)
        self._totals[item] = domain.combine(
            self._totals.get(item, domain.zero()), value)

    def on_fragment_write(self, site: str, item: str, old: Any,
                          new: Any) -> None:
        domain = self._domains.get(item)
        if domain is None:  # pragma: no cover - item never registered
            return
        self._totals[item] = domain.subtract(
            domain.combine(self._totals[item], new), old)

    def on_vm_created(self, sender: str, entry) -> None:
        domain = self._domains.get(entry.item)
        if domain is None:  # pragma: no cover - item never registered
            return
        key = (sender, entry.dst, entry.channel_seq)
        if key in self._live_entries:  # pragma: no cover - defensive
            return
        self._live_entries[key] = (entry.item, entry.amount)
        self._totals[entry.item] = domain.combine(self._totals[entry.item],
                                                  entry.amount)

    def on_vm_accepted(self, receiver: str, src: str, entry) -> None:
        info = self._live_entries.pop((src, receiver, entry.channel_seq),
                                      None)
        if info is None:  # pragma: no cover - unobserved creation
            return
        item, amount = info
        self._totals[item] = self._domains[item].subtract(
            self._totals[item], amount)


class SiteViewCache:
    """Read-through per-site cache of view entries.

    Volatile like the lock table: a crash wipes it (the site recovers
    cold and warms from the next refresh or its own fallback reads).
    Serving re-validates staleness, TTL, and the directory epoch at
    admission time — an entry is *never* trusted just because it is
    present.
    """

    def __init__(self, site: str, sim: "Simulator", ttl: float,
                 epoch_of: Callable[[], int]) -> None:
        self.site = site
        self.sim = sim
        self.ttl = ttl
        self.epoch_of = epoch_of
        self.entries: dict[str, ViewEntry] = {}
        self._obs = sim.obs
        self.c_hits = sim.metrics.counter("view.hits", site=site)
        self.c_misses = sim.metrics.counter("view.misses", site=site)
        self.h_staleness = sim.metrics.histogram("view.staleness", site=site)

    # -- population ---------------------------------------------------------

    def absorb(self, refresh: ViewRefresh) -> None:
        for entry in refresh.entries:
            self.store(entry)

    def store(self, entry: ViewEntry) -> None:
        """Keep the freshest entry per item (refreshes can reorder)."""
        current = self.entries.get(entry.item)
        if current is None or entry.as_of >= current.as_of:
            self.entries[entry.item] = entry

    def clear(self) -> None:
        self.entries.clear()

    # -- admission ----------------------------------------------------------

    def serve(self, item: str, bound: float | None,
              txn: str = "") -> ViewCertificate | None:
        """Certificate for *item* iff the cached entry satisfies
        *bound*, the TTL, and the current epoch; None = miss."""
        now = self.sim.now
        entry = self.entries.get(item)
        reason = ""
        if entry is None:
            reason = "cold"
        elif entry.epoch != self.epoch_of():
            # PR 7 fencing: the topology changed since this entry was
            # minted; evict so the next refresh re-populates it.
            del self.entries[item]
            reason = "epoch"
        elif now - entry.as_of > self.ttl:
            del self.entries[item]
            reason = "ttl"
        elif bound is not None and now - entry.as_of > bound:
            reason = "bound"
        if reason:
            self.c_misses.inc()
            if self._obs.enabled:
                self._obs.emit(ReadViewMiss(t=now, site=self.site, txn=txn,
                                            item=item, reason=reason))
            return None
        staleness = now - entry.as_of
        self.c_hits.inc()
        self.h_staleness.observe(staleness)
        if self._obs.enabled:
            self._obs.emit(ReadViewServe(t=now, site=self.site, txn=txn,
                                         item=item, staleness=staleness,
                                         bound=bound))
        return ViewCertificate(item=item, value=entry.value,
                               as_of=entry.as_of, checked_at=now,
                               bound=bound, epoch=entry.epoch)


class ViewService:
    """Owns the authority tier and drives the write-behind refreshes."""

    def __init__(self, system: "DvPSystem", config: ViewConfig) -> None:
        self.system = system
        self.config = config
        self.sim = system.sim
        self.store = ViewStore()
        #: God's-eye freshest entry per item (the authority tier's own
        #: snapshot), used for read-through fills after fallback reads.
        #: Mutated only at global barriers, so shard events may read it
        #: between rounds without order dependence.
        self.latest: dict[str, ViewEntry] = {}
        self.refreshes = 0
        self.refresh_sends = 0
        self._running = True
        self._last_values: dict[str, Any] | None = None
        for site in system.sites.values():
            self.adopt_site(site)
        self.sim.at_global(self.sim.now + config.refresh_period,
                           self._tick, label="view:refresh")

    def adopt_site(self, site: "DvPSite") -> None:
        """Wire the observer fanout and a cold cache into *site*."""
        site.observer = ObserverFanout([self.system.auditor, self.store])
        site.fragments.observer = site.observer
        site.views = SiteViewCache(
            site.name, self.sim, self.config.resolved_ttl,
            lambda: self.system.directory.epoch)

    def stop(self) -> None:
        """Stop the refresh chain (the pending tick becomes a no-op)."""
        self._running = False

    # -- the refresh loop ---------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        self.publish()
        self.sim.at_global(self.sim.now + self.config.refresh_period,
                           self._tick, label="view:refresh")

    def publish(self) -> None:
        """Snapshot every item at this barrier and push the batches.

        Runs at a consistent cut: every event with timestamp <= now has
        executed on every shard, so ``store.total`` is exact and
        worker-invariant. Each item's entry is published by its
        directory primary owner; owners known to be down publish
        nothing this round (their items' caches age toward fallback).
        """
        now = self.sim.now
        epoch = self.system.directory.epoch
        items = self.store.items()
        if not items:
            return
        if view_leak() == "view-staleness" and self._last_values is not None:
            # Planted bug: fresh as_of stamps over the first snapshot's
            # values — the certificate lies as soon as value moves.
            values = self._last_values
        else:
            values = {item: self.store.total(item) for item in items}
            self._last_values = values
        by_owner: dict[str, list[ViewEntry]] = {}
        for item in items:
            entry = ViewEntry(item=item, value=values[item], as_of=now,
                              epoch=epoch)
            self.latest[item] = entry
            owners = self.system.directory.owners(item)
            if not owners:  # pragma: no cover - directory always owns
                continue
            by_owner.setdefault(owners[0], []).append(entry)
        self.refreshes += 1
        sends = 0
        network = self.system.network
        for owner in sorted(by_owner):
            if not network.is_up(owner):
                continue
            entries = tuple(by_owner[owner])
            publisher = self.system.sites.get(owner)
            if publisher is not None and publisher.views is not None:
                for entry in entries:
                    publisher.views.store(entry)
            if not self.config.push:
                continue
            for dst in sorted(self.system.sites):
                if dst == owner:
                    continue
                network.send(owner, dst, ViewRefresh(
                    origin=owner, entries=entries, published_at=now))
                sends += 1
        self.refresh_sends += sends
        if self.sim.obs.enabled:
            self.sim.obs.emit(ReadViewRefresh(
                t=now, publishers=len(by_owner),
                items=len(items), sends=sends))

    # -- read-through fills -------------------------------------------------

    def fill_through(self, site: str, items: Iterable[str]) -> None:
        """Repair a cache after a fallback read (read-through tier).

        The reader paid the fan-out; pull the authority tier's freshest
        entries for the items it read so the next bounded-staleness
        read can be served locally. Fills from ``latest`` (exact
        barrier snapshots), never from the fallback's own result — a
        full read may under-report by the in-flight Vm blind spot and
        must not be laundered into a certificate.
        """
        cache = self.system.sites[site].views
        if cache is None:  # pragma: no cover - views always wired
            return
        for item in items:
            entry = self.latest.get(item)
            if entry is not None:
                cache.store(entry)
