"""Wire/value types for the bounded-staleness read views (docs/READS.md).

Kept free of any other ``repro`` imports so the core transaction layer,
the site delivery path, and the view service can all share these
without import cycles. Everything is a small frozen dataclass carrying
deterministic, JSON-representable values only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ViewEntry:
    """One item's materialized Π(b) value at a consistent cut.

    ``as_of`` is the barrier instant the snapshot was taken at —
    value == N(as_of) exactly (the conservation books Σ fragments +
    Σ live Vm are the logical value, see docs/READS.md). ``epoch``
    fences the entry against topology changes: a cache never serves an
    entry minted under a directory epoch other than the current one.
    """

    item: str
    value: Any
    as_of: float
    epoch: int


@dataclass(frozen=True)
class ViewRefresh:
    """Write-behind refresh: a batch of view entries pushed by *origin*.

    One network payload per (publisher, destination) pair per refresh
    round — the batching tier. Rides the ordinary network (and the
    PR 5 outbox bundling when enabled), so it can be lost, delayed, or
    partitioned away; that is safe because admission is certificate
    based: a missing refresh only makes a cache staler, never wrong.
    """

    origin: str
    entries: tuple[ViewEntry, ...]
    published_at: float


@dataclass(frozen=True)
class ViewCertificate:
    """Proof-of-staleness attached to a view-served read.

    ``checked_at - as_of`` is the staleness the reader actually
    accepted; admission requires it to be <= ``bound`` (None = only the
    cache TTL bounds it). The chaos ViewOracle replays the committed
    timeline and convicts any certificate whose ``value`` was not the
    item's exact logical value at ``as_of`` — the certificate must
    never lie, no matter what crashed, partitioned, or resharded.
    """

    item: str
    value: Any
    as_of: float
    checked_at: float
    bound: float | None
    epoch: int

    @property
    def staleness(self) -> float:
        return self.checked_at - self.as_of
