"""Structured observability: typed trace events, metrics, export.

The paper's claims are claims about *instants* — when a Vm came into
existence, when it was accepted, when a transaction decided, when a
site crashed — so this package gives every
:class:`~repro.sim.kernel.Simulator` two always-present companions:

* ``sim.obs`` — a :class:`~repro.obs.bus.TraceBus` publishing the typed
  events of :mod:`repro.obs.events` (disabled by default; zero hot-path
  cost until enabled);
* ``sim.metrics`` — a :class:`~repro.obs.registry.MetricsRegistry` of
  per-site / per-channel counters and latency histograms.

:mod:`repro.obs.export` streams traces as canonical JSONL;
:mod:`repro.obs.timeline` filters and renders them for the
``repro trace`` CLI. See docs/OBSERVABILITY.md.
"""

from repro.obs.bus import DEFAULT_RING_LIMIT, TraceBus
from repro.obs.events import (
    EVENT_TYPES,
    KernelStep,
    LogForce,
    NetDeliver,
    NetDropLoss,
    NetDropPartition,
    NetSend,
    SiteCrash,
    SiteRecover,
    TraceEvent,
    TxnAbort,
    TxnCommit,
    TxnLockWait,
    TxnLocksGranted,
    TxnRedistribute,
    TxnSubmit,
    VmAccept,
    VmAckSent,
    VmCreate,
    VmDuplicateDiscard,
    VmRetransmit,
    VmTransmit,
    event_from_dict,
)
from repro.obs.export import (
    JsonlSink,
    attach_jsonl,
    dump_jsonl,
    dumps_jsonl,
    event_to_json,
    read_jsonl,
    write_jsonl,
)
from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.timeline import TraceFilter, render_timeline

__all__ = [
    "DEFAULT_RING_LIMIT", "EVENT_TYPES", "TraceBus", "TraceEvent",
    "TraceFilter", "render_timeline", "event_from_dict",
    "KernelStep", "LogForce", "NetDeliver", "NetDropLoss",
    "NetDropPartition", "NetSend", "SiteCrash", "SiteRecover",
    "TxnAbort", "TxnCommit", "TxnLockWait", "TxnLocksGranted",
    "TxnRedistribute", "TxnSubmit", "VmAccept", "VmAckSent", "VmCreate",
    "VmDuplicateDiscard", "VmRetransmit", "VmTransmit",
    "CounterMetric", "GaugeMetric", "HistogramMetric", "MetricsRegistry",
    "JsonlSink", "attach_jsonl", "dump_jsonl", "dumps_jsonl",
    "event_to_json", "read_jsonl", "write_jsonl",
]
