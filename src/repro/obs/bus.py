"""The per-:class:`~repro.sim.kernel.Simulator` trace-event bus.

Components publish :mod:`repro.obs.events` dataclasses through one
shared bus. The contract is *zero cost when disabled*: instrumentation
sites guard on the plain ``enabled`` attribute and only construct the
event object inside the guard::

    obs = self.sim.obs
    if obs.enabled:
        obs.emit(VmCreate(t=self.sim.now, ...))

so a disabled bus costs one attribute load and one branch per
instrumented point — the bound ``benchmarks/bench_micro_obs.py``
enforces on the E1 hot loop.

When enabled, the bus keeps the most recent *ring_limit* events in a
ring buffer (``events()``/``tail()``), counts everything it ever saw
(``emitted``), and fans each event out to any registered *sinks* —
streaming consumers such as the JSONL exporter in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.obs.events import TraceEvent

#: Default ring-buffer retention when :meth:`TraceBus.enable` is called
#: without an explicit limit.
DEFAULT_RING_LIMIT = 65536

Sink = Callable[[TraceEvent], None]


class TraceBus:
    """Ring-buffered, sink-fanning event bus; disabled by default."""

    __slots__ = ("enabled", "kernel_steps", "emitted", "_ring", "_sinks")

    def __init__(self) -> None:
        self.enabled = False
        #: When True the kernel also publishes a KernelStep per executed
        #: simulator event (heavyweight; used by ordering tests and the
        #: full `repro trace --kernel` view).
        self.kernel_steps = False
        self.emitted = 0
        self._ring: deque[TraceEvent] = deque(maxlen=DEFAULT_RING_LIMIT)
        self._sinks: list[Sink] = []

    # -- lifecycle ---------------------------------------------------------

    def enable(self, ring_limit: int | None = DEFAULT_RING_LIMIT,
               kernel_steps: bool = False) -> None:
        """Start recording. *ring_limit* caps retained events (None =
        unbounded — use only for short runs); older events fall off the
        ring but still count toward :attr:`emitted` and still reach
        sinks, so a streaming export is always complete."""
        if ring_limit is not None and ring_limit < 1:
            raise ValueError("ring_limit must be >= 1 (or None)")
        self.enabled = True
        self.kernel_steps = kernel_steps
        self._ring = deque(self._ring, maxlen=ring_limit)

    def disable(self) -> None:
        self.enabled = False
        self.kernel_steps = False

    def clear(self) -> None:
        """Forget retained events and the emitted count (keep sinks)."""
        self.emitted = 0
        self._ring.clear()

    # -- publishing --------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        """Record one event (callers guard on :attr:`enabled` first)."""
        self.emitted += 1
        self._ring.append(event)
        for sink in self._sinks:
            sink(event)

    # -- consumption -------------------------------------------------------

    @property
    def ring_limit(self) -> int | None:
        return self._ring.maxlen

    @property
    def truncated(self) -> int:
        """Events that have fallen off the ring."""
        return self.emitted - len(self._ring)

    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    def tail(self, count: int) -> list[TraceEvent]:
        """The most recent *count* retained events, oldest first."""
        if count <= 0:
            return []
        return list(self._ring)[-count:]

    def add_sink(self, sink: Sink) -> None:
        """Stream every future event to *sink* (order of emission)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        self._sinks.remove(sink)


__all__ = ["TraceBus", "DEFAULT_RING_LIMIT", "Sink"]
