"""Per-simulation metrics registry: counters, histograms, gauges.

One :class:`MetricsRegistry` hangs off every
:class:`~repro.sim.kernel.Simulator`; components obtain their metric
handles once (at construction or on first use) and bump them directly,
so the hot path is an attribute add — no name lookup per increment.
The registry is the *queryable* side: it indexes every metric by
``(name, labels)`` so experiments, the CLI, and tests read one place
instead of scraping ad-hoc fields scattered over the Vm/network layers
(which are now thin property views over these counters).

Metric families in use:

======================  =======================  =========================
name                    labels                   meaning
======================  =======================  =========================
``net.sent``            —                        physical sends attempted
``net.delivered``       —                        handler invocations
``net.dropped.partition`` —                      partition drops
``net.dropped.loss``    —                        sampled-loss drops
``net.bundle.size``     — (histogram)            payloads per bundle
``link.*``              ``src, dst``             per-link gauges
``vm.created``          ``site``                 Vm create records
``vm.accepted``         ``site``                 Vm accept records
``vm.acks``             ``site``                 explicit acks sent
``vm.acks_suppressed``  ``site``                 acks elided by piggyback
``vm.retransmissions``  ``site, peer``           re-sends of live Vm
``vm.duplicates``       ``site, peer``           receiver-side discards
``vm.delivery``         ``src, dst`` (histogram) create→accept latency
``txn.decision``        ``site, outcome`` (hist) submit→decision latency
``rebal.shipments``     ``site``                 daemon surplus pushes
``rebal.pulls``         ``site``                 daemon deficit pulls
``serve.enqueued``      ``site``                 requests admitted
``serve.dequeued``      ``site``                 requests dispatched
``serve.shed``          ``site, reason``         admission refusals
``serve.lease_expired`` ``site``                 slots reclaimed (wipes)
``serve.wait``          ``site`` (histogram)     enqueue→dispatch wait
``serve.depth``         ``site`` (gauge)         live queue depth
``serve.inflight``      ``site`` (gauge)         live slots in use
======================  =======================  =========================

Histograms keep raw samples and summarize lazily through
:func:`repro.metrics.stats.summarize` (imported at call time to keep
the obs layer importable from the simulation kernel without cycles).
"""

from __future__ import annotations

from typing import Any, Callable

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class CounterMetric:
    """A monotonically increasing integer."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class HistogramMetric:
    """Raw-sample histogram with on-demand summary statistics."""

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    def summary(self):
        from repro.metrics.stats import summarize
        return summarize(self.values)


class GaugeMetric:
    """A read-through view of state owned elsewhere (e.g. link counters)."""

    __slots__ = ("name", "labels", "_read")

    def __init__(self, name: str, labels: LabelKey,
                 read: Callable[[], Any]) -> None:
        self.name = name
        self.labels = labels
        self._read = read

    @property
    def value(self) -> Any:
        return self._read()


class MetricsRegistry:
    """Index of every metric in one simulation, by (name, labels)."""

    __slots__ = ("_counters", "_histograms", "_gauges", "_marks")

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], CounterMetric] = {}
        self._histograms: dict[tuple[str, LabelKey], HistogramMetric] = {}
        self._gauges: dict[tuple[str, LabelKey], GaugeMetric] = {}
        # Cross-component latency marks (e.g. Vm create at the sender,
        # accept at the receiver): key -> start time.
        self._marks: dict[Any, float] = {}

    # -- registration / lookup --------------------------------------------

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = CounterMetric(name, key[1])
        return metric

    def histogram(self, name: str, **labels: Any) -> HistogramMetric:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = HistogramMetric(name, key[1])
        return metric

    def gauge(self, name: str, read: Callable[[], Any],
              **labels: Any) -> GaugeMetric:
        key = (name, _label_key(labels))
        metric = GaugeMetric(name, key[1], read)
        self._gauges[key] = metric
        return metric

    # -- cross-component latency marks ------------------------------------

    def mark(self, key: Any, time: float) -> None:
        """Remember when *key*'s lifespan started (first mark wins)."""
        self._marks.setdefault(key, time)

    def elapsed_since_mark(self, key: Any, time: float) -> float | None:
        """Pop *key*'s mark and return the elapsed span (None if unset)."""
        start = self._marks.pop(key, None)
        if start is None:
            return None
        return time - start

    # -- queries -----------------------------------------------------------

    def counters(self, name: str | None = None) -> list[CounterMetric]:
        return [metric for (metric_name, _), metric
                in sorted(self._counters.items())
                if name is None or metric_name == name]

    def histograms(self, name: str | None = None) -> list[HistogramMetric]:
        return [metric for (metric_name, _), metric
                in sorted(self._histograms.items())
                if name is None or metric_name == name]

    def gauges(self, name: str | None = None) -> list[GaugeMetric]:
        return [metric for (metric_name, _), metric
                in sorted(self._gauges.items())
                if name is None or metric_name == name]

    def total(self, name: str) -> int:
        """Sum of a counter family across all label sets."""
        return sum(metric.value for metric in self.counters(name))

    def snapshot(self) -> dict[str, Any]:
        """Deterministic dump of every metric (for export / debugging)."""
        data: dict[str, Any] = {"counters": [], "gauges": [],
                                "histograms": []}
        for metric in self.counters():
            data["counters"].append({"name": metric.name,
                                     "labels": dict(metric.labels),
                                     "value": metric.value})
        for metric in self.gauges():
            data["gauges"].append({"name": metric.name,
                                   "labels": dict(metric.labels),
                                   "value": metric.value})
        for metric in self.histograms():
            summary = metric.summary()
            data["histograms"].append({
                "name": metric.name, "labels": dict(metric.labels),
                "count": summary.count, "mean": summary.mean,
                "p50": summary.p50, "p95": summary.p95,
                "p99": summary.p99, "max": summary.maximum})
        return data


__all__ = ["MetricsRegistry", "CounterMetric", "HistogramMetric",
           "GaugeMetric"]
