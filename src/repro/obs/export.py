"""Streaming JSONL export / import for trace events.

One event per line, ``sort_keys=True`` and no whitespace so the same
event stream always serializes to the same bytes — `repro trace
--jsonl` output and the trace tails embedded in chaos repro artifacts
are diffable across replays.
"""

from __future__ import annotations

import io
import json
import pathlib
from typing import IO, Iterable, Iterator

from repro.obs.bus import TraceBus
from repro.obs.events import TraceEvent, event_from_dict


def event_to_json(event: TraceEvent) -> str:
    """Canonical single-line JSON for one event."""
    return json.dumps(event.to_dict(), sort_keys=True,
                      separators=(",", ":"), default=str)


def write_jsonl(events: Iterable[TraceEvent], out: "IO[str]") -> int:
    """Write one canonical JSON line per event; returns lines written."""
    count = 0
    for event in events:
        out.write(event_to_json(event))
        out.write("\n")
        count += 1
    return count


def dump_jsonl(events: Iterable[TraceEvent],
               path: "str | pathlib.Path") -> int:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        return write_jsonl(events, handle)


def dumps_jsonl(events: Iterable[TraceEvent]) -> str:
    buffer = io.StringIO()
    write_jsonl(events, buffer)
    return buffer.getvalue()


def read_jsonl(source: "IO[str] | str | pathlib.Path"
               ) -> Iterator[TraceEvent]:
    """Parse events back out of a JSONL stream or file."""
    if isinstance(source, (str, pathlib.Path)):
        with open(source) as handle:
            yield from read_jsonl(handle)
        return
    for line in source:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))


class JsonlSink:
    """A :class:`TraceBus` sink that streams events to a text handle.

    Unlike exporting the ring buffer after the fact, a sink sees every
    event — nothing is lost to ring truncation on long runs::

        with open("trace.jsonl", "w") as handle:
            sink = JsonlSink(handle)
            sim.obs.add_sink(sink)
            sim.obs.enable(ring_limit=1024)
            ...
            sim.obs.remove_sink(sink)
    """

    def __init__(self, out: "IO[str]") -> None:
        self._out = out
        self.written = 0

    def __call__(self, event: TraceEvent) -> None:
        self._out.write(event_to_json(event))
        self._out.write("\n")
        self.written += 1


def attach_jsonl(bus: TraceBus, out: "IO[str]") -> JsonlSink:
    """Convenience: create a sink, attach it, return it for removal."""
    sink = JsonlSink(out)
    bus.add_sink(sink)
    return sink


__all__ = ["event_to_json", "write_jsonl", "dump_jsonl", "dumps_jsonl",
           "read_jsonl", "JsonlSink", "attach_jsonl"]
