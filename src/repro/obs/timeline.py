"""Filtering and aligned-timeline rendering of trace events.

Backs the ``repro trace`` CLI subcommand: a trace (from a live run or
an imported JSONL) is narrowed with :class:`TraceFilter` and rendered
as a fixed-width timeline, one line per event, with time / site /
kind / detail columns aligned for scanning. Rendering depends only on
the event fields, so the same trace always renders to the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Iterator

from repro.obs.events import TraceEvent



@dataclass(frozen=True)
class TraceFilter:
    """Keep events mentioning a site / item / transaction / kind prefix.

    Each criterion is conjunctive when set; ``site`` matches any
    site-valued field (``site``, ``src``, ``dst``) so a filter on S1
    shows both directions of S1's traffic.
    """

    site: str | None = None
    item: str | None = None
    txn: str | None = None
    kind: str | None = None

    def matches(self, event: TraceEvent) -> bool:
        data = event.to_dict()
        if self.kind is not None and \
                not data["kind"].startswith(self.kind):
            return False
        if self.site is not None and self.site not in (
                data.get("site"), data.get("src"), data.get("dst")):
            return False
        if self.item is not None and data.get("item") != self.item:
            return False
        if self.txn is not None and self.txn not in (
                data.get("txn"), data.get("label")):
            return False
        return True

    def apply(self, events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
        return (event for event in events if self.matches(event))


def _actor(event: TraceEvent) -> tuple[str, str]:
    """(site the line is attributed to, field it was taken from)."""
    data = event.to_dict()
    if data.get("site"):
        return data["site"], "site"
    if data.get("src"):
        return data["src"], "src"
    return "-", ""


def _detail(event: TraceEvent, actor_field: str) -> str:
    """Every remaining field, as stable key=value pairs.

    Only ``t`` and the field already shown in the site column are
    dropped — e.g. a ``vm.accept`` attributed to its ``site`` still
    shows ``src=...`` so the channel direction survives in the line.
    """
    parts = []
    for spec in fields(event):
        if spec.name == "t" or spec.name == actor_field:
            continue
        value = getattr(event, spec.name)
        if value in ("", None):
            continue
        parts.append(f"{spec.name}={value}")
    return " ".join(parts)


def render_timeline(events: Iterable[TraceEvent], title: str = "trace"
                    ) -> str:
    """Aligned fixed-width timeline, one event per line."""
    rows = []
    for event in events:
        actor, actor_field = _actor(event)
        rows.append((f"{event.t:.3f}", actor, event.kind,
                     _detail(event, actor_field)))
    if not rows:
        return f"{title}\n(no events)"
    widths = [max(len(row[column]) for row in rows) for column in range(3)]
    lines = [title,
             f"{'time'.rjust(widths[0])}  {'site'.ljust(widths[1])}  "
             f"{'event'.ljust(widths[2])}  detail"]
    for time, actor, kind, detail in rows:
        lines.append(f"{time.rjust(widths[0])}  {actor.ljust(widths[1])}  "
                     f"{kind.ljust(widths[2])}  {detail}".rstrip())
    lines.append(f"({len(rows)} events)")
    return "\n".join(lines)


__all__ = ["TraceFilter", "render_timeline"]
