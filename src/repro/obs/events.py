"""Typed trace events — the vocabulary of the observability layer.

Every event is a small frozen dataclass carrying only deterministic,
JSON-representable fields: the virtual time ``t`` plus names (sites,
items, transaction ids) and integers. Nothing here references live
objects, wall clocks, or memory addresses, so a trace captured from a
``(seed, plan)`` replay is byte-identical across runs — the property
``repro trace`` and the embedded chaos trace tails rely on.

The event families mirror the protocol's moving parts:

* **txn** — the Section 5 lifecycle: submit, lock wait/grant,
  redistribution requests, commit, abort (with reason);
* **vm** — Section 4.2's virtual messages: create, transmit,
  retransmit, duplicate discard, accept, ack;
* **rebal** — planned redistribution: a surplus push (Vm created by
  the daemon) or a deficit pull request, with the policy that chose
  the peer;
* **net** — physical transmissions: send, partition drop, loss drop,
  deliver;
* **site** — crash, recover, log force;
* **serve** — the serving front-end's admission path: enqueue,
  dequeue (dispatch into the system), shed (typed Overload refusal);
* **kernel** — one event per executed simulator event (optional,
  heavyweight; lines up with :meth:`Simulator.trace_fingerprint`).

``to_dict``/``event_from_dict`` round-trip events through plain dicts
for the JSONL export; ``EVENT_TYPES`` is the kind → class registry.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar


@dataclass(frozen=True)
class TraceEvent:
    """Base shape: every event happens at one virtual instant."""

    kind: ClassVar[str] = "event"
    t: float

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            data[spec.name] = getattr(self, spec.name)
        return data


# -- transaction lifecycle (Section 5) ---------------------------------------

@dataclass(frozen=True)
class TxnSubmit(TraceEvent):
    kind: ClassVar[str] = "txn.submit"
    site: str = ""
    txn: str = ""
    label: str = ""


@dataclass(frozen=True)
class TxnLockWait(TraceEvent):
    """Step 1 stalled: the CC scheme queued the lock acquisition."""

    kind: ClassVar[str] = "txn.lock-wait"
    site: str = ""
    txn: str = ""


@dataclass(frozen=True)
class TxnLocksGranted(TraceEvent):
    kind: ClassVar[str] = "txn.locks-granted"
    site: str = ""
    txn: str = ""


@dataclass(frozen=True)
class TxnRedistribute(TraceEvent):
    """Step 2: requests for value fanned out to peers."""

    kind: ClassVar[str] = "txn.redistribute"
    site: str = ""
    txn: str = ""
    requests: int = 0


@dataclass(frozen=True)
class TxnCommit(TraceEvent):
    kind: ClassVar[str] = "txn.commit"
    site: str = ""
    txn: str = ""


@dataclass(frozen=True)
class TxnAbort(TraceEvent):
    kind: ClassVar[str] = "txn.abort"
    site: str = ""
    txn: str = ""
    reason: str = ""


# -- virtual messages (Section 4.2) ------------------------------------------

@dataclass(frozen=True)
class VmCreate(TraceEvent):
    """The Vm came into existence (create record forced at *site*)."""

    kind: ClassVar[str] = "vm.create"
    site: str = ""
    dst: str = ""
    item: str = ""
    seq: int = 0
    amount: Any = None
    vm_kind: str = "transfer"
    txn: str = ""


@dataclass(frozen=True)
class VmTransmit(TraceEvent):
    """A real message carrying the Vm left *site* (first send)."""

    kind: ClassVar[str] = "vm.transmit"
    site: str = ""
    dst: str = ""
    seq: int = 0


@dataclass(frozen=True)
class VmRetransmit(TraceEvent):
    kind: ClassVar[str] = "vm.retransmit"
    site: str = ""
    dst: str = ""
    seq: int = 0


@dataclass(frozen=True)
class VmDuplicateDiscard(TraceEvent):
    """An already-absorbed sequence number arrived again at *site*."""

    kind: ClassVar[str] = "vm.duplicate-discard"
    site: str = ""
    src: str = ""
    seq: int = 0


@dataclass(frozen=True)
class VmAccept(TraceEvent):
    """The Vm ceased to exist (accept record forced at *site*)."""

    kind: ClassVar[str] = "vm.accept"
    site: str = ""
    src: str = ""
    item: str = ""
    seq: int = 0


@dataclass(frozen=True)
class VmAckSent(TraceEvent):
    """An explicit cumulative acknowledgement left *site*."""

    kind: ClassVar[str] = "vm.ack"
    site: str = ""
    dst: str = ""
    cumulative: int = 0


# -- network -----------------------------------------------------------------

@dataclass(frozen=True)
class NetSend(TraceEvent):
    kind: ClassVar[str] = "net.send"
    src: str = ""
    dst: str = ""
    payload: str = ""


@dataclass(frozen=True)
class NetDropPartition(TraceEvent):
    kind: ClassVar[str] = "net.drop-partition"
    src: str = ""
    dst: str = ""
    payload: str = ""


@dataclass(frozen=True)
class NetDropLoss(TraceEvent):
    kind: ClassVar[str] = "net.drop-loss"
    src: str = ""
    dst: str = ""
    payload: str = ""


@dataclass(frozen=True)
class NetDeliver(TraceEvent):
    kind: ClassVar[str] = "net.deliver"
    src: str = ""
    dst: str = ""
    payload: str = ""


@dataclass(frozen=True)
class NetBundle(TraceEvent):
    """One real envelope delivered carrying *size* coalesced payloads.

    Emitted only when transport bundling is enabled (see
    ``repro.net.outbox``); ``size`` counts the logical payloads the
    bundle carried — 1 means no same-window partner was found.
    """

    kind: ClassVar[str] = "net.bundle"
    src: str = ""
    dst: str = ""
    size: int = 0


# -- rebalancing (planned redistribution) ------------------------------------

@dataclass(frozen=True)
class RebalShip(TraceEvent):
    """The rebalance daemon pushed surplus toward *dst* (Vm created)."""

    kind: ClassVar[str] = "rebal.ship"
    site: str = ""
    dst: str = ""
    item: str = ""
    amount: Any = None
    policy: str = ""


@dataclass(frozen=True)
class RebalPull(TraceEvent):
    """The rebalance daemon requested deficit value from *src*."""

    kind: ClassVar[str] = "rebal.pull"
    site: str = ""
    src: str = ""
    item: str = ""
    amount: Any = None
    policy: str = ""


# -- partition directory + migration (docs/PARTITIONING.md) ------------------

@dataclass(frozen=True)
class DirectoryEpoch(TraceEvent):
    """The partition directory advanced to a new epoch."""

    kind: ClassVar[str] = "dir.epoch"
    epoch: int = 0
    reason: str = ""
    site: str = ""
    sites: int = 0


@dataclass(frozen=True)
class MigrationShip(TraceEvent):
    """The migration controller moved a fragment toward its new owner
    (an ordinary transfer-mode Vm; the auditor sees nothing special)."""

    kind: ClassVar[str] = "migrate.ship"
    site: str = ""
    dst: str = ""
    item: str = ""
    amount: Any = None
    epoch: int = 0


@dataclass(frozen=True)
class MigrationDone(TraceEvent):
    """Every planned move of a reshard was shipped and accepted."""

    kind: ClassVar[str] = "migrate.done"
    epoch: int = 0
    moves: int = 0
    fence_waits: int = 0


@dataclass(frozen=True)
class SiteJoin(TraceEvent):
    """A new site joined the running topology."""

    kind: ClassVar[str] = "site.join"
    site: str = ""
    epoch: int = 0


@dataclass(frozen=True)
class SiteDecommission(TraceEvent):
    """A site left the directory (stays alive to drain its value)."""

    kind: ClassVar[str] = "site.decommission"
    site: str = ""
    epoch: int = 0


# -- site --------------------------------------------------------------------

@dataclass(frozen=True)
class SiteCrash(TraceEvent):
    kind: ClassVar[str] = "site.crash"
    site: str = ""
    txns_wiped: int = 0


@dataclass(frozen=True)
class SiteRecover(TraceEvent):
    kind: ClassVar[str] = "site.recover"
    site: str = ""
    redo_applied: int = 0
    vm_rebuilt: int = 0
    from_checkpoint: bool = False


@dataclass(frozen=True)
class LogForce(TraceEvent):
    """A record hit stable storage (the protocol's commit points)."""

    kind: ClassVar[str] = "site.log-force"
    site: str = ""
    record: str = ""
    lsn: int = 0


# -- serving front-end (docs/SERVING.md) -------------------------------------

@dataclass(frozen=True)
class ServeEnqueue(TraceEvent):
    """A routed request passed admission and entered *site*'s queue."""

    kind: ClassVar[str] = "serve.enqueue"
    site: str = ""
    origin: str = ""
    depth: int = 0


@dataclass(frozen=True)
class ServeDequeue(TraceEvent):
    """A queued request was dispatched into the system at *site*."""

    kind: ClassVar[str] = "serve.dequeue"
    site: str = ""
    waited: float = 0.0
    inflight: int = 0


@dataclass(frozen=True)
class ServeShed(TraceEvent):
    """Admission control refused a request (typed Overload to client)."""

    kind: ClassVar[str] = "serve.shed"
    site: str = ""
    origin: str = ""
    reason: str = ""
    depth: int = 0


# -- bounded-staleness read views (docs/READS.md) ----------------------------

@dataclass(frozen=True)
class ReadViewServe(TraceEvent):
    """A cached view entry satisfied a reader's staleness bound."""

    kind: ClassVar[str] = "read.view-serve"
    site: str = ""
    txn: str = ""
    item: str = ""
    staleness: float = 0.0
    bound: float | None = None


@dataclass(frozen=True)
class ReadViewMiss(TraceEvent):
    """The cache could not certify the bound; the reader escalates."""

    kind: ClassVar[str] = "read.view-miss"
    site: str = ""
    txn: str = ""
    item: str = ""
    reason: str = ""


@dataclass(frozen=True)
class ReadViewRefresh(TraceEvent):
    """One write-behind refresh round published at a global barrier."""

    kind: ClassVar[str] = "read.refresh"
    publishers: int = 0
    items: int = 0
    sends: int = 0


# -- kernel ------------------------------------------------------------------

@dataclass(frozen=True)
class KernelStep(TraceEvent):
    """One executed simulator event; mirrors the trace fingerprint."""

    kind: ClassVar[str] = "kernel.step"
    label: str = ""


EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls for cls in (
        TxnSubmit, TxnLockWait, TxnLocksGranted, TxnRedistribute,
        TxnCommit, TxnAbort,
        VmCreate, VmTransmit, VmRetransmit, VmDuplicateDiscard,
        VmAccept, VmAckSent,
        RebalShip, RebalPull,
        DirectoryEpoch, MigrationShip, MigrationDone,
        SiteJoin, SiteDecommission,
        NetSend, NetDropPartition, NetDropLoss, NetDeliver, NetBundle,
        SiteCrash, SiteRecover, LogForce,
        ServeEnqueue, ServeDequeue, ServeShed,
        ReadViewServe, ReadViewMiss, ReadViewRefresh,
        KernelStep,
    )
}


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.to_dict` (JSONL import)."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    return cls(**payload)


__all__ = ["TraceEvent", "EVENT_TYPES", "event_from_dict"] + [
    cls.__name__ for cls in EVENT_TYPES.values()]
