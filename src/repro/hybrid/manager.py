"""The hybrid mode manager.

Wraps a :class:`~repro.core.system.DvPSystem`. Every item starts in
DvP mode. ``consolidate(item, home)`` runs a full-read transaction at
*home*; when it commits, the entire value sits in home's fragment and
the item flips to CENTRAL mode. From then on the manager routes
transactions: submissions at the home run as ordinary local DvP
transactions (the fragment IS the value); submissions elsewhere are
forwarded to the home over the network and decided there (the origin
applies its usual timeout, so the non-blocking bound survives — a
partition just means forwarded transactions abort, like any traditional
system). ``deconsolidate(item, split)`` ships quotas back out as Rds
transactions and flips the item back to DVP mode.

Mode metadata is manager-local (a client-side routing table), not
replicated state: misrouted submissions degrade to ordinary DvP
behaviour, never to inconsistency — the underlying protocol is mode
oblivious.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.site import SiteDown
from repro.core.system import DvPSystem
from repro.core.transactions import (
    ApplyOp,
    Outcome,
    ReadFullOp,
    ReadLocalOp,
    TransactionSpec,
    TxnResult,
)
from repro.net.message import Envelope
from repro.sim.timers import Timer
from repro.storage.records import SetFragment, VmCreateRecord


class ItemMode(enum.Enum):
    DVP = "dvp"
    CENTRAL = "central"


@dataclass(frozen=True)
class ForwardRequest:
    """A transaction shipped to a centralized item's home site."""

    forward_id: int
    origin: str
    spec: TransactionSpec


@dataclass(frozen=True)
class ForwardReply:
    forward_id: int
    outcome: Outcome
    reason: str
    read_values: tuple[tuple[str, Any], ...] = ()
    semantic_deltas: tuple[tuple[str, int, Any], ...] = ()


@dataclass
class _PendingForward:
    spec: TransactionSpec
    origin: str
    submitted_at: float
    on_done: Callable[[TxnResult], None] | None
    timer: Timer | None = None
    finished: bool = False


class HybridSystem:
    """Mode-aware routing façade over a DvPSystem.

    With ``path_sensitive=True`` the manager applies Soethout et al.'s
    local coordination avoidance (*Path-Sensitive Atomic Commit*,
    PAPERS.md) before forwarding: if every path through the submitted
    spec provably commits from the origin's local fragment alone —
    update-only ops whose aggregate needs the fragment covers;
    increments trivially qualify — the transaction is decided locally
    as an ordinary DvP transaction instead of round-tripping to the
    centralized home. The underlying protocol is mode-oblivious, so
    the fast path can never create inconsistency; its only cost is
    dispersal (the home's fragment stops being the whole value, so
    full reads there lose the free-local rewrite until the next
    consolidation).
    """

    def __init__(self, system: DvPSystem,
                 path_sensitive: bool = False) -> None:
        self.system = system
        self.path_sensitive = path_sensitive
        self.modes: dict[str, ItemMode] = {}
        self.homes: dict[str, str] = {}
        self.forwarded = 0
        self.local_commits = 0
        self._c_local = system.sim.metrics.counter("hybrid.local_commits")
        self._c_forward = system.sim.metrics.counter("hybrid.forwards")
        #: Centralized items whose value leaked away from the home via
        #: path-sensitive local commits at other sites; their full
        #: reads must fan out again until re-consolidated.
        self._dispersed: set[str] = set()
        self._forward_ids = itertools.count(1)
        self._pending: dict[int, _PendingForward] = {}
        # Interpose on every site's delivery to catch Forward* payloads.
        for name, site in system.sites.items():
            system.network.replace_handler(
                name, self._make_handler(name, site.deliver))

    # -- mode inspection ------------------------------------------------------

    def mode_of(self, item: str) -> ItemMode:
        return self.modes.get(item, ItemMode.DVP)

    def home_of(self, item: str) -> str | None:
        return self.homes.get(item) \
            if self.mode_of(item) is ItemMode.CENTRAL else None

    # -- mode transitions -------------------------------------------------------

    def consolidate(self, item: str, home: str,
                    on_done: Callable[[TxnResult], None] | None = None
                    ) -> None:
        """Drain every fragment of *item* to *home*; flip to CENTRAL.

        Implemented as a full-read transaction: if it commits, home's
        fragment holds the entire value. An abort leaves the item in
        DVP mode (and redistributed, harmlessly).
        """

        def done(result: TxnResult) -> None:
            if result.committed:
                self.modes[item] = ItemMode.CENTRAL
                self.homes[item] = home
                # The full read drained every fragment (including any
                # path-sensitively dispersed ones) back to the home.
                self._dispersed.discard(item)
            if on_done is not None:
                on_done(result)

        self.system.sites[home].submit(
            TransactionSpec(ops=(ReadFullOp(item),),
                            label=f"consolidate:{item}"), done)

    def deconsolidate(self, item: str, split: dict[str, Any]) -> bool:
        """Ship quotas back out from the home; flip to DVP.

        *split* maps peer site -> amount; anything not shipped stays at
        the home. Returns False (mode unchanged) if the item is not
        centralized, the home fragment cannot cover the split, or the
        item is locked right now.
        """
        if self.mode_of(item) is not ItemMode.CENTRAL:
            return False
        home = self.homes[item]
        site = self.system.sites[home]
        domain = site.fragments.domain(item)
        total = domain.zero()
        for amount in split.values():
            total = domain.combine(total, amount)
        if not site.locks.is_free(item):
            return False
        if not domain.covers(site.fragments.value(item), total):
            return False
        owner = f"deconsolidate:{item}"
        if not site.locks.try_acquire_all(owner, {item}):
            return False
        try:
            value = site.fragments.value(item)
            remainder = domain.subtract(value, total)
            ts = site.clock.next()
            entries = tuple(
                site.vm.allocate_entry(peer, item, amount, "transfer",
                                       owner)
                for peer, amount in sorted(split.items())
                if not domain.is_zero(amount))
            lsn = site.log_append(VmCreateRecord(
                txn_id=owner,
                actions=(SetFragment(item, remainder, ts=ts),),
                messages=entries))
            site.apply_actions((SetFragment(item, remainder, ts=ts),),
                               lsn)
            site.vm.register_created(list(entries))
        finally:
            site.locks.release_all(owner)
            site.after_lock_release()
        self.modes[item] = ItemMode.DVP
        del self.homes[item]
        self._dispersed.discard(item)
        return True

    # -- routing ---------------------------------------------------------------

    def submit(self, site: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None) -> None:
        """Submit, forwarding to the home when items are centralized.

        All centralized items of one transaction must share a home (the
        manager enforces this at consolidation time by routing, not by
        distributed locking).
        """
        homes = {self.homes[item] for item in spec.items()
                 if self.mode_of(item) is ItemMode.CENTRAL}
        if self.path_sensitive and homes - {site} and \
                self._locally_decidable(site, spec):
            # Soethout check passed: every path through this spec
            # commits from the local fragment alone, so skip the
            # forward entirely and decide here. Remember which
            # centralized items just leaked value away from home.
            self.local_commits += 1
            self._c_local.inc()
            for item in spec.update_items():
                if self.mode_of(item) is ItemMode.CENTRAL and \
                        self.homes.get(item) != site:
                    self._dispersed.add(item)
            self.system.submit(site, spec, on_done)
            return
        if len(homes) > 1:
            raise ValueError(
                f"spec touches centralized items with different homes: "
                f"{sorted(homes)}")
        target = homes.pop() if homes else site
        if target == site:
            self.system.submit(site, self._localize_reads(site, spec),
                               on_done)
            return
        self._forward(site, target, spec, on_done)

    def _locally_decidable(self, site: str, spec: TransactionSpec) -> bool:
        """True iff the origin's fragments provably cover every path
        through *spec*: no full reads (their value depends on global
        state), no opaque operators (unprovable preconditions), and
        the local fragment covers the spec's aggregate per-item needs
        — increments need nothing, so they always qualify."""
        for op in spec.ops:
            if isinstance(op, ReadFullOp):
                return False
            if isinstance(op, ApplyOp):
                try:
                    op.operator.delta(
                        self.system.sites[site].fragments.domain(op.item))
                except (NotImplementedError, KeyError):
                    return False
        origin = self.system.sites[site]
        try:
            needs = spec.needs(origin.fragments.domain)
            for item, need in needs.items():
                domain = origin.fragments.domain(item)
                if not domain.covers(origin.fragments.value(item), need):
                    return False
        except KeyError:
            return False  # an item this site never registered
        return True

    def _localize_reads(self, site: str,
                        spec: TransactionSpec) -> TransactionSpec:
        """At an item's home the fragment IS the value: rewrite full
        reads of centralized items into free local-fragment reads."""
        rewritten = []
        changed = False
        for op in spec.ops:
            if isinstance(op, ReadFullOp) and \
                    self.mode_of(op.item) is ItemMode.CENTRAL and \
                    self.homes.get(op.item) == site and \
                    op.item not in self._dispersed:
                rewritten.append(ReadLocalOp(op.item))
                changed = True
            else:
                rewritten.append(op)
        if not changed:
            return spec
        return TransactionSpec(ops=tuple(rewritten), label=spec.label,
                               work=spec.work)

    def _forward(self, origin: str, home: str, spec: TransactionSpec,
                 on_done: Callable[[TxnResult], None] | None) -> None:
        self.forwarded += 1
        self._c_forward.inc()
        forward_id = next(self._forward_ids)
        pending = _PendingForward(spec, origin, self.system.sim.now,
                                  on_done)
        self._pending[forward_id] = pending
        timeout = self.system.config.txn_timeout
        timer = Timer(self.system.sim,
                      lambda: self._forward_timeout(forward_id),
                      label=f"forward-timeout:{forward_id}")
        timer.start(timeout)
        pending.timer = timer
        self.system.network.send(origin, home,
                                 ForwardRequest(forward_id, origin, spec))

    def _forward_timeout(self, forward_id: int) -> None:
        pending = self._pending.pop(forward_id, None)
        if pending is None or pending.finished:
            return
        pending.finished = True
        if pending.on_done is not None:
            pending.on_done(TxnResult(
                txn_id=f"fwd#{forward_id}", label=pending.spec.label,
                outcome=Outcome.ABORTED, reason="forward-timeout",
                site=pending.origin, submitted_at=pending.submitted_at,
                finished_at=self.system.sim.now))

    # -- message handling --------------------------------------------------------

    def _make_handler(self, name: str, inner) -> Callable[[Envelope], None]:
        def handler(envelope: Envelope) -> None:
            payload = envelope.payload
            if isinstance(payload, ForwardRequest):
                self._on_forward_request(name, payload)
            elif isinstance(payload, ForwardReply):
                self._on_forward_reply(payload)
            else:
                inner(envelope)
        return handler

    def _on_forward_request(self, home: str,
                            request: ForwardRequest) -> None:
        def done(result: TxnResult) -> None:
            self.system.network.send(home, request.origin, ForwardReply(
                request.forward_id, result.outcome, result.reason,
                tuple(result.read_values.items()),
                tuple(result.semantic_deltas)))

        try:
            self.system.sites[home].submit(
                self._localize_reads(home, request.spec), done)
        except SiteDown:
            pass  # origin's timeout handles it

    def _on_forward_reply(self, reply: ForwardReply) -> None:
        pending = self._pending.pop(reply.forward_id, None)
        if pending is None or pending.finished:
            return
        pending.finished = True
        if pending.timer is not None:
            pending.timer.cancel()
        if pending.on_done is not None:
            pending.on_done(TxnResult(
                txn_id=f"fwd#{reply.forward_id}", label=pending.spec.label,
                outcome=reply.outcome, reason=reply.reason,
                site=pending.origin, submitted_at=pending.submitted_at,
                finished_at=self.system.sim.now,
                read_values=dict(reply.read_values),
                semantic_deltas=list(reply.semantic_deltas)))
