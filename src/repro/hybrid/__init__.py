"""Hybrid DvP / centralized operation (Section 8).

    "To make the best of both approaches, it may be preferable to
    design systems that can respond to different situations by
    dynamically interchanging between a DvP scheme and some
    traditional scheme."

This package implements that suggestion: a per-item mode switch.
Consolidating an item drains every fragment to one *home* site (a full
read), after which the item operates like a traditional single-copy
item — remote transactions are forwarded to the home, reads are local
and exact there. Deconsolidating redistributes quotas back out (plain
Rds shipments) and returns the item to DvP operation.

The trade-off is exactly the paper's: centralized mode makes reads
cheap and exact but reintroduces a single point of unavailability;
DvP mode keeps every site autonomous but makes full reads expensive.
Experiment E11 measures the crossover.
"""

from repro.hybrid.manager import HybridSystem, ItemMode

__all__ = ["HybridSystem", "ItemMode"]
