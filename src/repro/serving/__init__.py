"""Serving front-end: open-loop traffic, routing, admission control.

See docs/SERVING.md. The front-end implements the same
``submit(site, spec, on_done)`` protocol as the system it fronts, so
workload drivers and the chaos engine use it unchanged.
"""

from repro.serving.admission import AdmissionPolicy, Overload
from repro.serving.frontend import ServingConfig, ServingFrontend
from repro.serving.queue import SiteQueue
from repro.serving.router import (
    ROUTERS,
    DepthBoard,
    LeastQueueRouter,
    LocalityRouter,
    RandomRouter,
    ViewAwareRouter,
    make_router,
)

__all__ = [
    "ROUTERS",
    "AdmissionPolicy",
    "DepthBoard",
    "LeastQueueRouter",
    "LocalityRouter",
    "Overload",
    "RandomRouter",
    "ServingConfig",
    "ServingFrontend",
    "SiteQueue",
    "ViewAwareRouter",
    "make_router",
]
