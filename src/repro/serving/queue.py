"""Per-site bounded request queue with load leveling.

Each site fronts its DvP site with one FIFO queue and a fixed number
of *service slots* (``max_inflight``): at most that many transactions
are inside the system per site at once, the rest wait in the queue.
That is queue-based load leveling — bursts are absorbed by the queue
instead of piling concurrent transactions (and lock contention) onto
the site — and it gives admission control a meaningful signal: queue
depth times the EWMA service time estimates the wait a new request
would face.

Every queue mutation happens on the owning site's shard (arrivals run
there, and a transaction's decision callback fires at its submit
site), so the sharded kernel's worker-invariance holds without locks.
A lease reclaims slots whose transaction vanished in a crash: the
decision callback will never fire for a wiped transaction, and
without the lease the slot would leak and the queue would stall.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.site import SiteDown
from repro.core.transactions import TransactionSpec, TxnResult
from repro.metrics.windows import ServeSample
from repro.obs.events import ServeDequeue, ServeEnqueue, ServeShed
from repro.serving.admission import AdmissionPolicy, Overload
from repro.sim.timers import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.frontend import ServingFrontend


@dataclass
class _Queued:
    spec: TransactionSpec
    origin: str
    enqueued_at: float
    on_done: Callable[[TxnResult], None] | None


class SiteQueue:
    """Bounded FIFO + service slots in front of one site."""

    def __init__(self, frontend: "ServingFrontend", site: str) -> None:
        self.frontend = frontend
        self.site = site
        self.sim = frontend.sim
        config = frontend.config
        self.policy = AdmissionPolicy(config.max_depth, config.max_wait)
        self.slots = config.max_inflight
        self.lease = frontend.lease
        self._queue: deque[_Queued] = deque()
        self.inflight = 0
        #: EWMA of dispatch->decision time; seeds the wait estimate
        #: before the first completion.
        self.service_est = config.service_estimate
        self._alpha = config.ewma_alpha
        self.accepting = True
        metrics = self.sim.metrics
        self._enqueued = metrics.counter("serve.enqueued", site=site)
        self._dequeued = metrics.counter("serve.dequeued", site=site)
        self._wait_hist = metrics.histogram("serve.wait", site=site)
        self._lease_expired = metrics.counter("serve.lease_expired",
                                              site=site)
        metrics.gauge("serve.depth", lambda: len(self._queue), site=site)
        metrics.gauge("serve.inflight", lambda: self.inflight, site=site)

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def load(self) -> int:
        """Queued + in service: the routing/board load signal."""
        return len(self._queue) + self.inflight

    def estimated_wait(self) -> float:
        """Time a new arrival would wait before its dispatch."""
        if self.slots <= 0:
            return 0.0
        return len(self._queue) * self.service_est / self.slots

    # -- admission ----------------------------------------------------------

    def offer(self, spec: TransactionSpec, origin: str,
              on_done: Callable[[TxnResult], None] | None = None
              ) -> Overload | None:
        """Admit (None) or shed (the Overload) one routed request."""
        now = self.sim.now
        if not self.accepting:
            return self._shed(origin, "shutdown", now)
        estimated = self.estimated_wait()
        reason = self.policy.refuse_reason(len(self._queue), estimated)
        if reason is not None:
            return self._shed(origin, reason, now, estimated)
        self._queue.append(_Queued(spec, origin, now, on_done))
        self._enqueued.inc()
        obs = self.sim.obs
        if obs.enabled:
            obs.emit(ServeEnqueue(t=now, site=self.site, origin=origin,
                                  depth=len(self._queue)))
        self._pump()
        return None

    def _shed(self, origin: str, reason: str, now: float,
              estimated_wait: float = 0.0) -> Overload:
        overload = Overload(site=self.site, at=now, reason=reason,
                            depth=len(self._queue),
                            estimated_wait=estimated_wait)
        self.frontend.record_shed(overload, origin)
        return overload

    # -- dispatch -----------------------------------------------------------

    def _pump(self) -> None:
        while self._queue and self.inflight < self.slots:
            self._dispatch(self._queue.popleft())

    def _dispatch(self, entry: _Queued) -> None:
        now = self.sim.now
        self.inflight += 1
        self._dequeued.inc()
        self._wait_hist.observe(now - entry.enqueued_at)
        obs = self.sim.obs
        if obs.enabled:
            obs.emit(ServeDequeue(t=now, site=self.site,
                                  waited=now - entry.enqueued_at,
                                  inflight=self.inflight))
        released = False

        def release() -> None:
            nonlocal released
            if released:
                return
            released = True
            lease.cancel()
            self.inflight -= 1
            self._pump()

        def on_lease_expired() -> None:
            # The transaction vanished (crash wiped it before a
            # decision): reclaim the slot so the queue keeps moving.
            self._lease_expired.inc()
            release()

        def on_decided(result: TxnResult) -> None:
            self.service_est += self._alpha * (
                (self.sim.now - now) - self.service_est)
            self.frontend.record_sample(ServeSample(
                site=self.site, arrived_at=entry.enqueued_at,
                dispatched_at=now, finished_at=self.sim.now,
                committed=result.committed))
            if entry.on_done is not None:
                entry.on_done(result)
            release()

        lease = Timer(self.sim, on_lease_expired,
                      label=f"serve:lease:{self.site}", site=self.site)
        try:
            self.frontend.system.submit(self.site, entry.spec, on_decided)
        except SiteDown:
            released = True
            self.inflight -= 1
            self._shed(entry.origin, "site-down", now)
            return
        # A fast local commit can decide synchronously inside submit;
        # arming the lease afterwards would leak a timer for a slot
        # that was already released.
        if self.lease is not None and not released:
            lease.start(self.lease)
        self.frontend.note_dispatch()

    # -- shutdown -----------------------------------------------------------

    def quiesce(self) -> int:
        """Stop admitting and shed everything still queued."""
        self.accepting = False
        drained = 0
        while self._queue:
            entry = self._queue.popleft()
            self._shed(entry.origin, "shutdown", self.sim.now)
            drained += 1
        return drained
