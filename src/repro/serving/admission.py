"""Admission control: typed refusals instead of unbounded queues.

Queue-based load leveling only bounds *burst* absorption; past
saturation an unbounded queue grows without limit and every client
pays the whole backlog in latency. The admission policy puts a lid on
the queue: requests beyond a depth or estimated-wait bound are *shed*
with a typed :class:`Overload` the client can distinguish from an
abort — the request never entered the system, nothing needs undoing,
which is exactly the cheap-refusal regime DvP's local commits make
common (docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Overload:
    """A shed request: refused by admission control, never submitted.

    ``reason`` is one of ``"depth"`` (queue at max_depth), ``"wait"``
    (estimated wait exceeded max_wait), ``"site-down"`` (dispatch hit a
    crashed site), or ``"shutdown"`` (front-end quiesced with the
    request still queued).
    """

    site: str
    at: float
    reason: str
    depth: int = 0
    estimated_wait: float = 0.0


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-site queue bounds; ``None`` disables that bound."""

    max_depth: int | None = None
    max_wait: float | None = None

    def refuse_reason(self, depth: int, estimated_wait: float) -> str | None:
        """Why a request at this queue state must be shed, or None."""
        if self.max_depth is not None and depth >= self.max_depth:
            return "depth"
        if self.max_wait is not None and estimated_wait > self.max_wait:
            return "wait"
        return None

    @property
    def enabled(self) -> bool:
        return self.max_depth is not None or self.max_wait is not None
