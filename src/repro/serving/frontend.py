"""The serving front-end: router + per-site queues ahead of the system.

``ServingFrontend`` implements the same ``submit(site, spec, on_done)``
protocol as :class:`~repro.core.system.DvPSystem`, so the workload
driver (and the chaos engine) can point at it unchanged. A submitted
request is routed to a target site, forwarded there (paying the route
delay when it crosses sites), and offered to that site's bounded
queue; admission control may shed it with a typed
:class:`~repro.serving.admission.Overload` instead.

Determinism on the sharded kernel: routing draws use per-origin
streams, cross-site forwards are scheduled ``route_delay >= lookahead``
ahead (exactly like network sends), and the least-queue board
refreshes only at global barriers — see docs/SERVING.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.system import DvPSystem
from repro.core.transactions import TransactionSpec, TxnResult
from repro.metrics.collector import Collector
from repro.metrics.windows import ServeSample
from repro.obs.events import ServeShed
from repro.serving.admission import Overload
from repro.serving.queue import SiteQueue
from repro.serving.router import ROUTERS, DepthBoard, make_router


@dataclass
class ServingConfig:
    """Front-end policy knobs (docs/SERVING.md)."""

    router: str = "least-queue"
    #: Service slots per site: concurrent transactions inside the
    #: system. The load-leveling lever.
    max_inflight: int = 4
    #: Admission bounds; None disables that bound (unbounded queue).
    max_depth: int | None = 64
    max_wait: float | None = None
    #: Forwarding delay for cross-site routing. None = the kernel's
    #: lookahead (0 on the single-queue kernel) — the least delay a
    #: cross-shard hop can legally have.
    route_delay: float | None = None
    #: Depth-board refresh period (global barriers).
    board_period: float = 5.0
    #: Slot lease; None = txn_timeout + one board period of grace.
    lease: float | None = None
    #: Seed for the EWMA service-time estimate before completions.
    service_estimate: float = 1.0
    ewma_alpha: float = 0.2
    #: Keep every ServeSample/Overload in ``frontend.samples`` /
    #: ``frontend.overloads`` (the harness-scale default). Turn off for
    #: 10^5-10^6-site runs and consume the ``on_sample``/``on_overload``
    #: sinks instead (e.g. metrics.windows.StreamingWindowStats) — the
    #: decision stream then costs O(1) memory per request.
    retain_samples: bool = True

    def __post_init__(self) -> None:
        if self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; choose from {ROUTERS}")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.board_period <= 0:
            raise ValueError("board_period must be positive")


class ServingFrontend:
    """Routes, queues, and admission-controls requests for a system."""

    def __init__(self, system: DvPSystem,
                 config: ServingConfig | None = None,
                 collector: Collector | None = None) -> None:
        self.system = system
        self.sim = system.sim
        self.config = config or ServingConfig()
        self.collector = collector or Collector()
        lookahead = getattr(self.sim, "lookahead", 0.0)
        self.route_delay = (self.config.route_delay
                            if self.config.route_delay is not None
                            else lookahead)
        if self.route_delay < lookahead:
            raise ValueError(
                f"route_delay {self.route_delay} below the kernel "
                f"lookahead {lookahead}: cross-shard forwards would "
                "be acausal")
        self.lease = (self.config.lease if self.config.lease is not None
                      else system.config.txn_timeout
                      + self.config.board_period)
        self.queues = {site: SiteQueue(self, site)
                       for site in system.sites}
        self.board = DepthBoard(self.queues)
        self.router = make_router(
            self.config.router, self.sim, list(system.sites),
            self.board, system.directory,
            # Live lookup, not a frozen set: sites may join later and
            # a crashed site's wiped cache still serves after refill.
            view_capable=lambda name: (
                name in system.sites
                and system.sites[name].views is not None))
        #: Every shed, in decision order (typed Overload results).
        #: Empty when ``retain_samples`` is off — use the sinks.
        self.overloads: list[Overload] = []
        #: Enqueue->decision life of every decided request. Empty when
        #: ``retain_samples`` is off — use the sinks.
        self.samples: list[ServeSample] = []
        #: Streaming consumers, called per decision/shed before (and
        #: regardless of) retention. Set before traffic starts.
        self.on_sample: Callable[[ServeSample], None] | None = None
        self.on_overload: Callable[[Overload], None] | None = None
        self.dispatched = 0
        self._running = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin the depth-board refresh chain (global barriers)."""
        if self._running:
            return
        self._running = True
        self.board.refresh()
        self.sim.at_global(self.sim.now + self.config.board_period,
                           self._refresh_board, label="serve:board")

    def stop(self) -> None:
        """Stop the refresh chain (the pending tick becomes a no-op)."""
        self._running = False

    def quiesce(self) -> int:
        """Stop everything: refuse new requests, shed queued backlog.

        In-flight transactions still decide on their own; returns the
        number of queued requests shed. Used at chaos settle so every
        dispatched transaction reaches a decision inside the settle
        window instead of trickling out of deep backlogs.
        """
        self.stop()
        return sum(queue.quiesce() for queue in self.queues.values())

    def _refresh_board(self) -> None:
        if not self._running:
            return
        self.board.refresh()
        self.sim.at_global(self.sim.now + self.config.board_period,
                           self._refresh_board, label="serve:board")

    # -- the submit protocol -------------------------------------------------

    def submit(self, site: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None
               ) -> Overload | None:
        """Route and enqueue one request arriving at *site*.

        Returns the :class:`Overload` when the request was shed
        immediately (same-site admission refusal); None otherwise —
        cross-site forwards decide admission after the route delay.
        """
        target = self.router.route(site, spec)
        if target == site:
            return self.queues[target].offer(spec, site, on_done)
        self.sim.at_site(
            target, self.sim.now + self.route_delay,
            lambda: self.queues[target].offer(spec, site, on_done),
            label=f"serve:route:{target}")
        return None

    # -- queue callbacks -----------------------------------------------------

    def record_shed(self, overload: Overload, origin: str) -> None:
        if self.on_overload is not None:
            self.on_overload(overload)
        if self.config.retain_samples:
            self.overloads.append(overload)
        self.collector.on_shed(at=overload.at)
        self.sim.metrics.counter("serve.shed", site=overload.site,
                                 reason=overload.reason).inc()
        obs = self.sim.obs
        if obs.enabled:
            obs.emit(ServeShed(t=overload.at, site=overload.site,
                               origin=origin, reason=overload.reason,
                               depth=overload.depth))

    def record_sample(self, sample: ServeSample) -> None:
        if self.on_sample is not None:
            self.on_sample(sample)
        if self.config.retain_samples:
            self.samples.append(sample)

    def note_dispatch(self) -> None:
        self.dispatched += 1
