"""Pluggable request routing for the serving front-end.

Three policies:

* **random** — uniform spray; the baseline every useful policy must
  beat. Draws come from a *per-origin-site* stream so routing is
  independent of shard execution order (worker-invariant).
* **least-queue** — join-the-shortest-queue over a :class:`DepthBoard`
  snapshot. Reading live cross-shard queue depths from inside a shard
  event would make routing depend on which shard ran first in the
  round, so the board is refreshed only at global barriers (a
  consistent cut) and every router reads the same, slightly stale,
  snapshot — bounded staleness buys determinism.
* **locality** — route to a directory owner of the transaction's
  first item (ties broken by board load). Owners hold the item's
  fragments, so the transaction usually commits locally instead of
  paying redistribution round trips — the paper's local-commit sweet
  spot turned into a routing policy.
* **view-aware** — locality routing that knows about the Π(b) view
  tier (docs/READS.md): a request made *entirely* of bounded-staleness
  view reads stays at its origin whenever the origin holds a view
  cache, because any view-capable site can certify the read from its
  cache in O(1) — forwarding it to a fragment owner buys nothing and
  pays a hop. Everything else (writes, full reads, mixed specs)
  routes exactly like **locality**.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Protocol

from repro.core.transactions import ReadViewOp, TransactionSpec
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.partition import Directory
    from repro.serving.queue import SiteQueue


class DepthBoard:
    """Barrier-refreshed snapshot of per-site queue load.

    ``snapshot[site]`` is queued + in-flight as of the last refresh;
    refreshes happen at global barriers so every shard reads the same
    numbers regardless of execution order.
    """

    def __init__(self, queues: dict[str, "SiteQueue"]) -> None:
        self._queues = queues
        self.snapshot: dict[str, int] = {site: 0 for site in queues}
        self.refreshes = 0

    @property
    def sites(self) -> list[str]:
        return list(self._queues)

    def refresh(self) -> None:
        self.snapshot = {site: queue.load
                         for site, queue in self._queues.items()}
        self.refreshes += 1

    def least_loaded(self, candidates: "tuple[str, ...] | list[str]",
                     prefer: str) -> str:
        """Lowest board load; ties prefer *prefer*, then site order."""
        snapshot = self.snapshot
        return min(candidates,
                   key=lambda site: (snapshot.get(site, 0),
                                     site != prefer, site))


class Router(Protocol):
    """Picks the site whose queue a request joins."""

    name: str

    def route(self, origin: str, spec: TransactionSpec) -> str: ...


class RandomRouter:
    name = "random"

    def __init__(self, sim: Simulator, sites: list[str]) -> None:
        self.sites = list(sites)
        # One stream per origin: route draws happen inside arrival
        # events on the origin's shard.
        self._rng: dict[str, random.Random] = {
            site: sim.rng.stream(f"serve:router:{site}")
            for site in sites}

    def route(self, origin: str, spec: TransactionSpec) -> str:
        return self._rng[origin].choice(self.sites)


class LeastQueueRouter:
    """JSQ with origin affinity against a stale board.

    Pure join-the-shortest-queue on a barrier-refreshed board herds:
    every site routes to the same minimum until the next refresh and
    that queue overflows. Keeping the request at its origin whenever
    the origin is within *slack* of the board minimum spreads load and
    only forwards when the origin is genuinely hot.
    """

    name = "least-queue"

    def __init__(self, board: DepthBoard, slack: int = 2) -> None:
        self.board = board
        self.slack = slack
        self._sites = board.sites

    def route(self, origin: str, spec: TransactionSpec) -> str:
        snapshot = self.board.snapshot
        least = min(snapshot.get(site, 0) for site in self._sites)
        if snapshot.get(origin, 0) <= least + self.slack:
            return origin
        return self.board.least_loaded(self._sites, prefer=origin)


class LocalityRouter:
    name = "locality"

    def __init__(self, board: DepthBoard, directory: "Directory") -> None:
        self.board = board
        self.directory = directory

    def route(self, origin: str, spec: TransactionSpec) -> str:
        items = spec.items()
        if not items:
            return origin
        # The first item in spec order anchors placement; multi-item
        # specs still gather their other fragments via redistribution.
        owners = self.directory.owners(min(items))
        if not owners:
            return origin
        return self.board.least_loaded(owners, prefer=origin)


class ViewAwareRouter:
    """Locality routing with an O(1) fast path for pure view reads."""

    name = "view-aware"

    def __init__(self, board: DepthBoard, directory: "Directory",
                 view_capable: Callable[[str], bool]) -> None:
        self.board = board
        self.directory = directory
        self.view_capable = view_capable
        self._fallback = LocalityRouter(board, directory)
        #: Pure view reads kept at a view-capable origin.
        self.kept_local = 0

    def route(self, origin: str, spec: TransactionSpec) -> str:
        pure_view = spec.ops and all(isinstance(op, ReadViewOp)
                                     for op in spec.ops)
        if pure_view and self.view_capable(origin):
            self.kept_local += 1
            return origin
        return self._fallback.route(origin, spec)


ROUTERS = ("random", "least-queue", "locality", "view-aware")


def make_router(name: str, sim: Simulator, sites: list[str],
                board: DepthBoard, directory: "Directory",
                view_capable: "Callable[[str], bool] | None" = None
                ) -> Router:
    if name == "random":
        return RandomRouter(sim, sites)
    if name == "least-queue":
        return LeastQueueRouter(board)
    if name == "locality":
        return LocalityRouter(board, directory)
    if name == "view-aware":
        return ViewAwareRouter(board, directory,
                               view_capable or (lambda _site: False))
    raise ValueError(f"unknown router {name!r}; choose from {ROUTERS}")
