"""The network: site registry, routing, partitions, failure injection."""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable

from repro.net.link import Link, LinkConfig
from repro.net.message import Envelope
from repro.net.outbox import BundlingConfig, Outbox, _OpenBundle
from repro.obs.events import (
    NetBundle,
    NetDeliver,
    NetDropLoss,
    NetDropPartition,
    NetSend,
)
from repro.sim.kernel import Simulator

Handler = Callable[[Envelope], None]


class Network:
    """Connects named sites with failure-prone point-to-point links.

    Sites register a delivery handler. :meth:`send` consults the
    partition map and the directed link, then either drops the message
    silently (the paper's model: no failure notifications, ever) or
    schedules delivery after the link's sampled delay.
    """

    def __init__(self, sim: Simulator,
                 default_link: LinkConfig | None = None,
                 bundling: BundlingConfig | None = None) -> None:
        self.sim = sim
        self.default_link = default_link or LinkConfig()
        self._handlers: dict[str, Handler] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._groups: dict[str, int] = {}
        self._up: dict[str, bool] = {}
        self.sent_counts: Counter[str] = Counter()
        self.delivered_counts: Counter[str] = Counter()
        # Drop accounting lives in the simulation's metrics registry
        # (docs/OBSERVABILITY.md); the dropped_* properties below are
        # compatibility views over these counters.
        self._obs = sim.obs
        self._c_dropped_partition = sim.metrics.counter(
            "net.dropped.partition")
        self._c_dropped_loss = sim.metrics.counter("net.dropped.loss")
        self._c_sent = sim.metrics.counter("net.sent")
        self._c_delivered = sim.metrics.counter("net.delivered")
        # Transport bundling (repro.net.outbox): when enabled, send()
        # routes payloads through per-(src, dst) outboxes and net.sent /
        # net.delivered count real envelopes (bundles) while the
        # per-kind sent_counts / delivered_counts keep counting logical
        # payloads. None (the default) keeps the one-envelope-per-send
        # path below byte-for-byte untouched.
        self._outbox: Outbox | None = None
        self._h_bundle_size = None
        if bundling is not None:
            self._outbox = Outbox(self, bundling)
            self._h_bundle_size = sim.metrics.histogram("net.bundle.size")

    @property
    def bundling(self) -> BundlingConfig | None:
        """The active bundling configuration (None = disabled)."""
        return self._outbox.config if self._outbox is not None else None

    # -- topology ---------------------------------------------------------

    @property
    def sites(self) -> list[str]:
        return list(self._handlers)

    def register(self, name: str, handler: Handler) -> None:
        """Attach a site; *handler* receives each delivered envelope."""
        if name in self._handlers:
            raise ValueError(f"site {name!r} already registered")
        self._handlers[name] = handler
        self._groups[name] = 0
        self._up[name] = True

    def replace_handler(self, name: str, handler: Handler) -> None:
        """Swap a site's delivery handler (used when a site restarts)."""
        if name not in self._handlers:
            raise KeyError(name)
        self._handlers[name] = handler

    def link(self, src: str, dst: str) -> Link:
        """The directed link src->dst, created on first use."""
        key = (src, dst)
        if key not in self._links:
            rng = self.sim.rng.stream(f"link:{src}->{dst}")
            self._links[key] = Link(src, dst, self.default_link, rng)
            self._register_link_gauges(self._links[key])
        return self._links[key]

    def _register_link_gauges(self, link: Link) -> None:
        """Expose the link's own counters through the metrics registry."""
        for name in ("transmissions", "losses", "duplicates"):
            self.sim.metrics.gauge(
                f"link.{name}", link.counter_reader(name),
                src=link.src, dst=link.dst)

    def configure_link(self, src: str, dst: str, config: LinkConfig) -> None:
        """Override one directed link's behaviour."""
        rng = self.sim.rng.stream(f"link:{src}->{dst}")
        self._links[(src, dst)] = Link(src, dst, config, rng)
        self._register_link_gauges(self._links[(src, dst)])

    def configure_all_links(self, config: LinkConfig) -> None:
        """Set the default and reset every existing link to *config*."""
        self.default_link = config
        for (src, dst) in list(self._links):
            self.configure_link(src, dst, config)

    def delay_lower_bound(self) -> float:
        """The least delay any message on any link can have.

        The sharded kernel's conservative lookahead (repro.sim.shard)
        must lower-bound every cross-shard delivery delay; since any
        link may cross a shard boundary, the network-wide minimum over
        the default and every explicitly configured link is the safe
        bound.
        """
        bound = self.default_link.delay_lower_bound
        for link in self._links.values():
            bound = min(bound, link.config.delay_lower_bound)
        return bound

    # -- scripted link faults (chaos engine) ------------------------------

    def inject_link_fault(self, src: str, dst: str,
                          config: LinkConfig) -> None:
        """Shadow the directed link src->dst with *config* until cleared.

        Unlike :meth:`configure_link` this never replaces the link
        object (its RNG stream and counters continue), so a fault
        window composes cleanly with replay: the same seed makes the
        same draws, only the thresholds differ inside the window.
        """
        self.link(src, dst).inject_fault(config)

    def clear_link_fault(self, src: str, dst: str) -> None:
        key = (src, dst)
        if key in self._links:
            self._links[key].clear_fault()

    def clear_all_link_faults(self) -> None:
        """Lift every injected fault window (chaos settle phase)."""
        for link in self._links.values():
            link.clear_fault()
            link.restore()

    # -- liveness registry -------------------------------------------------

    def note_down(self, name: str) -> None:
        """Record that *name* crashed (called from the site itself).

        Planning-only input: the transport semantics are unchanged — a
        message to a down site is still silently dropped, never
        reported. Consumers (the rebalance daemon) use it to avoid
        *choosing* to ship value at a site known to be dead, standing
        in for the failure detector a deployment would run out of band.
        """
        if name in self._handlers:
            self._up[name] = False

    def note_up(self, name: str) -> None:
        """Record that *name* recovered."""
        if name in self._handlers:
            self._up[name] = True

    def is_up(self, name: str) -> bool:
        """Last known liveness of *name* (unknown sites default to up)."""
        return self._up.get(name, True)

    # -- partitions -------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network; sites in different groups cannot talk.

        Unlisted sites land in an implicit final group together.
        """
        assignment: dict[str, int] = {}
        group_id = 0
        for group_id, group in enumerate(groups):
            for name in group:
                if name not in self._handlers:
                    raise KeyError(f"unknown site {name!r}")
                if name in assignment:
                    raise ValueError(f"site {name!r} in two groups")
                assignment[name] = group_id
        leftover = group_id + 1
        for name in self._handlers:
            assignment.setdefault(name, leftover)
        self._groups = assignment

    def heal(self) -> None:
        """Undo any partition; all sites reachable again."""
        self._groups = {name: 0 for name in self._handlers}

    def reachable(self, src: str, dst: str) -> bool:
        return self._groups.get(src) == self._groups.get(dst)

    @property
    def partitioned(self) -> bool:
        return len(set(self._groups.values())) > 1

    def group_of(self, name: str) -> int:
        return self._groups[name]

    # -- transport --------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any) -> None:
        """Send *payload* from *src* to *dst*; may silently drop it."""
        if dst not in self._handlers:
            raise KeyError(f"unknown destination {dst!r}")
        if self._outbox is not None:
            kind = type(payload).__name__
            self.sent_counts[kind] += 1
            if self._obs.enabled:
                self._obs.emit(NetSend(t=self.sim.now, src=src, dst=dst,
                                       payload=kind))
            self._outbox.enqueue(src, dst, payload)
            return
        envelope = Envelope(src, dst, payload, sent_at=self.sim.now)
        self.sent_counts[envelope.kind()] += 1
        self._c_sent.value += 1
        obs = self._obs
        if obs.enabled:
            obs.emit(NetSend(t=self.sim.now, src=src, dst=dst,
                             payload=envelope.kind()))
        # The link's loss draw is sampled unconditionally (so a
        # partition window never shifts the stream), but a message
        # dropped by both the partition AND the sampled loss is counted
        # exactly once, with the partition taking precedence:
        # dropped_partition + dropped_loss + deliveries-scheduled always
        # equals sends.
        link = self.link(src, dst)
        lost = link.should_drop()
        if not self.reachable(src, dst):
            self._c_dropped_partition.value += 1
            if obs.enabled:
                obs.emit(NetDropPartition(t=self.sim.now, src=src, dst=dst,
                                          payload=envelope.kind()))
            return
        if lost:
            self._c_dropped_loss.value += 1
            if obs.enabled:
                obs.emit(NetDropLoss(t=self.sim.now, src=src, dst=dst,
                                     payload=envelope.kind()))
            return
        self._schedule_delivery(envelope, link.draw_delay())
        if link.should_duplicate():
            duplicate = Envelope(src, dst, payload, sent_at=self.sim.now,
                                 duplicated=True)
            self._schedule_delivery(duplicate, link.draw_delay())

    def broadcast(self, src: str, payload: Any,
                  dsts: Iterable[str] | None = None) -> None:
        """Send *payload* to every other site (or to *dsts*)."""
        targets = list(dsts) if dsts is not None else [
            name for name in self._handlers if name != src]
        for dst in targets:
            self.send(src, dst, payload)

    def _schedule_delivery(self, envelope: Envelope, delay: float) -> None:
        def deliver() -> None:
            # Re-check reachability at delivery time: a partition that
            # strikes while the message is in flight swallows it.
            if not self.reachable(envelope.src, envelope.dst):
                self._c_dropped_partition.value += 1
                if self._obs.enabled:
                    self._obs.emit(NetDropPartition(
                        t=self.sim.now, src=envelope.src, dst=envelope.dst,
                        payload=envelope.kind()))
                return
            self.delivered_counts[envelope.kind()] += 1
            self._c_delivered.value += 1
            if self._obs.enabled:
                self._obs.emit(NetDeliver(
                    t=self.sim.now, src=envelope.src, dst=envelope.dst,
                    payload=envelope.kind()))
            self._handlers[envelope.dst](envelope)

        # Routed to the destination's shard when the simulation is
        # sharded (repro.sim.shard): delivery events mutate receiver
        # state, and the link's delay lower bound is exactly what the
        # sharded kernel's lookahead is derived from.
        self.sim.after_for_site(envelope.dst, delay, deliver,
                                label=f"deliver:{envelope.kind()}:"
                                      f"{envelope.src}->{envelope.dst}")

    def _deliver_bundle(self, open_bundle: _OpenBundle,
                        duplicated: bool) -> None:
        """Deliver one bundle: unpack payloads in enqueue order.

        The bundle is one real envelope, so the in-flight partition
        check swallows it whole (one ``net.dropped.partition``) and a
        successful delivery counts once in ``net.delivered``; the
        receiver's handler then runs once per logical payload, each
        wrapped in a fresh :class:`Envelope` stamped with the bundle's
        open time.
        """
        src, dst = open_bundle.src, open_bundle.dst
        payloads = open_bundle.bundle.payloads
        now = self.sim.now
        if not self.reachable(src, dst):
            self._c_dropped_partition.value += 1
            if self._obs.enabled:
                self._obs.emit(NetDropPartition(
                    t=now, src=src, dst=dst,
                    payload=type(payloads[0]).__name__))
            return
        self._c_delivered.value += 1
        self._h_bundle_size.observe(len(payloads))
        if self._obs.enabled:
            self._obs.emit(NetBundle(t=now, src=src, dst=dst,
                                     size=len(payloads)))
        handler = self._handlers[dst]
        for payload in payloads:
            kind = type(payload).__name__
            self.delivered_counts[kind] += 1
            if self._obs.enabled:
                self._obs.emit(NetDeliver(t=now, src=src, dst=dst,
                                          payload=kind))
            handler(Envelope(src, dst, payload,
                             sent_at=open_bundle.opened_at,
                             duplicated=duplicated))

    # -- metrics ----------------------------------------------------------

    @property
    def dropped_partition(self) -> int:
        """Messages swallowed by a partition (registry-backed view)."""
        return self._c_dropped_partition.value

    @property
    def dropped_loss(self) -> int:
        """Messages lost to the link's sampled loss (registry-backed)."""
        return self._c_dropped_loss.value

    @property
    def total_sent(self) -> int:
        return sum(self.sent_counts.values())

    @property
    def total_delivered(self) -> int:
        return sum(self.delivered_counts.values())
