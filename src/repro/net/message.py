"""Message envelopes.

The network layer moves opaque *payloads* between named sites inside an
:class:`Envelope` that records routing metadata. Protocol payloads (data
requests, Vm transfers, 2PC votes, ...) are defined by the layers that
use them; the network neither inspects nor depends on payload types.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_envelope_ids = itertools.count(1)


@dataclass
class Envelope:
    """One message in flight from *src* to *dst*.

    ``envelope_id`` identifies the physical transmission (a retransmitted
    or duplicated message gets a fresh envelope); end-to-end identity
    lives inside the payload (e.g. a Vm sequence number).
    """

    src: str
    dst: str
    payload: Any
    sent_at: float = 0.0
    envelope_id: int = field(default_factory=lambda: next(_envelope_ids))
    duplicated: bool = False

    def kind(self) -> str:
        """Short payload type name, used for metrics."""
        return type(self.payload).__name__
