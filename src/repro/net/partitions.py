"""Scheduled partition failures.

A :class:`PartitionSchedule` is a timeline of split/heal events; the
:class:`PartitionScheduler` arms them on the simulator. Experiments E1,
E2 and E5 drive their failure injection through this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.network import Network
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class PartitionEvent:
    """One change of connectivity at a point in virtual time."""

    time: float
    groups: tuple[tuple[str, ...], ...] | None  # None means "heal"

    @property
    def heals(self) -> bool:
        return self.groups is None


@dataclass
class PartitionSchedule:
    """An ordered list of partition events."""

    events: list[PartitionEvent] = field(default_factory=list)

    def split_at(self, time: float,
                 groups: list[list[str]]) -> "PartitionSchedule":
        frozen = tuple(tuple(group) for group in groups)
        self.events.append(PartitionEvent(time, frozen))
        return self

    def heal_at(self, time: float) -> "PartitionSchedule":
        self.events.append(PartitionEvent(time, None))
        return self

    @classmethod
    def window(cls, start: float, end: float,
               groups: list[list[str]]) -> "PartitionSchedule":
        """A single partition lasting from *start* to *end*."""
        if end < start:
            raise ValueError("partition must end after it starts")
        return cls().split_at(start, groups).heal_at(end)


class PartitionScheduler:
    """Arms a schedule's events on the simulator."""

    def __init__(self, sim: Simulator, network: Network,
                 schedule: PartitionSchedule) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self.applied: list[PartitionEvent] = []

    def install(self) -> None:
        """Schedule every event; call once before running."""
        for event in self.schedule.events:
            self.sim.at(event.time, self._make_action(event),
                        label=f"partition@{event.time}")

    def _make_action(self, event: PartitionEvent):
        def apply() -> None:
            if event.heals:
                self.network.heal()
            else:
                self.network.partition(list(event.groups or ()))
            self.applied.append(event)
        return apply
