"""Network substrate: failure-prone links, partitions, ordered broadcast.

The fault model follows the paper exactly: links may lose, delay,
duplicate, or reorder messages, and may fail outright; sites may crash;
the network may partition into groups that cannot communicate. There is
no Byzantine behaviour and no partition *detection* — sites only ever
observe timeouts.
"""

from repro.net.link import Link, LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.net.outbox import BundleEnvelope, BundlingConfig, Outbox
from repro.net.partitions import PartitionSchedule, PartitionScheduler
from repro.net.sync import SynchronousNetwork

__all__ = [
    "BundleEnvelope",
    "BundlingConfig",
    "Envelope",
    "Link",
    "LinkConfig",
    "Network",
    "Outbox",
    "PartitionSchedule",
    "PartitionScheduler",
    "SynchronousNetwork",
]
