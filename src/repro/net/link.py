"""Point-to-point links with configurable failure behaviour."""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkConfig:
    """Behavioural parameters of a directed link.

    Delay is ``base_delay`` plus a uniform jitter in
    ``[0, jitter]``; jitter > 0 lets messages reorder. Loss and
    duplication are i.i.d. per transmission — the paper's Vm machinery
    must mask all of this.
    """

    base_delay: float = 1.0
    jitter: float = 0.0
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0

    @property
    def delay_lower_bound(self) -> float:
        """The least delay any transmission on this link can have.

        Jitter only adds to ``base_delay``, so the base is the bound.
        This is what the sharded kernel's conservative lookahead is
        derived from (docs/PARALLEL.md): no cross-site message can
        arrive sooner than the minimum bound over the links that cross
        a shard boundary.
        """
        return self.base_delay

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss_probability must be within [0, 1]")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be within [0, 1]")


class Link:
    """A directed link; decides each transmission's fate."""

    def __init__(self, src: str, dst: str, config: LinkConfig,
                 rng: random.Random) -> None:
        self.src = src
        self.dst = dst
        self.config = config
        self._rng = rng
        self._fault: LinkConfig | None = None
        self.up = True
        self.transmissions = 0
        self.losses = 0
        self.duplicates = 0

    def fail(self) -> None:
        """Take the link down; messages sent while down vanish."""
        self.up = False

    def restore(self) -> None:
        self.up = True

    # -- scripted faults (chaos engine) -----------------------------------

    @property
    def active_config(self) -> LinkConfig:
        """The behaviour in force: an injected fault shadows the base."""
        return self._fault if self._fault is not None else self.config

    @property
    def faulted(self) -> bool:
        return self._fault is not None

    def inject_fault(self, config: LinkConfig) -> None:
        """Shadow the base config (loss/duplication/jitter windows).

        The RNG stream is untouched — a fault window changes only the
        probabilities each draw is compared against, so clearing the
        fault returns the link to its exact base behaviour.
        """
        self._fault = config

    def clear_fault(self) -> None:
        self._fault = None

    # -- observability ------------------------------------------------------

    def counter_reader(self, name: str):
        """A zero-cost read hook for one of this link's counters.

        The network registers these as gauges in the simulation's
        metrics registry, so per-link transmission/loss/duplicate
        counts are queryable without the link paying any per-send
        bookkeeping beyond the plain attributes it already keeps.
        """
        if name not in ("transmissions", "losses", "duplicates"):
            raise KeyError(f"unknown link counter {name!r}")
        return lambda: getattr(self, name)

    # -- per-transmission fate --------------------------------------------

    def draw_delay(self) -> float:
        """Sample this transmission's latency."""
        config = self.active_config
        if config.jitter == 0:
            return config.base_delay
        return config.base_delay + self._rng.uniform(0.0, config.jitter)

    def should_drop(self) -> bool:
        """Decide loss for one transmission (counts it either way).

        The loss draw is taken even while the link is down so that a
        down window never perturbs the draws made after it: replaying
        the same seed with and without the window keeps every later
        transmission's fate aligned.
        """
        self.transmissions += 1
        lost = self._rng.random() < self.active_config.loss_probability
        if not self.up:
            self.losses += 1
            return True
        if lost:
            self.losses += 1
            return True
        return False

    def should_duplicate(self) -> bool:
        """Decide whether this delivery is accompanied by a duplicate."""
        if self._rng.random() < self.active_config.duplicate_probability:
            self.duplicates += 1
            return True
        return False
