"""Per-destination outboxes: coalescing payloads into bundles.

Section 4.2 lets *any number* of real messages carry a Vm, and lets one
real message carry many — cumulative acks are "piggybacked onto regular
messages". This module takes the second half literally: every payload a
site sends to the same destination within one *flush window* travels in
a single real envelope (a :class:`BundleEnvelope`), which pays for one
loss draw, one delay draw, one duplicate draw, and — the currency the
benchmarks actually measure — one kernel delivery event.

The bundle *grows in place*: the first payload toward an idle (src, dst)
pair opens a bundle, draws its transport fate immediately (in exactly
the order ``Network.send`` draws it for a single message, so RNG streams
are consumed identically), and schedules the one delivery event at
``open_time + flush_delay + drawn_delay``. Payloads enqueued before the
bundle departs (``now <= open_time + flush_delay``) simply append to the
open bundle's payload list — no extra kernel event, no rescheduling.
With the default ``flush_delay=0`` only same-instant payloads coalesce,
so a lone send behaves exactly like the unbundled transport.

Fate is atomic per bundle: a bundle that loses its loss draw, opens into
a partition, or hits a partition mid-flight drops *whole*, counted once
in ``net.dropped.*``. A doomed bundle still absorbs payloads until its
departure time passes — they all drop together, exactly as if one big
message was lost. Vm semantics are untouched either way: create/accept
log records define a Vm's existence, envelopes are only carriers, and
retransmission re-offers whatever a dropped bundle carried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.events import NetDropLoss, NetDropPartition

if TYPE_CHECKING:
    from repro.net.network import Network


@dataclass(frozen=True)
class BundlingConfig:
    """Transport batching knobs.

    *flush_delay* is how long (in virtual time) a bundle stays open
    after its first payload: 0.0 coalesces only payloads enqueued at the
    same virtual instant (single-message behaviour is then identical to
    the unbundled transport); larger values trade added latency for
    bigger bundles and fewer real messages.
    """

    flush_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.flush_delay < 0:
            raise ValueError("flush_delay must be >= 0")


@dataclass
class BundleEnvelope:
    """The payloads one real envelope carries, in enqueue order."""

    payloads: list[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.payloads)


@dataclass
class _OpenBundle:
    """A bundle still accepting payloads (or doomed and absorbing them)."""

    src: str
    dst: str
    opened_at: float
    departs_at: float
    bundle: BundleEnvelope
    doomed: bool = False
    closed: bool = False


class Outbox:
    """Coalesces each (src, dst) pair's same-window payloads.

    Owned by :class:`~repro.net.network.Network` when bundling is
    enabled; ``Network.send`` routes payloads here instead of building
    one envelope each. The outbox reuses the network's links, partition
    map, and drop counters so the fault model and its accounting stay in
    one place.
    """

    def __init__(self, network: "Network", config: BundlingConfig) -> None:
        self._network = network
        self.config = config
        self._open: dict[tuple[str, str], _OpenBundle] = {}

    def enqueue(self, src: str, dst: str, payload: Any) -> None:
        """Add *payload* to the open bundle toward *dst*, or open one."""
        now = self._network.sim.now
        key = (src, dst)
        open_bundle = self._open.get(key)
        if open_bundle is not None and (open_bundle.closed
                                        or now > open_bundle.departs_at):
            # Delivered, or a doomed bundle whose window lapsed.
            del self._open[key]
            open_bundle = None
        if open_bundle is not None:
            open_bundle.bundle.payloads.append(payload)
            return
        self._open[key] = self._dispatch(src, dst, payload, now)

    def _dispatch(self, src: str, dst: str, payload: Any,
                  now: float) -> _OpenBundle:
        """Open a bundle: draw its fate once, schedule its one delivery.

        The draw order matches ``Network.send`` for a single message —
        loss sampled unconditionally, partition taking precedence in the
        drop accounting, delay then duplicate only for survivors — so
        enabling bundling never shifts a link's RNG stream.
        """
        net = self._network
        open_bundle = _OpenBundle(src, dst, opened_at=now,
                                  departs_at=now + self.config.flush_delay,
                                  bundle=BundleEnvelope([payload]))
        kind = type(payload).__name__
        net._c_sent.value += 1  # one real envelope, whatever its fate
        link = net.link(src, dst)
        lost = link.should_drop()
        obs = net._obs
        if not net.reachable(src, dst):
            open_bundle.doomed = True
            net._c_dropped_partition.value += 1
            if obs.enabled:
                obs.emit(NetDropPartition(t=now, src=src, dst=dst,
                                          payload=kind))
            return open_bundle
        if lost:
            open_bundle.doomed = True
            net._c_dropped_loss.value += 1
            if obs.enabled:
                obs.emit(NetDropLoss(t=now, src=src, dst=dst, payload=kind))
            return open_bundle
        self._schedule(open_bundle, kind,
                       self.config.flush_delay + link.draw_delay(),
                       duplicated=False)
        if link.should_duplicate():
            self._schedule(open_bundle, kind,
                           self.config.flush_delay + link.draw_delay(),
                           duplicated=True)
        return open_bundle

    def _schedule(self, open_bundle: _OpenBundle, kind: str, delay: float,
                  duplicated: bool) -> None:
        net = self._network

        def deliver() -> None:
            # First delivery (original or link duplicate) closes the
            # bundle: later same-instant payloads must open a fresh one
            # rather than append to a list already handed out.
            self._close(open_bundle)
            net._deliver_bundle(open_bundle, duplicated)

        # Shard-routed like the unbundled transport: the delivery event
        # runs on the destination's shard (see Network._schedule_delivery).
        net.sim.after_for_site(open_bundle.dst, delay, deliver,
                               label=f"deliver:{kind}:"
                                     f"{open_bundle.src}->{open_bundle.dst}")

    def _close(self, open_bundle: _OpenBundle) -> None:
        open_bundle.closed = True
        key = (open_bundle.src, open_bundle.dst)
        if self._open.get(key) is open_bundle:
            del self._open[key]
