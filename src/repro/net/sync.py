"""Order-synchronous network mode required by Conc2 (Section 6.2).

The paper's two-phase-locking scheme is only sound when the network
guarantees *message-order synchronicity*: if site k receives m_i (from
s_i) before m_j (from s_j), then m_i was sent earlier in real time, with
simultaneous sends tie-broken by a total order on sites — and broadcasts
are atomic (no partial failure while sending).

We realize those axioms with a constant network delay and a delivery
priority derived from (send time, sender rank, send sequence): every
receiver then observes all broadcasts in the same global order.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.net.link import LinkConfig
from repro.net.message import Envelope
from repro.net.network import Network
from repro.obs.events import NetDeliver, NetDropPartition, NetSend
from repro.sim.kernel import Simulator


class SynchronousNetwork(Network):
    """A lossless, constant-delay network with totally ordered delivery."""

    def __init__(self, sim: Simulator, delay: float = 1.0) -> None:
        super().__init__(sim, LinkConfig(base_delay=delay, jitter=0.0))
        self.delay = delay
        self._site_rank: dict[str, int] = {}
        self._send_seq = 0

    def register(self, name: str, handler) -> None:
        super().register(name, handler)
        # Rank by registration order: the paper's "total order on sites".
        self._site_rank[name] = len(self._site_rank)

    def send(self, src: str, dst: str, payload: Any) -> None:
        """Constant-delay, loss-free, priority-ordered delivery."""
        if dst not in self._handlers:
            raise KeyError(f"unknown destination {dst!r}")
        envelope = Envelope(src, dst, payload, sent_at=self.sim.now)
        self.sent_counts[envelope.kind()] += 1
        self._c_sent.inc()
        if self._obs.enabled:
            self._obs.emit(NetSend(t=self.sim.now, src=src, dst=dst,
                                   payload=envelope.kind()))
        if not self.reachable(src, dst):
            # Partitions are outside Conc2's assumptions, but the mode is
            # still usable under them so E10 can demonstrate the unsoundness.
            self._c_dropped_partition.inc()
            if self._obs.enabled:
                self._obs.emit(NetDropPartition(
                    t=self.sim.now, src=src, dst=dst,
                    payload=envelope.kind()))
            return
        self._send_seq += 1
        priority = self._site_rank[src]

        def deliver() -> None:
            if not self.reachable(envelope.src, envelope.dst):
                self._c_dropped_partition.inc()
                if self._obs.enabled:
                    self._obs.emit(NetDropPartition(
                        t=self.sim.now, src=envelope.src, dst=envelope.dst,
                        payload=envelope.kind()))
                return
            self.delivered_counts[envelope.kind()] += 1
            self._c_delivered.inc()
            if self._obs.enabled:
                self._obs.emit(NetDeliver(
                    t=self.sim.now, src=envelope.src, dst=envelope.dst,
                    payload=envelope.kind()))
            self._handlers[envelope.dst](envelope)

        # Equal delay keeps send order and arrival order identical;
        # priority breaks simultaneous sends by sender rank at EVERY
        # receiver, which yields the common global order Conc2 needs.
        # Site-routed for shard placement, like the async transport.
        self.sim.at_site(dst, self.sim.now + self.delay, deliver,
                         priority=priority,
                         label=f"sync-deliver:{envelope.kind()}:{src}->{dst}")

    def broadcast(self, src: str, payload: Any,
                  dsts: Iterable[str] | None = None) -> None:
        """Atomic broadcast: all sends happen at one instant, same rank."""
        targets = list(dsts) if dsts is not None else [
            name for name in self._handlers if name != src]
        for dst in targets:
            self.send(src, dst, payload)
