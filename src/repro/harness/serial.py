"""Serializability checking "subject to redistribution" (Section 6).

The scheme's correctness criterion: the *values* of data items behave
as if the committed real transactions ran serially; only the
distribution of fragments may differ. For counter-like domains this has
two checkable consequences:

1. replaying committed transactions' semantic deltas in commit order
   reproduces the final logical value of every item (conservation
   already implies this; it pins the replay machinery), and
2. every committed full read returns the replayed logical value of the
   item at its commit instant, minus at most the value that was still
   in transmission (the paper's N_M term) at that instant — the read
   protocol drains fragments, but the paper's serial executions
   explicitly allow leftover Vm to be active ("with no harm done"), so
   a read may lawfully miss exactly that in-flight portion and must
   never over-report. (Reproduction finding: the strict
   reads-see-everything property does NOT hold for the paper's
   protocol; the N_M-banded property does.)

Commit order is a valid serialization order here because each
transaction commits atomically at a single site by forcing one log
record: the commit instants totally order the transactions, and a
transaction only observes value that was already committed (fragments)
or created by earlier-committed transactions (Vm).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.domain import Domain
from repro.core.transactions import TxnResult


@dataclass
class SerializabilityReport:
    """Outcome of the replay check."""

    transactions_replayed: int
    reads_checked: int
    read_mismatches: list[tuple[str, str, Any, Any]] = field(
        default_factory=list)  # (txn, item, observed, replayed)
    negative_dips: list[tuple[str, str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.read_mismatches and not self.negative_dips


def check_serializable(results: list[TxnResult],
                       initial_totals: dict[str, Any],
                       domains: dict[str, Domain]) -> SerializabilityReport:
    """Replay committed results in commit order; verify reads and
    non-negativity of every logical value along the way."""
    # Transactions that commit at the same virtual instant form a tie
    # group: they cannot have communicated across sites within the
    # group (links have positive delay), but a same-site pair can be
    # causally ordered (lock release cascades run in zero time). A
    # read tied with updates may therefore lawfully observe any value
    # between the group's pre-state and post-state; order *between*
    # groups is strict.
    committed = sorted((result for result in results if result.committed),
                       key=lambda result: result.finished_at)
    totals = dict(initial_totals)
    report = SerializabilityReport(transactions_replayed=len(committed),
                                   reads_checked=0)
    index = 0
    while index < len(committed):
        group_end = index
        instant = committed[index].finished_at
        while group_end < len(committed) and \
                committed[group_end].finished_at == instant:
            group_end += 1
        group = committed[index:group_end]
        before = dict(totals)
        for result in group:
            for item, sign, amount in result.semantic_deltas:
                domain = domains[item]
                if sign > 0:
                    totals[item] = domain.combine(totals[item], amount)
                else:
                    if not domain.covers(totals[item], amount):
                        report.negative_dips.append(
                            (result.txn_id, item, amount))
                        continue
                    totals[item] = domain.subtract(totals[item], amount)
        for result in group:
            for item, observed in result.read_values.items():
                report.reads_checked += 1
                domain = domains[item]
                # Upper bound: everything committed up to and including
                # this instant. Lower bound: the pre-group state minus
                # whatever was still in transmission (N_M) at commit —
                # the paper's read protocol cannot see in-flight value.
                high = max(before[item], totals[item]) \
                    if isinstance(totals[item], int) \
                    else totals[item]
                slack = result.inflight_at_commit.get(item, domain.zero())
                base = min(before[item], totals[item]) \
                    if isinstance(totals[item], int) else before[item]
                low = domain.subtract(base, slack) \
                    if domain.covers(base, slack) else domain.zero()
                in_band = (domain.covers(high, observed)
                           and domain.covers(observed, low))
                if not in_band:
                    report.read_mismatches.append(
                        (result.txn_id, item, observed, totals[item]))
        index = group_end
    return report
