"""Driver behind ``python -m repro chaos`` — budgeted schedule search
with optional shrinking and replayable repro artifacts.

Two modes:

* **explore** (default): sample ``--budget`` fault plans from the
  grammar, judge each against the three oracles, and print a
  deterministic report (same ``(budget, seed, config)`` → byte-identical
  stdout, ending in the exploration digest). With ``--shrink`` every
  failure is delta-debugged to a locally-minimal plan and frozen as a
  ``dvp-chaos-repro/1`` JSON artifact under ``--repro-dir``.

* **replay** (``--replay PATH``): re-execute a frozen artifact
  bit-identically and report whether the failure still reproduces.
  Exit status follows the *current* verdict: 0 when the run is clean
  (the bug is fixed), 1 when oracles still fail.

``--inject {write,crash,view-staleness}`` arms a test-only injection
for the duration of the command — the self-test proving the oracles
catch real bugs. ``write``/``crash`` leak conservation in
:mod:`repro.core.fragments`; ``view-staleness`` makes the Π(b) view
service republish stale snapshots as fresh
(:mod:`repro.reads.views`), which the view oracle must convict.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.chaos import (
    TRACE_TAIL_EVENTS,
    ChaosConfig,
    ReproArtifact,
    default_name,
    explore,
    reshard_grammar,
    shrink,
)
from repro.chaos.artifact import arm_injection, disarm_injection

#: Shrinking is ~100 runs per failure; bound the work per invocation.
MAX_SHRINKS = 5


def config_from_args(args) -> ChaosConfig:
    return ChaosConfig(sites=args.sites, items=args.items,
                       txns=args.txns, duration=args.duration,
                       txn_timeout=args.timeout,
                       rebalance=getattr(args, "rebalance", None),
                       rebalance_period=getattr(args, "rebalance_period",
                                                6.0),
                       bundle_flush_delay=getattr(args, "bundle_delay",
                                                  None),
                       partitioner=getattr(args, "partitioner", "all"),
                       replicas=getattr(args, "replicas", None),
                       serving=getattr(args, "serving", None),
                       serving_max_depth=getattr(args, "serving_depth", 8),
                       serving_max_inflight=getattr(
                           args, "serving_inflight", 2),
                       views=getattr(args, "views", None),
                       view_refresh=getattr(args, "view_refresh", 4.0))


def explore_main(args, out: "TextIO | None" = None) -> int:
    """Explore (and optionally shrink); return a process exit code."""
    out = out if out is not None else sys.stdout
    config = config_from_args(args)
    previous = arm_injection(args.inject)
    try:
        grammar = (reshard_grammar() if getattr(args, "reshard", False)
                   else None)
        report = explore(config, budget=args.budget,
                         master_seed=args.seed, grammar=grammar)
        print(report.describe(), file=out)
        if report.ok:
            return 0
        if not args.shrink:
            print("(rerun with --shrink to minimize and write repro "
                  "artifacts)", file=out)
            return 1
        shrunk = 0
        for case in report.failures[:MAX_SHRINKS]:
            result = shrink(config, case.plan, case.seed)
            shrunk += 1
            print(f"shrink plan #{case.index}: {len(case.plan)} -> "
                  f"{len(result.minimal)} actions "
                  f"({result.runs} runs, oracles "
                  f"{sorted(result.target_oracles)})", file=out)
            for line in result.minimal.describe().splitlines():
                print(f"  {line}", file=out)
            artifact = ReproArtifact(
                seed=case.seed, config=config, plan=result.minimal,
                injection=args.inject,
                failures=result.final.failures if result.final else {},
                note=f"explore seed={args.seed} plan #{case.index}, "
                     f"shrunk from {len(case.plan)} actions")
            # Exploration and shrinking run untraced (speed); one extra
            # replay of the minimal plan captures the trace tail the
            # artifact embeds so the frozen repro explains itself.
            traced = artifact.replay(trace_limit=TRACE_TAIL_EVENTS)
            artifact.trace_tail = traced.trace_tail
            path = artifact.write(
                f"{args.repro_dir}/{default_name(artifact)}")
            print(f"  repro written: {path}", file=out)
        dropped = len(report.failures) - shrunk
        if dropped > 0:
            print(f"({dropped} further failing plan(s) not shrunk; "
                  f"raise MAX_SHRINKS or shrink by hand)", file=out)
        return 1
    finally:
        disarm_injection(previous)


def replay_main(args, out: "TextIO | None" = None) -> int:
    """Replay one frozen artifact; exit 1 iff it still fails."""
    out = out if out is not None else sys.stdout
    artifact = ReproArtifact.load(args.replay)
    print(f"replaying {args.replay}", file=out)
    print(f"  seed={artifact.seed} actions={len(artifact.plan)} "
          f"injection={artifact.injection or 'none'}", file=out)
    if artifact.note:
        print(f"  note: {artifact.note}", file=out)
    trace_limit = TRACE_TAIL_EVENTS if artifact.trace_tail else 0
    result = artifact.replay(trace_limit=trace_limit)
    print(f"  {result.summary()}", file=out)
    if artifact.trace_tail:
        verdict = ("matches recorded"
                   if result.trace_tail == artifact.trace_tail
                   else "DIFFERS from recorded")
        print(f"  trace tail: {len(result.trace_tail)} events, "
              f"{verdict}", file=out)
    for oracle, messages in sorted(result.failures.items()):
        for message in messages[:3]:
            print(f"  [{oracle}] {message}", file=out)
    recorded = tuple(sorted(artifact.failures))
    if result.failed:
        verdict = ("reproduced" if result.failed_oracles == recorded
                   else f"fails {sorted(result.failed_oracles)} but was "
                        f"recorded failing {list(recorded)}")
        print(f"still failing: {verdict}", file=out)
        return 1
    print("clean: the recorded failure no longer reproduces", file=out)
    return 0


def baseline_main(args, out: "TextIO | None" = None) -> int:
    """Explore a coordinated-commit baseline instead of DvP."""
    out = out if out is not None else sys.stdout
    from repro.chaos.baseline_chaos import explore_baseline

    report = explore_baseline(config_from_args(args),
                              budget=args.budget, master_seed=args.seed)
    print(report.describe(), file=out)
    return 0 if report.ok else 1


def main(args, out: "TextIO | None" = None) -> int:
    if getattr(args, "baseline", None):
        if args.replay or args.shrink or args.inject:
            print("--baseline composes only with explore flags "
                  "(--budget/--seed/--sites/--items/--txns/--duration/"
                  "--timeout)", file=out or sys.stdout)
            return 2
        return baseline_main(args, out=out)
    if args.replay:
        return replay_main(args, out=out)
    return explore_main(args, out=out)


__all__ = ["config_from_args", "explore_main", "replay_main", "main",
           "MAX_SHRINKS"]
