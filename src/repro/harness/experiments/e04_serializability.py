"""E4 — Serializability subject to redistribution.

Claim (Section 6): under Conc1 (and under Conc2 on a synchronous
network) any concurrent execution is equivalent to some serial
execution of the committed real transactions; the distribution of
fragments may differ but the *values* cannot.

Design: a mixed workload (reserves, cancels, cross-item transfers and
full reads) runs at several concurrency levels. Afterwards the checker
in :mod:`repro.harness.serial` replays the committed transactions in
commit order: every full read must have returned the replayed running
total and no replayed decrement may dip below zero. Conservation is
audited as well.

Reported per (scheme, arrival-rate): committed/aborted, reads checked,
read mismatches (must be 0), dips (must be 0), conservation verdict,
and the abort-reason mix (how the scheme pays for correctness).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.harness.serial import check_serializable
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver

EXPERIMENT = "E4"


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["S0", "S1", "S2", "S3"])
    flights: list[str] = field(
        default_factory=lambda: ["flightA", "flightB", "flightC"])
    arrival_rates: list[float] = field(
        default_factory=lambda: [0.05, 0.15, 0.3])
    schemes: list[str] = field(default_factory=lambda: ["conc1", "conc2"])
    duration: float = 250.0
    settle: float = 300.0
    txn_timeout: float = 20.0
    seats: int = 120
    seed: int = 41

    @classmethod
    def quick(cls) -> "Params":
        return cls(arrival_rates=[0.15], duration=150.0, settle=200.0)


def _run_one(params: Params, scheme: str, rate: float) -> dict:
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed, cc=scheme,
        txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=1.0, jitter=1.0)))
    initial_totals = {}
    domains = {}
    for flight in params.flights:
        system.add_item(flight, CounterDomain(), total=params.seats)
        initial_totals[flight] = params.seats
        domains[flight] = CounterDomain()
    workload_config = WorkloadConfig(
        arrival_rate=rate, duration=params.duration,
        mix=OpMix(reserve=0.45, cancel=0.3, transfer=0.15, read=0.1))
    source = AirlineWorkload(list(params.flights), workload_config)
    collector = Collector()
    WorkloadDriver(system.sim, system, params.sites, source,
                   workload_config, collector).install()
    system.run_until(params.duration)
    system.run_for(params.settle)
    report = check_serializable(collector.results, initial_totals, domains)
    reasons = collector.abort_reasons()
    return {
        "committed": len(collector.committed),
        "aborted": len(collector.aborted),
        "reads": report.reads_checked,
        "mismatches": len(report.read_mismatches),
        "dips": len(report.negative_dips),
        "conserved": system.auditor.all_ok(),
        "top_abort": reasons.most_common(1)[0][0] if reasons else "-",
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (scheme × arrival-rate) grid behind E4."""
    params = params or Params()
    return [("_run_one", {"params": params, "scheme": scheme,
                          "rate": rate})
            for scheme in params.schemes
            for rate in params.arrival_rates]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E4: serializability check (commit-order replay)",
        ["scheme", "rate", "commit", "abort", "reads ok",
         "read mismatch", "neg dips", "conserved", "top abort reason"])
    for scheme in params.schemes:
        for rate in params.arrival_rates:
            stats = next(results)
            table.add_row(
                scheme, rate, stats["committed"], stats["aborted"],
                stats["reads"], stats["mismatches"], stats["dips"],
                "yes" if stats["conserved"] else "NO",
                stats["top_abort"])
    table.add_note("conc2 runs on the order-synchronous network it "
                   "requires; mismatch and dip columns must be zero.")
    return table


if __name__ == "__main__":
    print(run())
