"""E11 — Dynamically interchanging DvP and a traditional scheme.

Claim (Section 8): "it may be preferable to design systems that can
respond to different situations by dynamically interchanging between a
DvP scheme and some traditional scheme" — DvP when updates dominate (it
"should work well until a read ... is required"), traditional when
"several of the data-values need to be accessed" (read-heavy phases).

Design: a two-phase workload on one item — an update-heavy phase
followed by a read-heavy phase — run under three regimes:

* ``dvp``     — pure DvP throughout;
* ``central`` — the item consolidated at one site from the start
  (every remote transaction is a forwarded round trip);
* ``hybrid``  — DvP during the update phase, consolidated at the phase
  boundary, centralized during the read phase.

Reported per regime and phase: commit rate, mean latency, messages per
committed transaction. Expected shape: dvp wins phase 1, central wins
phase 2, hybrid matches the winner in each phase (paying one
consolidation read in between).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.site import SiteDown
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
    UnsupportedSpec,
)
from repro.harness.parallel import evaluate_cells
from repro.hybrid import HybridSystem
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig

EXPERIMENT = "E11"

REGIMES = ("dvp", "central", "hybrid")


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["S0", "S1", "S2", "S3"])
    phase_length: float = 200.0
    arrival_rate: float = 0.05     # per site, both phases
    read_fraction_phase2: float = 0.7
    txn_timeout: float = 15.0
    total: int = 100_000
    seed: int = 113

    @classmethod
    def quick(cls) -> "Params":
        return cls(phase_length=100.0)


def _schedule_phase(system, hybrid: HybridSystem, params: Params,
                    start: float, read_fraction: float,
                    collector: Collector) -> None:
    rng = random.Random(params.seed + int(start))
    for site in params.sites:
        time = start
        while True:
            time += rng.expovariate(params.arrival_rate)
            if time >= start + params.phase_length:
                break
            if rng.random() < read_fraction:
                spec = TransactionSpec(ops=(ReadFullOp("item"),),
                                       label="read")
            elif rng.random() < 0.6:
                spec = TransactionSpec(
                    ops=(DecrementOp("item", rng.randint(1, 3)),),
                    label="update")
            else:
                spec = TransactionSpec(
                    ops=(IncrementOp("item", rng.randint(1, 3)),),
                    label="update")

            def arrive(s=site, sp=spec) -> None:
                collector.on_submit(at=system.sim.now)
                try:
                    hybrid.submit(s, sp, collector.on_result)
                except (SiteDown, UnsupportedSpec):
                    # Typed refusals only — the submission is lost (a
                    # down site, a spec the router cannot place), which
                    # the collector's submitted-vs-results accounting
                    # absorbs. Anything else is a programming error in
                    # the routing path and must propagate.
                    pass

            system.sim.at(time, arrive)


def _run_one(params: Params, regime: str) -> dict:
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed,
        txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=1.5, jitter=0.5)))
    system.add_item("item", CounterDomain(), total=params.total)
    hybrid = HybridSystem(system)
    collector = Collector()
    boundary = params.phase_length
    _schedule_phase(system, hybrid, params, 0.0, 0.02, collector)
    _schedule_phase(system, hybrid, params, boundary,
                    params.read_fraction_phase2, collector)
    home = params.sites[0]
    if regime == "central":
        system.sim.at(0.05, lambda: hybrid.consolidate("item", home))
    elif regime == "hybrid":
        system.sim.at(boundary - 1.0,
                      lambda: hybrid.consolidate("item", home))
    sent_marks = {}

    def mark(label):
        sent_marks[label] = system.network.total_sent

    system.sim.at(boundary, lambda: mark("phase1"))
    system.run_until(2 * boundary + params.txn_timeout + 60.0)
    mark("phase2")
    system.auditor.assert_ok()

    def phase_stats(window, messages):
        sub = collector.in_window(*window)
        latencies = [result.latency for result in sub.committed]
        return {
            "commit": sub.commit_rate(),
            "latency": (sum(latencies) / len(latencies)
                        if latencies else float("nan")),
            "msgs": (messages / len(sub.committed)
                     if sub.committed else float("inf")),
        }

    return {
        "phase1": phase_stats((0.0, boundary), sent_marks["phase1"]),
        "phase2": phase_stats((boundary, 2 * boundary),
                              sent_marks["phase2"] - sent_marks["phase1"]),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent regime grid behind E11."""
    params = params or Params()
    return [("_run_one", {"params": params, "regime": regime})
            for regime in REGIMES]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E11: hybrid mode across an update-heavy then read-heavy phase",
        ["regime", "phase", "commit%", "mean latency", "msgs/commit"])
    for regime in REGIMES:
        stats = next(results)
        for phase in ("phase1", "phase2"):
            label = "updates" if phase == "phase1" else "reads"
            entry = stats[phase]
            table.add_row(regime, label,
                          round(100 * entry["commit"], 1),
                          round(entry["latency"], 2),
                          round(entry["msgs"], 2))
    table.add_note("phase1 is 98% updates; phase2 is "
                   f"{int(100 * params.read_fraction_phase2)}% full "
                   "reads; hybrid consolidates at the boundary.")
    return table


if __name__ == "__main__":
    print(run())
