"""E16 — Bounded-staleness Π(b) views vs exact fan-out reads.

Claim (ROADMAP read-scaling item; docs/READS.md): the paper concedes
"there is a high overhead in reading the entire value" — E7 measured
the O(n) drain and its collateral aborts. The Π(b) view tier converts
that cost into a bounded-staleness contract: a ``ReadViewOp(bound=b)``
commits in O(1) messages whenever the site's view cache holds a
staleness certificate within *b*, and falls back to the classic fan-out
only when it cannot. Three things should fall out of the sweep:

* at read-heavy mixes (100:1 and beyond) view-served reads cost **zero
  redistribution messages** per read where the fan-out baseline pays
  O(n) — and the certificates' measured staleness never exceeds the
  configured bound;
* on multi-region WAN topologies the gap becomes latency, not just
  messages: a stale-but-local read answers in microseconds of virtual
  time while the exact drain pays two WAN crossings — p99 collapses by
  well over 5x;
* the write path is untouched: commit rates match the fan-out runs at
  every ratio (views are observation, never coordination).

Traffic is **app-level** (the PR 10 serving satellite): a
:class:`~repro.apps.bank.Bank` façade submits *via* the serving
front-end — ``estimate_balance(bound=b)`` in view cells (view-aware
router), ``audit_balance`` in fan-out cells (locality router).

Reported per (sites, wan, ratio, mode): offered load, commit%, shed%,
committed reads, view-served share, redistribution messages per read,
read p50/p99, and the worst certificate staleness against the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.bank import Bank
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.stats import percentile_sorted
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.reads import ViewConfig
from repro.serving import ServingConfig, ServingFrontend
from repro.workloads.apps import AppWorkloadDriver, BankAppTraffic
from repro.workloads.base import OpMix, WorkloadConfig

EXPERIMENT = "E16"

MODES = ("view", "fanout")


@dataclass
class Params:
    site_counts: list[int] = field(default_factory=lambda: [8, 32, 64])
    #: Read:write ratios (reads per write, the sweep axis).
    ratios: list[int] = field(default_factory=lambda: [1, 10, 100, 1000])
    #: WAN off and on; on partitions the sites into *regions* regions
    #: with *wan_delay* between regions and *lan_delay* inside one.
    wan_settings: list[bool] = field(default_factory=lambda: [False, True])
    regions: int = 4
    lan_delay: float = 1.0
    wan_delay: float = 20.0
    link_jitter: float = 0.3
    #: The per-reader staleness bound b. Must cover one refresh period
    #: plus a WAN crossing, or WAN caches can never certify and every
    #: view read lawfully falls back (staler -> fallback, never wrong).
    bound: float = 30.0
    refresh_period: float = 4.0
    accounts: int = 8
    arrival_rate: float = 0.06
    duration: float = 80.0
    settle: float = 60.0
    #: Above 2 * wan_delay so exact WAN drains decide by commit, not
    #: timeout — the latency comparison needs both paths to finish.
    txn_timeout: float = 50.0
    zipf_skew: float = 0.4
    max_inflight: int = 4
    max_depth: int = 16
    board_period: float = 4.0
    replicas: int = 2
    balance: int = 10_000       # plentiful: read cost, not stock-outs
    seed: int = 16

    @classmethod
    def quick(cls) -> "Params":
        return cls(site_counts=[32], ratios=[1, 100, 1000],
                   duration=60.0, settle=50.0)


def _wire_regions(system: DvPSystem, params: Params) -> dict[str, int]:
    """Round-robin sites into regions; cross-region links pay WAN."""
    sites = list(system.sites)
    region = {site: index % params.regions
              for index, site in enumerate(sites)}
    wan = LinkConfig(base_delay=params.wan_delay,
                     jitter=params.link_jitter)
    for src in sites:
        for dst in sites:
            if src != dst and region[src] != region[dst]:
                system.network.configure_link(src, dst, wan)
    return region


def _cell(params: Params, sites_n: int, wan: bool, ratio: int,
          mode: str) -> tuple:
    """Build and run one cell; returns (system, frontend, collector).

    Split out of :func:`_run_one` so the reads benchmark can gate on
    the raw per-transaction results (certificate staleness, per-read
    message counts) instead of the table's aggregates.
    """
    sites = [f"S{index}" for index in range(sites_n)]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=params.seed, txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=params.lan_delay,
                        jitter=params.link_jitter),
        partitioner="hash", replicas=params.replicas,
        # TTL = the bound, not the 2x-refresh default: a WAN refresh
        # is already ~wan_delay old on arrival, which the reader's
        # bound tolerates but the LAN-calibrated default TTL would not.
        views=(ViewConfig(refresh_period=params.refresh_period,
                          ttl=params.bound)
               if mode == "view" else None)))
    if wan:
        _wire_regions(system, params)

    collector = Collector()
    frontend = ServingFrontend(system, ServingConfig(
        router="view-aware" if mode == "view" else "locality",
        max_inflight=params.max_inflight, max_depth=params.max_depth,
        board_period=params.board_period), collector)
    bank = Bank(system, via=frontend)
    accounts = [f"acct{index}" for index in range(params.accounts)]
    for account in accounts:
        bank.open_account(account, _even_split(sites, params.balance))

    # reads:writes = ratio:1 in expectation; the read family is the
    # only thing that changes between modes, so every other draw (and
    # hence the write traffic) is identical across the comparison.
    mix = (OpMix(reserve=0.5, cancel=0.5, read_view=float(ratio))
           if mode == "view"
           else OpMix(reserve=0.5, cancel=0.5, read=float(ratio)))
    workload = WorkloadConfig(
        arrival_rate=params.arrival_rate, duration=params.duration,
        zipf_skew=params.zipf_skew, mix=mix)
    source = BankAppTraffic(bank, accounts, workload,
                            view_bound=params.bound)
    driver = AppWorkloadDriver(system.sim, sites, source, workload,
                               collector)
    frontend.start()
    driver.install_open_loop()
    system.sim.run_until(params.duration)
    frontend.quiesce()
    system.sim.run_until(params.duration + params.txn_timeout
                         + params.settle)
    system.auditor.assert_ok()
    return system, frontend, collector


def _run_one(params: Params, sites_n: int, wan: bool, ratio: int,
             mode: str) -> tuple:
    _system, _frontend, collector = _cell(params, sites_n, wan, ratio,
                                          mode)
    results = collector.results
    reads = [txn for txn in results
             if txn.label.startswith(("estimate:", "audit:"))]
    committed_reads = [txn for txn in reads if txn.committed]
    served = [txn for txn in committed_reads if txn.view_reads]
    latencies = sorted(txn.latency for txn in committed_reads)
    messages = [txn.requests_sent for txn in committed_reads]
    stale_max = max((cert.staleness for txn in served
                     for cert in txn.view_reads.values()), default=0.0)
    offered = collector.submitted
    decided = len(results)
    committed = sum(1 for txn in results if txn.committed)
    return (
        offered,
        100.0 * committed / decided if decided else 0.0,
        100.0 * collector.shed / offered if offered else 0.0,
        len(committed_reads),
        (100.0 * len(served) / len(committed_reads)
         if committed_reads else 0.0),
        (sum(messages) / len(messages)) if messages else 0.0,
        percentile_sorted(latencies, 50) if latencies else 0.0,
        percentile_sorted(latencies, 99) if latencies else 0.0,
        stale_max,
    )


def _even_split(sites: list[str], total: int) -> dict[str, int]:
    base, extra = divmod(total, len(sites))
    return {site: base + (1 if index < extra else 0)
            for index, site in enumerate(sites)}


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The (sites x wan x ratio x mode) grid behind E16."""
    params = params or Params()
    return [("_run_one", {"params": params, "sites_n": sites_n,
                          "wan": wan, "ratio": ratio, "mode": mode})
            for sites_n in params.site_counts
            for wan in params.wan_settings
            for ratio in params.ratios
            for mode in MODES]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E16: Π(b) views vs exact fan-out — messages and latency per read",
        ["sites", "wan", "r:w", "mode", "offered", "commit%", "shed%",
         "reads", "served%", "msg/read", "p50", "p99", "stale_max"])
    for sites_n in params.site_counts:
        for wan in params.wan_settings:
            for ratio in params.ratios:
                for mode in MODES:
                    (offered, commit, shed, reads, served, msgs,
                     p50, p99, stale) = next(results)
                    table.add_row(
                        sites_n, "wan" if wan else "lan",
                        f"{ratio}:1", mode, offered,
                        round(commit, 1), round(shed, 1), reads,
                        round(served, 1), round(msgs, 2),
                        round(p50, 2), round(p99, 2), round(stale, 2))
    return table
