"""E8 — Redistribution policy ablation.

Claim (Section 9, future work): "performance studies to find the best
ways to distribute the data, to design the transactions and to reduce
the message traffic are needed". This experiment maps a slice of that
design space with the three implemented policies:

* ``ask-all``        — broadcast the deficit to every peer (fastest,
  most message traffic, over-transfers);
* ``ask-few(k)``     — ask k random peers (thrifty, risks aborts);
* ``reserving(f)``   — ask everyone but responders keep a reserve
  fraction at home (protects the responder's own customers).

Workload: demand is skewed onto one site (a "flash sale" at S0) while
value starts spread evenly, so almost every S0 transaction needs
redistribution. Reported per policy: commit rate at the hot site,
commit rate at the other sites (responder starvation), messages per
committed transaction, and mean commit latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.base import WorkloadConfig, WorkloadDriver

EXPERIMENT = "E8"


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["S0", "S1", "S2", "S3", "S4", "S5"])
    policies: list[tuple[str, dict]] = field(default_factory=lambda: [
        ("ask-all", {}),
        ("ask-few", {"fanout": 1}),
        ("ask-few", {"fanout": 2}),
        ("reserving", {"reserve_fraction": 0.5}),
    ])
    total: int = 160
    duration: float = 300.0
    hot_rate: float = 0.25       # arrivals at the flash-sale site
    cold_rate: float = 0.05      # arrivals elsewhere
    txn_timeout: float = 15.0
    seed: int = 83

    @classmethod
    def quick(cls) -> "Params":
        return cls(duration=150.0, policies=[("ask-all", {}),
                                             ("ask-few", {"fanout": 1})])


class FlashSale:
    """Hot site sells hard; cold sites trickle along."""

    def __init__(self, hot_site: str) -> None:
        self.hot_site = hot_site

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        if site == self.hot_site:
            return TransactionSpec(
                ops=(DecrementOp("sku", rng.randint(3, 10)),), label="hot")
        if rng.random() < 0.3:
            return TransactionSpec(
                ops=(IncrementOp("sku", rng.randint(1, 3)),),
                label="restock")
        return TransactionSpec(
            ops=(DecrementOp("sku", rng.randint(1, 3)),), label="cold")


def _run_one(params: Params, policy: str, kwargs: dict) -> dict:
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed,
        policy=policy, policy_kwargs=kwargs,
        txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=1.0, jitter=0.5)))
    system.add_item("sku", CounterDomain(), total=params.total)
    source = FlashSale(params.sites[0])
    hot_collector = Collector()
    cold_collector = Collector()
    WorkloadDriver(system.sim, system, [params.sites[0]], source,
                   WorkloadConfig(arrival_rate=params.hot_rate,
                                  duration=params.duration,
                                  seed_stream="hot"),
                   hot_collector).install()
    WorkloadDriver(system.sim, system, params.sites[1:], source,
                   WorkloadConfig(arrival_rate=params.cold_rate,
                                  duration=params.duration,
                                  seed_stream="cold"),
                   cold_collector).install()
    system.run_for(params.duration + params.txn_timeout + 200.0)
    system.auditor.assert_ok()
    committed = (len(hot_collector.committed)
                 + len(cold_collector.committed))
    latencies = [result.latency for result in hot_collector.committed]
    return {
        "hot_rate": hot_collector.commit_rate(),
        "cold_rate": cold_collector.commit_rate(),
        "msgs_per_commit": (system.network.total_sent / committed
                            if committed else float("inf")),
        "hot_latency": (sum(latencies) / len(latencies)
                        if latencies else float("nan")),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent policy grid behind E8."""
    params = params or Params()
    return [("_run_one", {"params": params, "policy": policy,
                          "kwargs": kwargs})
            for policy, kwargs in params.policies]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E8: redistribution policies under a flash sale at S0",
        ["policy", "hot commit%", "cold commit%", "msgs/commit",
         "hot mean latency"])
    for policy, kwargs in params.policies:
        stats = next(results)
        label = policy
        if kwargs:
            inner = ",".join(str(value) for value in kwargs.values())
            label = f"{policy}({inner})"
        table.add_row(label, round(100 * stats["hot_rate"], 1),
                      round(100 * stats["cold_rate"], 1),
                      round(stats["msgs_per_commit"], 2),
                      round(stats["hot_latency"], 2))
    table.add_note("ask-all trades messages for commit rate; ask-few(1) "
                   "saves traffic but starves the hot site; reserving "
                   "protects cold-site customers.")
    return table


if __name__ == "__main__":
    print(run())
