"""E14 — Saturation knee of the serving front-end per policy.

Claim (ROADMAP serving item; docs/SERVING.md): DvP's local commits
only matter under load, so we drive the system open-loop — arrivals
keep coming whether or not the system keeps up — and sweep the offered
load across routing/admission policies. Three things should fall out:

* every policy has a *saturation knee*: a rate beyond which p99
  client-perceived latency (enqueue to decision) turns sharply up;
* locality routing (commit where the fragments live) holds a lower
  p99 than random spraying at every load, and keeps the knee further
  out — the paper's local-commit sweet spot, measured;
* admission control converts saturation into bounded latency plus
  sheds, where the unbounded queue's latency grows without limit
  (queue collapse).

Policies: ``random``, ``least-queue`` (JSQ + origin slack) and
``locality`` run with a depth bound; ``lq-unbounded`` is least-queue
with admission disabled — the collapse control.

Reported per (sites, policy, rate): commit%, abort%, shed%, p50/p99
client latency, and the per-policy knee rate in the table footer
columns (knee = lowest swept rate where p99 exceeds 2.5x the
lowest-rate p99 or more than 5% of offered load is shed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.airline import ReservationSystem
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.stats import percentile_sorted
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.serving import ServingConfig, ServingFrontend
from repro.workloads.apps import AirlineAppTraffic, AppWorkloadDriver
from repro.workloads.base import OpMix, WorkloadConfig

EXPERIMENT = "E14"

#: (label, router, admission on)
POLICIES = (
    ("random", "random", True),
    ("least-queue", "least-queue", True),
    ("locality", "locality", True),
    ("lq-unbounded", "least-queue", False),
)


@dataclass
class Params:
    site_counts: list[int] = field(default_factory=lambda: [16, 64])
    rates: list[float] = field(
        default_factory=lambda: [0.5, 1.0, 2.0, 3.0, 4.0])
    items: int = 64
    duration: float = 100.0
    settle: float = 70.0
    txn_timeout: float = 12.0
    link_delay: float = 1.0
    #: Lock-hold per txn. Under strict 2PL the item lock is held for
    #: the whole work period, so this must stay *below* the remote
    #: round trip for locality's concentration to beat random's
    #: redistribution — the trade-off the experiment measures.
    work: float = 0.5
    zipf_skew: float = 0.6
    max_inflight: int = 4
    max_depth: int = 16
    board_period: float = 2.0
    shards: int = 4
    replicas: int = 2
    stock: int = 100_000         # plentiful: saturation, not stock-outs
    seed: int = 11

    @classmethod
    def quick(cls) -> "Params":
        return cls(site_counts=[16], rates=[0.5, 2.0, 4.0],
                   duration=60.0, settle=50.0)


def knee_rate(rates: list[float], p99s: list[float],
              shed_rates: list[float],
              latency_factor: float = 2.5,
              shed_threshold: float = 0.05) -> float | None:
    """Lowest rate where the latency tail or the shed rate gives out.

    The latency trigger is relative to the lowest-rate p99 (each
    policy's own unloaded tail — random routing pays remote gathers
    even unloaded, so an absolute bound would misread it); the shed
    trigger catches policies whose admission control sheds before the
    tail moves.
    """
    if not rates:
        return None
    base = p99s[0]
    for rate, p99, shed in zip(rates, p99s, shed_rates):
        saturated_tail = (math.isfinite(base) and math.isfinite(p99)
                          and p99 > latency_factor * base)
        if saturated_tail or shed > shed_threshold:
            return rate
    return None


def _run_one(params: Params, sites_n: int, policy: str,
             rate: float) -> tuple:
    label_to_policy = {label: (router, admit)
                       for label, router, admit in POLICIES}
    router, admit = label_to_policy[policy]
    sites = [f"S{index}" for index in range(sites_n)]
    # Conc2 (strict 2PL): lock conflicts *queue* instead of the
    # timestamp scheme's instant aborts, so contention surfaces as
    # latency — the quantity a saturation experiment must measure.
    system = DvPSystem(SystemConfig(
        sites=sites, seed=params.seed, txn_timeout=params.txn_timeout,
        cc="conc2", sync_delay=params.link_delay,
        link=LinkConfig(base_delay=params.link_delay),
        shards=params.shards, shard_workers=1,
        partitioner="hash", replicas=params.replicas))
    items = [f"flight{index}" for index in range(params.items)]

    workload = WorkloadConfig(
        arrival_rate=rate, duration=params.duration,
        zipf_skew=params.zipf_skew, work=params.work,
        mix=OpMix(reserve=0.7, cancel=0.3))
    collector = Collector()
    frontend = ServingFrontend(system, ServingConfig(
        router=router, max_inflight=params.max_inflight,
        max_depth=params.max_depth if admit else None,
        board_period=params.board_period), collector)
    # App-level traffic: the reservation façade submits *via* the
    # front-end, so routed/queued/shed requests are real app calls.
    reservations = ReservationSystem(system, via=frontend)
    for item in items:
        reservations.add_flight(item, params.stock)
    source = AirlineAppTraffic(reservations, items, workload)
    driver = AppWorkloadDriver(system.sim, sites, source, workload,
                               collector)
    frontend.start()
    driver.install_open_loop()
    system.sim.run_until(params.duration)
    frontend.stop()
    system.sim.run_until(params.duration + params.settle)
    system.auditor.assert_ok()

    # "p99 commit latency": the client-perceived tail over requests
    # that committed (enqueue to decision; queue wait included).
    latencies = sorted(sample.latency for sample in frontend.samples
                       if sample.committed)
    offered = collector.submitted
    decided = len(collector.results)
    committed = len(latencies)
    return (
        offered,
        100.0 * committed / decided if decided else 0.0,
        100.0 * (decided - committed) / decided if decided else 0.0,
        100.0 * collector.shed / offered if offered else 0.0,
        percentile_sorted(latencies, 50),
        percentile_sorted(latencies, 99),
    )


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The (sites x policy x rate) grid behind E14."""
    params = params or Params()
    return [("_run_one", {"params": params, "sites_n": sites_n,
                          "policy": label, "rate": rate})
            for sites_n in params.site_counts
            for label, _router, _admit in POLICIES
            for rate in params.rates]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E14: serving knee — p50/p99 client latency vs offered load",
        ["sites", "policy", "rate/site", "offered", "commit%", "abort%",
         "shed%", "p50", "p99", "knee"])
    for sites_n in params.site_counts:
        for label, _router, _admit in POLICIES:
            rows = []
            for rate in params.rates:
                offered, commit, abort, shed, p50, p99 = next(results)
                rows.append((rate, offered, commit, abort, shed, p50, p99))
            knee = knee_rate([row[0] for row in rows],
                             [row[6] for row in rows],
                             [row[4] / 100.0 for row in rows])
            for rate, offered, commit, abort, shed, p50, p99 in rows:
                table.add_row(sites_n, label, rate, offered,
                              round(commit, 1), round(abort, 1),
                              round(shed, 1), round(p50, 2),
                              round(p99, 2),
                              knee if knee is not None else "-")
    return table
