"""E15 — Commit-protocol showdown under partitions and crashes.

Claim (Sections 3, 8 + the Gray & Lamport comparison): coordinated
commit protocols pay for atomicity with availability when the network
splits — 2PC blocks on its coordinator, quorum serves one group, Paxos
Commit decides wherever a majority of acceptors lives but still makes
the minority wait — while DvP keeps committing from local quotas in
*every* group, and the path-sensitive hybrid keeps the locally provable
subset of a centralized workload flowing.

Design: one account item per site. Each site submits a Poisson stream
mixing local increments/decrements on its own account with cross-site
operations on a random peer's account (single-item, so every protocol
can run the identical stream). Mid-run a fault window opens: one site
crashes and the network splits into a two-site minority and the rest;
both heal at the window's end. Protocols:

* ``dvp``       — every account value-partitioned across all sites;
* ``hybrid-ps`` — every account consolidated at its owner under the
  hybrid manager with the Soethout path-sensitive fast path enabled;
* ``2pc``       — accounts homed at their owner, two-phase commit;
* ``paxos``     — accounts homed at their owner, Paxos Commit
  (2F+1 acceptors, F<=2);
* ``quorum``    — accounts fully replicated, majority lock quorum.

Reported per protocol and site count: in-window availability
(committed / submitted, lost counts against), the worst-served
partition group, committed-latency p50/p99, participants still blocked
at the window's end, and messages per commit. Expected shape: DvP near
100% in both groups; hybrid-ps between DvP and the coordinated
protocols (its increments survive the partition); Paxos commits
through the crash with a long latency tail in the minority; 2PC aborts
or blocks on the dead/unreachable coordinator; quorum serves only the
majority group.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.common import BaselineConfig
from repro.baselines.paxoscommit import PaxosCommitSystem
from repro.baselines.quorum import QuorumSystem
from repro.baselines.twopc import TwoPCSystem
from repro.chaos.plan import (
    CrashSite,
    FaultPlan,
    HealNet,
    PartitionNet,
    RecoverSite,
)
from repro.core.domain import CounterDomain
from repro.core.site import SiteDown
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
    UnsupportedSpec,
)
from repro.harness.parallel import evaluate_cells
from repro.hybrid import HybridSystem
from repro.metrics.collector import Collector
from repro.metrics.stats import percentile_sorted
from repro.metrics.tables import Table
from repro.net.link import LinkConfig

EXPERIMENT = "E15"

PROTOCOLS = ("dvp", "hybrid-ps", "2pc", "paxos", "quorum")


@dataclass
class Params:
    site_counts: list[int] = field(default_factory=lambda: [10, 40, 100])
    window: tuple[float, float] = (60.0, 240.0)
    run_length: float = 300.0
    arrival_rate: float = 0.04       # per site
    cross_fraction: float = 0.4      # ops that touch a peer's account
    txn_timeout: float = 12.0
    per_item: int = 10_000
    seed: int = 31
    link_delay: float = 1.0

    @classmethod
    def quick(cls) -> "Params":
        return cls(site_counts=[10], window=(40.0, 140.0),
                   run_length=200.0)


def _sites(count: int) -> list[str]:
    return [f"S{index}" for index in range(count)]


def fault_plan(sites: list[str],
               window: tuple[float, float]) -> FaultPlan:
    """Crash one minority site and split a two-site minority off."""
    minority = tuple(sites[:2])
    return FaultPlan((
        CrashSite(at=window[0], site=sites[1]),
        PartitionNet(at=window[0], groups=(minority,)),
        RecoverSite(at=window[1], site=sites[1]),
        HealNet(at=window[1]),
    ))


def _build(protocol: str, sites: list[str], params: Params):
    """(system, submit(site, spec, on_done), finish()) for a protocol."""
    link = LinkConfig(base_delay=params.link_delay)
    baseline_config = BaselineConfig(txn_timeout=params.txn_timeout)
    if protocol in ("dvp", "hybrid-ps"):
        system = DvPSystem(SystemConfig(
            sites=list(sites), seed=params.seed,
            txn_timeout=params.txn_timeout, link=link))
        for index, site in enumerate(sites):
            system.add_item(f"acct_{index}", CounterDomain(),
                            total=params.per_item)
        if protocol == "dvp":
            return system, system.submit, system.auditor.assert_ok
        hybrid = HybridSystem(system, path_sensitive=True)
        for index, site in enumerate(sites):
            system.sim.at(1.0 + 0.05 * index,
                          lambda item=f"acct_{index}", home=site:
                          hybrid.consolidate(item, home))
        return system, hybrid.submit, system.auditor.assert_ok
    if protocol == "2pc":
        system = TwoPCSystem(list(sites), seed=params.seed, link=link,
                             config=baseline_config)
    elif protocol == "paxos":
        system = PaxosCommitSystem(list(sites), seed=params.seed,
                                   link=link, config=baseline_config)
    elif protocol == "quorum":
        system = QuorumSystem(list(sites), seed=params.seed, link=link,
                              config=baseline_config)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    for index, site in enumerate(sites):
        if protocol == "quorum":
            system.add_item(f"acct_{index}", params.per_item)
        else:
            system.add_item(f"acct_{index}", site, params.per_item)
    return system, system.submit, lambda: None


def _schedule_traffic(system, submit, sites: list[str], params: Params,
                      collectors: dict[str, Collector]) -> None:
    """The identical single-item op stream for every protocol."""
    for index, site in enumerate(sites):
        rng = random.Random(f"e15:{params.seed}:{site}")
        time = 0.0
        while True:
            time += rng.expovariate(params.arrival_rate)
            if time >= params.run_length:
                break
            if rng.random() < params.cross_fraction:
                peer = rng.randrange(len(sites) - 1)
                peer = peer if peer < index else peer + 1
                item = f"acct_{peer}"
            else:
                item = f"acct_{index}"
            amount = rng.randint(1, 3)
            if rng.random() < 0.6:
                spec = TransactionSpec(ops=(DecrementOp(item, amount),),
                                       label="dec")
            else:
                spec = TransactionSpec(ops=(IncrementOp(item, amount),),
                                       label="inc")
            collector = collectors[site]

            def arrive(s=site, sp=spec, c=collector) -> None:
                if not system.sites[s].alive:
                    # The client host itself is down — that demand is
                    # lost for every protocol alike, so counting it
                    # would only dilute the between-protocol contrast.
                    return
                c.on_submit(at=system.sim.now)
                try:
                    submit(s, sp, c.on_result)
                except (SiteDown, UnsupportedSpec):
                    pass

            system.sim.at(time, arrive)


def _run_one(protocol: str, params: Params, site_count: int) -> dict:
    sites = _sites(site_count)
    system, submit, finish = _build(protocol, sites, params)
    collectors = {site: Collector() for site in sites}
    _schedule_traffic(system, submit, sites, params, collectors)
    fault_plan(sites, params.window).compile(system)

    blocked_at_window_end = [0]
    if hasattr(system, "currently_blocked"):
        system.sim.at(params.window[1] - 0.5, lambda: blocked_at_window_end
                      .__setitem__(0, len(system.currently_blocked())))
    system.sim.run_until(params.run_length + 10 * params.txn_timeout)
    finish()

    minority = set(sites[:2])
    windows = {site: collector.in_window(*params.window)
               for site, collector in collectors.items()}
    group_stats = {True: [0, 0], False: [0, 0]}  # in_minority -> [c, s]
    latencies: list[float] = []
    for site, window in windows.items():
        stats = group_stats[site in minority]
        stats[0] += len(window.committed)
        stats[1] += window.submitted
        latencies.extend(result.latency for result in window.committed)
    submitted = sum(stats[1] for stats in group_stats.values())
    committed = sum(stats[0] for stats in group_stats.values())
    group_rates = [c / s for c, s in group_stats.values() if s]
    latencies.sort()
    total_committed = sum(len(c.committed) for c in collectors.values())
    return {
        "availability": committed / submitted if submitted else 0.0,
        "worst_group": min(group_rates) if group_rates else 0.0,
        "p50": (percentile_sorted(latencies, 50) if latencies
                else float("nan")),
        "p99": (percentile_sorted(latencies, 99) if latencies
                else float("nan")),
        "blocked": blocked_at_window_end[0],
        "msgs_per_commit": (system.network.total_sent / total_committed
                            if total_committed else float("inf")),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (protocol × site count) grid behind E15."""
    params = params or Params()
    return [("_run_one", {"protocol": protocol, "params": params,
                          "site_count": site_count})
            for site_count in params.site_counts
            for protocol in PROTOCOLS]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E15: availability and latency through a crash + partition window",
        ["sites", "protocol", "window avail%", "worst group%",
         "p50", "p99", "blocked@end", "msgs/commit"])
    for site_count in params.site_counts:
        for protocol in PROTOCOLS:
            stats = next(results)
            table.add_row(
                site_count, protocol,
                round(100 * stats["availability"], 1),
                round(100 * stats["worst_group"], 1),
                round(stats["p50"], 2), round(stats["p99"], 2),
                stats["blocked"],
                round(stats["msgs_per_commit"], 1))
    table.add_note(
        "window = one crashed site + a 2-site minority split; "
        "availability counts lost submissions against the protocol. "
        "Paxos commits through the window (long minority tail); 2PC "
        "aborts or blocks on the coordinator; quorum serves the "
        "majority group; DvP serves every group from local quotas.")
    return table


if __name__ == "__main__":
    print(run())
