"""E3 — Virtual messages never lose value, whatever the links do.

Claim (Section 4.2): a Vm exists from the sender's log force to the
receiver's accept force; real messages may be lost, duplicated,
reordered or delayed arbitrarily, and sites may crash, yet the value in
flight is never lost and never applied twice. The conservation
invariant Σ fragments + Σ live Vm = d holds at all times.

Design: a redistribution-heavy workload (small quotas, demands that
exceed them) on four sites, swept across message-loss probabilities,
with duplication and reordering enabled and one mid-run crash+recovery.
After a settling period every Vm must have landed exactly once.

Reported per loss rate: transactions committed, Vm created, mean/max
delivery latency (create → accept), retransmissions per Vm, residual
live Vm after settling (must be 0), and the conservation verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver
from repro.workloads.inventory import InventoryWorkload

EXPERIMENT = "E3"


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["S0", "S1", "S2", "S3"])
    loss_rates: list[float] = field(
        default_factory=lambda: [0.0, 0.2, 0.5, 0.8])
    duration: float = 300.0
    settle: float = 600.0
    arrival_rate: float = 0.08
    txn_timeout: float = 25.0
    retransmit_period: float = 4.0
    total: int = 40
    crash_site_index: int = 3
    crash_at: float = 120.0
    recover_at: float = 180.0
    seed: int = 31

    @classmethod
    def quick(cls) -> "Params":
        return cls(loss_rates=[0.0, 0.5], duration=150.0, settle=400.0)


def _run_one(params: Params, loss: float) -> dict:
    link = LinkConfig(base_delay=1.0, jitter=2.0, loss_probability=loss,
                      duplicate_probability=0.1)
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed,
        txn_timeout=params.txn_timeout,
        retransmit_period=params.retransmit_period,
        request_retries=2, link=link))
    system.add_item("stock", CounterDomain(), total=params.total)
    workload_config = WorkloadConfig(
        arrival_rate=params.arrival_rate, duration=params.duration,
        mix=OpMix(reserve=0.5, cancel=0.5), amount_low=4, amount_high=14)
    source = InventoryWorkload(["stock"], workload_config)
    collector = Collector()
    WorkloadDriver(system.sim, system, params.sites, source,
                   workload_config, collector).install()
    crash_site = params.sites[params.crash_site_index]
    system.sim.at(params.crash_at, lambda: system.crash(crash_site))
    system.sim.at(params.recover_at, lambda: system.recover(crash_site))
    system.run_until(params.duration)
    mid_audit_ok = system.auditor.all_ok()
    system.run_for(params.settle)

    latencies: list[float] = []
    retransmissions = 0
    created = 0
    for sender in system.sites.values():
        for dst, channel in sender.vm.outgoing.items():
            retransmissions += channel.retransmissions
            receiver = system.sites[dst]
            for (dest, seq), created_at in sender.vm.created_times.items():
                if dest != dst:
                    continue
                created += 1
                accepted_at = receiver.vm.accept_times.get(
                    (sender.name, seq))
                if accepted_at is not None:
                    latencies.append(accepted_at - created_at)
    live = sum(
        1 for sender in system.sites.values()
        for dst, channel in sender.vm.outgoing.items()
        for seq in channel.entries
        if seq > system.sites[dst].vm.in_channel(sender.name)
        .cumulative_accepted)
    system.auditor.assert_ok()
    return {
        "committed": len(collector.committed),
        "decided": len(collector.results),
        "created": created,
        "mean_latency": (sum(latencies) / len(latencies)
                         if latencies else 0.0),
        "max_latency": max(latencies, default=0.0),
        "retx_per_vm": retransmissions / created if created else 0.0,
        "residual_live": live,
        "mid_audit_ok": mid_audit_ok,
        "conservation_ok": system.auditor.all_ok(),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent loss-rate grid behind E3."""
    params = params or Params()
    return [("_run_one", {"params": params, "loss": loss})
            for loss in params.loss_rates]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E3: Vm delivery under message loss (+dup/reorder, 1 crash)",
        ["loss", "txns", "commit", "Vm created", "mean deliver t",
         "max deliver t", "retx/Vm", "live Vm after settle",
         "conserved"])
    for loss in params.loss_rates:
        stats = next(results)
        table.add_row(
            loss, stats["decided"], stats["committed"], stats["created"],
            round(stats["mean_latency"], 1), round(stats["max_latency"], 1),
            round(stats["retx_per_vm"], 2), stats["residual_live"],
            "yes" if stats["conservation_ok"] and stats["mid_audit_ok"]
            else "NO")
    table.add_note("accepted-exactly-once is implied by live Vm = 0 plus "
                   "conservation; latency grows with loss but no value is "
                   "ever lost.")
    return table


if __name__ == "__main__":
    print(run())
