"""E5 — Independent recovery.

Claim (Section 7): a recovering DvP site consults only its own stable
log — zero messages to other sites before normal processing resumes —
and this holds even if *every* site fails and only one comes back. A
2PC participant, in contrast, re-locks its in-doubt items on recovery
and cannot release them until the coordinator answers; if the
coordinator is unreachable the items stay locked indefinitely.

Scenarios:

* ``dvp-one``      — one site crashes mid-run with Vm in flight;
  recovers; measure messages-before-resume (0), redo work, and time
  from recovery to its first local commit.
* ``dvp-all``      — every site crashes; a single site recovers alone
  (others stay down) and must immediately commit local transactions.
* ``2pc-reachable``— a participant crashes after voting YES; recovers
  while its coordinator is reachable; counts the decision-request
  messages it needs before the in-doubt items free up.
* ``2pc-cut-off``  — same, but the coordinator is partitioned away;
  the items remain locked until the partition heals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.common import BaselineConfig
from repro.baselines.twopc import TwoPCSystem
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
    TransferOp,
)
from repro.harness.parallel import evaluate_cells
from repro.metrics.tables import Table
from repro.net.link import LinkConfig

EXPERIMENT = "E5"


@dataclass
class Params:
    sites: list[str] = field(default_factory=lambda: ["A", "B", "C", "D"])
    total: int = 400
    txn_timeout: float = 15.0
    checkpoint_interval: int = 8
    seed: int = 57
    warmup_txns: int = 30

    @classmethod
    def quick(cls) -> "Params":
        return cls(warmup_txns=12)


def _warm_dvp(params: Params) -> DvPSystem:
    """A DvP system with churn so logs and channels are non-trivial."""
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed,
        txn_timeout=params.txn_timeout,
        checkpoint_interval=params.checkpoint_interval,
        link=LinkConfig(base_delay=1.0, jitter=0.5,
                        loss_probability=0.1)))
    system.add_item("stock", CounterDomain(), total=params.total)
    rng = system.sim.rng.stream("e05")
    for index in range(params.warmup_txns):
        site = params.sites[index % len(params.sites)]
        amount = rng.randint(1, 150)  # large demands force Vm traffic
        spec = TransactionSpec(ops=(DecrementOp("stock", amount),)
                               if index % 3 else
                               (IncrementOp("stock", amount),),
                               label="warm")
        system.sim.at(index * 3.0 + 0.5,
                      lambda s=site, sp=spec: system.submit(s, sp))
    system.run_for(params.warmup_txns * 3.0 + 5.0)
    return system


def _dvp_one(params: Params) -> dict:
    system = _warm_dvp(params)
    victim = params.sites[1]
    sent_before = system.network.total_sent
    system.crash(victim)
    system.run_for(3.0)
    report = system.recover(victim)
    # Messages the recovery itself needed: none may be sent by the
    # recovering site before it can commit (retransmissions of old Vm
    # resume later, but the first local commit needs no network at all).
    commit_times: list[float] = []
    system.submit(victim, TransactionSpec(
        ops=(IncrementOp("stock", 5),), label="post-recovery"),
        lambda result: commit_times.append(result.finished_at))
    recovery_instant = system.sim.now
    system.run_for(60.0)
    system.run_for(300.0)  # settle retransmissions
    system.auditor.assert_ok()
    return {
        "messages_before_resume": report.messages_needed,
        "redo": report.redo_applied,
        "vm_rebuilt": report.vm_rebuilt,
        "scanned": report.scanned_records,
        "from_checkpoint": report.from_checkpoint,
        "resume_latency": (commit_times[0] - recovery_instant
                           if commit_times else float("nan")),
        "locked_after_recovery": 0,
        "note": f"net sent before crash {sent_before}",
    }


def _dvp_all(params: Params) -> dict:
    system = _warm_dvp(params)
    for site in params.sites:
        system.crash(site)
    system.run_for(5.0)
    survivor = params.sites[0]
    report = system.recover(survivor)
    commit_times: list[float] = []
    recovery_instant = system.sim.now
    system.submit(survivor, TransactionSpec(
        ops=(IncrementOp("stock", 1),), label="lone-survivor"),
        lambda result: commit_times.append(result.finished_at))
    system.run_for(30.0)
    resumed = bool(commit_times)
    # Bring the rest back so conservation can be audited quiescently.
    for site in params.sites[1:]:
        system.recover(site)
    system.run_for(400.0)
    system.auditor.assert_ok()
    return {
        "messages_before_resume": report.messages_needed,
        "redo": report.redo_applied,
        "vm_rebuilt": report.vm_rebuilt,
        "scanned": report.scanned_records,
        "from_checkpoint": report.from_checkpoint,
        "resume_latency": (commit_times[0] - recovery_instant
                           if resumed else float("nan")),
        "locked_after_recovery": 0,
        "note": "all sites down; one recovers alone",
    }


def _twopc(params: Params, coordinator_reachable: bool) -> dict:
    system = TwoPCSystem(
        list(params.sites), seed=params.seed,
        link=LinkConfig(base_delay=1.0),
        config=BaselineConfig(txn_timeout=params.txn_timeout,
                              retry_period=2.0))
    for site in params.sites:
        system.add_item(f"acct_{site}", site, 100)
    coordinator, participant = params.sites[0], params.sites[1]
    # A transfer that prepares at the participant...
    system.submit(coordinator, TransactionSpec(
        ops=(TransferOp(f"acct_{coordinator}", f"acct_{participant}", 7),),
        label="in-doubt"))
    system.run_for(1.5)          # prepare delivered, vote in flight
    system.crash(participant)    # crashes while prepared
    system.run_for(40.0)         # coordinator decides meanwhile
    if not coordinator_reachable:
        system.network.partition([[coordinator],
                                  params.sites[1:]])
    messages_before = system.recovery_messages
    report = system.recover(participant)
    system.run_for(30.0)
    messages_needed = system.recovery_messages - messages_before
    locked = sum(
        1 for item in system.sites[participant].store.items().values()
        if item.locked_by is not None)
    if not coordinator_reachable:
        system.network.heal()
        system.run_for(30.0)
    locked_after_heal = sum(
        1 for item in system.sites[participant].store.items().values()
        if item.locked_by is not None)
    return {
        "messages_before_resume": max(messages_needed,
                                      report["messages_needed"]),
        "redo": 0,
        "vm_rebuilt": 0,
        "scanned": report["scanned"],
        "from_checkpoint": False,
        "resume_latency": float("nan"),
        "locked_after_recovery": locked,
        "note": (f"in-doubt items freed only after coordinator contact; "
                 f"locked after heal: {locked_after_heal}"),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The four independent recovery scenarios behind E5."""
    params = params or Params()
    return [
        ("_dvp_one", {"params": params}),
        ("_dvp_all", {"params": params}),
        ("_twopc", {"params": params, "coordinator_reachable": True}),
        ("_twopc", {"params": params, "coordinator_reachable": False}),
    ]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = evaluate_cells(EXPERIMENT, cells(params), evaluate)
    table = Table(
        "E5: recovery independence",
        ["scenario", "msgs before resume", "redo applied", "Vm rebuilt",
         "records scanned", "used ckpt", "resume latency",
         "items still locked"])
    scenarios = list(zip(
        ("dvp-one", "dvp-all", "2pc-reachable", "2pc-cut-off"), results))
    for name, stats in scenarios:
        table.add_row(
            name, stats["messages_before_resume"], stats["redo"],
            stats["vm_rebuilt"], stats["scanned"],
            "yes" if stats["from_checkpoint"] else "no",
            round(stats["resume_latency"], 2)
            if stats["resume_latency"] == stats["resume_latency"] else "-",
            stats["locked_after_recovery"])
    table.add_note("DvP resumes with zero messages even as the lone "
                   "survivor; 2PC must reach the coordinator to free "
                   "in-doubt items.")
    return table


if __name__ == "__main__":
    print(run())
