"""E6 — Hot-spot aggregate fields (Section 8, citing O'Neil's escrow).

Claim: aggregate fields updated by increments/decrements become lock
hot spots; escrow fixes the lock contention but stays centralized; DvP
"may alleviate the problem of contention by allowing several processes
to access a particular quantity simultaneously" — and does it with
purely local transactions.

Design: one hot counter, n client sites, fixed per-site arrival rate,
every transaction carrying ``work`` time (the computation done while
holding the lock/escrow). Three systems:

* ``lock``   — single central site, exclusive lock per transaction;
* ``escrow`` — single central site, O'Neil escrow accounting;
* ``DvP``    — the counter partitioned across the n sites.

Reported per n: committed throughput, commit rate, p95 latency.
Expected shape: lock saturates at 1/work regardless of n; escrow keeps
committing but pays two WAN round trips per transaction; DvP scales
linearly with n at local latency.

A second axis (Section 9's open question) compares *rebalance
policies* on a scarce variant of the hot spot: sellers with skewed
arrival rates start at a small even quota, a depot holds the marginal
reserve, and a daemon drips that reserve out on a fixed budget
(``max_ship`` per period — identical for every policy). ``static-rr``
sprays the budget uniformly; ``demand-weighted`` aims it at the
sellers whose shortfall requests the depot has seen; ``pull`` lets
short sellers fetch their deficit themselves. On-demand rescue is
deliberately slow (``ask-few(1)``, round trip longer than the
timeout) so pre-positioning — not rescue — decides the commit rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.common import BaselineConfig
from repro.baselines.escrow import CentralCounterSystem
from repro.core.domain import CounterDomain
from repro.core.rebalance import RebalanceConfig, install_rebalancing
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import DecrementOp, TransactionSpec
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver
from repro.workloads.inventory import InventoryWorkload

EXPERIMENT = "E6"


@dataclass
class Params:
    site_counts: list[int] = field(default_factory=lambda: [1, 2, 4, 8])
    arrival_rate: float = 0.08      # per site -> offered load grows with n
    work: float = 2.0               # computation while holding lock/escrow
    duration: float = 400.0
    txn_timeout: float = 25.0
    initial: int = 10_000_000       # effectively infinite: isolate locking
    seed: int = 67
    link_delay: float = 2.0
    # Rebalance-policy axis: scarce stock, skewed sellers, equal
    # shipment budget (same period and max_ship for every policy).
    rebalance_policies: list[str] = field(
        default_factory=lambda: ["static-rr", "demand-weighted", "pull"])
    rebalance_sellers: int = 5
    rebalance_quota: int = 15       # even per-seller starting stock
    rebalance_reserve: int = 125    # marginal stock held at the depot
    rebalance_rate: float = 0.025   # per unit of seller weight
    rebalance_period: float = 8.0
    rebalance_max_ship: int = 5
    rebalance_timeout: float = 8.0
    rebalance_link_delay: float = 6.0  # rescue round trip > timeout
    #: Sharded-kernel knobs (repro.sim.shard); defaults reproduce the
    #: classic single-queue run.
    shards: int = 1
    shard_workers: int = 1

    @classmethod
    def quick(cls) -> "Params":
        return cls(site_counts=[1, 4], duration=200.0,
                   rebalance_policies=["static-rr", "demand-weighted"])


def _site_names(count: int) -> list[str]:
    return [f"S{index}" for index in range(count)]


def _drive(system, sites: list[str], params: Params) -> Collector:
    workload_config = WorkloadConfig(
        arrival_rate=params.arrival_rate, duration=params.duration,
        mix=OpMix(reserve=0.75, cancel=0.25), amount_low=1, amount_high=2,
        work=params.work)
    source = InventoryWorkload(["hot"], workload_config)
    collector = Collector()
    WorkloadDriver(system.sim, system, sites, source, workload_config,
                   collector).install()
    system.run_for(params.duration + params.txn_timeout + 4 * params.work
                   + 60.0)
    return collector


def _run_central(params: Params, count: int, mode: str) -> dict:
    sites = _site_names(count)
    system = CentralCounterSystem(
        sites, central=sites[0], mode=mode, seed=params.seed,
        link=LinkConfig(base_delay=params.link_delay),
        config=BaselineConfig(txn_timeout=params.txn_timeout))
    system.add_item("hot", params.initial)
    collector = _drive(system, sites, params)
    return _stats(collector, params)


def _run_dvp(params: Params, count: int) -> dict:
    sites = _site_names(count)
    system = DvPSystem(SystemConfig(
        sites=sites, seed=params.seed, txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=params.link_delay),
        shards=params.shards, shard_workers=params.shard_workers))
    system.add_item("hot", CounterDomain(), total=params.initial)
    collector = _drive(system, sites, params)
    system.auditor.assert_ok()
    return _stats(collector, params)


def _seller_weights(count: int) -> list[int]:
    """Skewed demand: the first sellers are hot (8:4:2:1:1:... )."""
    return [2 ** max(0, 3 - index) for index in range(count)]


def _run_rebalance(params: Params, policy: str) -> dict:
    """Scarce-stock hot spot under one rebalance policy.

    Every policy gets the same shipment budget — identical period and
    ``max_ship`` — so commit-rate differences come purely from *where*
    the budget is aimed. Sellers start at an even quota (their
    auto-captured target) that the skewed demand outruns at the hot
    end; the depot's reserve, dripped out ``max_ship`` per period, is
    the only slack, and the link delay makes the on-demand path too
    slow to save a waiting sale (its grants arrive after the abort, so
    misplaced stock corrects only sluggishly). A policy has to observe
    the skew to beat round-robin here.
    """
    depot = "D"
    sellers = [f"S{index}" for index in range(params.rebalance_sellers)]
    system = DvPSystem(SystemConfig(
        sites=[depot] + sellers, seed=params.seed,
        txn_timeout=params.rebalance_timeout,
        policy="ask-few", policy_kwargs={"fanout": 1},
        link=LinkConfig(base_delay=params.rebalance_link_delay),
        shards=params.shards, shard_workers=params.shard_workers))
    split = {depot: params.rebalance_reserve}
    split.update({seller: params.rebalance_quota for seller in sellers})
    system.add_item("hot", CounterDomain(), split=split)
    # Watermarks: sellers (target = their quota, captured at start)
    # hold what they are given rather than bouncing it onward; the
    # depot (target 0) pushes its whole reserve out, budgeted.
    daemons = install_rebalancing(system, RebalanceConfig(
        period=params.rebalance_period, high_watermark=1.5,
        low_watermark=0.6, policy=policy,
        max_ship=params.rebalance_max_ship))
    daemons[depot].set_target("hot", 0)
    collector = Collector()
    rng = random.Random(params.seed)
    for seller, weight in zip(sellers, _seller_weights(len(sellers))):
        rate = params.rebalance_rate * weight
        time = 0.0
        while True:
            time += rng.expovariate(rate)
            if time >= params.duration:
                break
            amount = rng.randint(1, 2)

            def arrive(seller=seller, amount=amount) -> None:
                collector.on_submit(at=system.sim.now)
                system.submit(seller, TransactionSpec(
                    ops=(DecrementOp("hot", amount),), label="sale"),
                    collector.on_result)

            system.sim.at_site(seller, time, arrive,
                               label=f"sale:{seller}")
    system.run_for(params.duration + params.rebalance_timeout + 60.0)
    system.auditor.assert_ok()
    stats = _stats(collector, params)
    stats["shipments"] = sum(daemon.shipments + daemon.pulls
                             for daemon in daemons.values())
    return stats


def _stats(collector: Collector, params: Params) -> dict:
    summary = collector.latency_summary()
    return {
        "throughput": collector.throughput(params.duration),
        "commit_rate": collector.commit_rate(),
        "p95": summary.p95,
        "decided": len(collector.results),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (site-count × system) grid behind E6."""
    params = params or Params()
    grid: list[tuple[str, dict]] = []
    for count in params.site_counts:
        for name in ("lock", "escrow", "DvP"):
            if name == "DvP":
                grid.append(("_run_dvp",
                             {"params": params, "count": count}))
            else:
                grid.append(("_run_central",
                             {"params": params, "count": count,
                              "mode": name}))
    for policy in params.rebalance_policies:
        grid.append(("_run_rebalance",
                     {"params": params, "policy": policy}))
    return grid


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E6: hot-spot counter throughput "
        f"(work={params.work}, rate/site={params.arrival_rate})",
        ["sites", "system", "offered", "throughput", "commit%",
         "p95 latency"])
    for count in params.site_counts:
        offered = round(params.arrival_rate * count, 3)
        for name in ("lock", "escrow", "DvP"):
            stats = next(results)
            table.add_row(count, name, offered,
                          round(stats["throughput"], 3),
                          round(100 * stats["commit_rate"], 1),
                          round(stats["p95"], 1))
    weights = _seller_weights(params.rebalance_sellers)
    offered = round(params.rebalance_rate * sum(weights), 3)
    for policy in params.rebalance_policies:
        stats = next(results)
        table.add_row(1 + params.rebalance_sellers, f"DvP+{policy}",
                      offered, round(stats["throughput"], 3),
                      round(100 * stats["commit_rate"], 1),
                      round(stats["p95"], 1))
    table.add_note("lock saturates near 1/work; escrow overlaps clients "
                   "but pays central round trips; DvP commits locally.")
    table.add_note("DvP+<policy> rows: scarce depot stock, skewed "
                   "sellers, equal shipment budget — demand-aware "
                   "policies out-commit static-rr by aiming it.")
    return table


if __name__ == "__main__":
    print(run())
