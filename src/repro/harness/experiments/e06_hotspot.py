"""E6 — Hot-spot aggregate fields (Section 8, citing O'Neil's escrow).

Claim: aggregate fields updated by increments/decrements become lock
hot spots; escrow fixes the lock contention but stays centralized; DvP
"may alleviate the problem of contention by allowing several processes
to access a particular quantity simultaneously" — and does it with
purely local transactions.

Design: one hot counter, n client sites, fixed per-site arrival rate,
every transaction carrying ``work`` time (the computation done while
holding the lock/escrow). Three systems:

* ``lock``   — single central site, exclusive lock per transaction;
* ``escrow`` — single central site, O'Neil escrow accounting;
* ``DvP``    — the counter partitioned across the n sites.

Reported per n: committed throughput, commit rate, p95 latency.
Expected shape: lock saturates at 1/work regardless of n; escrow keeps
committing but pays two WAN round trips per transaction; DvP scales
linearly with n at local latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.common import BaselineConfig
from repro.baselines.escrow import CentralCounterSystem
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver
from repro.workloads.inventory import InventoryWorkload

EXPERIMENT = "E6"


@dataclass
class Params:
    site_counts: list[int] = field(default_factory=lambda: [1, 2, 4, 8])
    arrival_rate: float = 0.08      # per site -> offered load grows with n
    work: float = 2.0               # computation while holding lock/escrow
    duration: float = 400.0
    txn_timeout: float = 25.0
    initial: int = 10_000_000       # effectively infinite: isolate locking
    seed: int = 67
    link_delay: float = 2.0

    @classmethod
    def quick(cls) -> "Params":
        return cls(site_counts=[1, 4], duration=200.0)


def _site_names(count: int) -> list[str]:
    return [f"S{index}" for index in range(count)]


def _drive(system, sites: list[str], params: Params) -> Collector:
    workload_config = WorkloadConfig(
        arrival_rate=params.arrival_rate, duration=params.duration,
        mix=OpMix(reserve=0.75, cancel=0.25), amount_low=1, amount_high=2,
        work=params.work)
    source = InventoryWorkload(["hot"], workload_config)
    collector = Collector()
    WorkloadDriver(system.sim, system, sites, source, workload_config,
                   collector).install()
    system.run_for(params.duration + params.txn_timeout + 4 * params.work
                   + 60.0)
    return collector


def _run_central(params: Params, count: int, mode: str) -> dict:
    sites = _site_names(count)
    system = CentralCounterSystem(
        sites, central=sites[0], mode=mode, seed=params.seed,
        link=LinkConfig(base_delay=params.link_delay),
        config=BaselineConfig(txn_timeout=params.txn_timeout))
    system.add_item("hot", params.initial)
    collector = _drive(system, sites, params)
    return _stats(collector, params)


def _run_dvp(params: Params, count: int) -> dict:
    sites = _site_names(count)
    system = DvPSystem(SystemConfig(
        sites=sites, seed=params.seed, txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=params.link_delay)))
    system.add_item("hot", CounterDomain(), total=params.initial)
    collector = _drive(system, sites, params)
    system.auditor.assert_ok()
    return _stats(collector, params)


def _stats(collector: Collector, params: Params) -> dict:
    summary = collector.latency_summary()
    return {
        "throughput": collector.throughput(params.duration),
        "commit_rate": collector.commit_rate(),
        "p95": summary.p95,
        "decided": len(collector.results),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (site-count × system) grid behind E6."""
    params = params or Params()
    grid: list[tuple[str, dict]] = []
    for count in params.site_counts:
        for name in ("lock", "escrow", "DvP"):
            if name == "DvP":
                grid.append(("_run_dvp",
                             {"params": params, "count": count}))
            else:
                grid.append(("_run_central",
                             {"params": params, "count": count,
                              "mode": name}))
    return grid


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E6: hot-spot counter throughput "
        f"(work={params.work}, rate/site={params.arrival_rate})",
        ["sites", "system", "offered", "throughput", "commit%",
         "p95 latency"])
    for count in params.site_counts:
        offered = round(params.arrival_rate * count, 3)
        for name in ("lock", "escrow", "DvP"):
            stats = next(results)
            table.add_row(count, name, offered,
                          round(stats["throughput"], 3),
                          round(100 * stats["commit_rate"], 1),
                          round(stats["p95"], 1))
    table.add_note("lock saturates near 1/work; escrow overlaps clients "
                   "but pays central round trips; DvP commits locally.")
    return table


if __name__ == "__main__":
    print(run())
