"""E2 — Availability during network partitions.

Claim (Sections 3, 8): with DvP "each site is able to access at least
its local quota", so *every* partition group keeps committing
transactions from local value; replicated designs serve at most one
group (the quorum-holding one, or the primary's) and starve the rest.

Design: the same reserve-heavy airline arrival process runs against
DvP, quorum replication and primary-copy replication while the network
is split into k groups for the middle of the run. We report the commit
rate *inside the partition window*, overall and for the worst-served
group.

Expected shape: DvP stays near its unpartitioned commit rate in every
group; quorum serves only a majority group (and nobody when k groups
are all minorities); primary-copy serves only the primary's group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.common import BaselineConfig
from repro.baselines.primarycopy import PrimaryCopySystem
from repro.baselines.quorum import QuorumSystem
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver

EXPERIMENT = "E2"


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["S0", "S1", "S2", "S3"])
    groupings: list[int] = field(default_factory=lambda: [1, 2, 4])
    window: tuple[float, float] = (60.0, 260.0)
    run_length: float = 320.0
    arrival_rate: float = 0.025
    txn_timeout: float = 12.0
    seats: int = 100_000  # plentiful: isolate availability, not stock-outs
    seed: int = 23
    link_delay: float = 1.0

    @classmethod
    def quick(cls) -> "Params":
        return cls(groupings=[2, 4], window=(40.0, 160.0),
                   run_length=200.0)


def _groups(sites: list[str], count: int) -> list[list[str]]:
    """Split sites into *count* contiguous groups."""
    size = len(sites) // count
    return [sites[index * size:(index + 1) * size]
            for index in range(count)]


def _window_rates(collector: Collector, window: tuple[float, float],
                  site_group: dict[str, int]) -> tuple[float, float]:
    """(overall, worst-group) commit rate for submissions in window."""
    in_window = collector.in_window(*window)
    per_group: dict[int, list[bool]] = {}
    for result in in_window.results:
        per_group.setdefault(site_group[result.site], []).append(
            result.committed)
    if not per_group:
        return 0.0, 0.0
    group_rates = [sum(flags) / len(flags)
                   for flags in per_group.values()]
    return in_window.commit_rate(), min(group_rates)


def _run_one(name: str, params: Params, group_count: int) -> tuple:
    groups = _groups(params.sites, group_count)
    link = LinkConfig(base_delay=params.link_delay)
    workload_config = WorkloadConfig(
        arrival_rate=params.arrival_rate, duration=params.run_length,
        mix=OpMix(reserve=0.7, cancel=0.3))
    source = AirlineWorkload(["flightA"], workload_config)
    collector = Collector()

    if name == "DvP":
        system = DvPSystem(SystemConfig(
            sites=list(params.sites), seed=params.seed,
            txn_timeout=params.txn_timeout, link=link))
        system.add_item("flightA", CounterDomain(), total=params.seats)
    elif name == "quorum":
        system = QuorumSystem(list(params.sites), seed=params.seed,
                              link=link,
                              config=BaselineConfig(
                                  txn_timeout=params.txn_timeout))
        system.add_item("flightA", params.seats)
    else:
        system = PrimaryCopySystem(list(params.sites), seed=params.seed,
                                   link=link,
                                   config=BaselineConfig(
                                       txn_timeout=params.txn_timeout))
        system.add_item("flightA", params.sites[0], params.seats)

    driver = WorkloadDriver(system.sim, system, params.sites, source,
                            workload_config, collector)
    driver.install()
    if group_count > 1:
        system.sim.at(params.window[0],
                      lambda: system.network.partition(groups))
        system.sim.at(params.window[1], system.network.heal)
    system.sim.run_until(params.run_length + params.txn_timeout + 30.0)

    site_group = {site: index for index, group in enumerate(groups)
                  for site in group}
    overall, worst = _window_rates(collector, params.window, site_group)
    if name == "DvP":
        system.auditor.assert_ok()
    return overall, worst


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (system × grouping) grid behind E2."""
    params = params or Params()
    return [("_run_one", {"name": name, "params": params,
                          "group_count": group_count})
            for group_count in params.groupings
            for name in ("DvP", "quorum", "primary-copy")]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E2: commit rate inside the partition window",
        ["groups", "system", "window commit%", "worst-group commit%"])
    for group_count in params.groupings:
        for name in ("DvP", "quorum", "primary-copy"):
            overall, worst = next(results)
            table.add_row(group_count, name, round(100 * overall, 1),
                          round(100 * worst, 1))
    table.add_note("groups=1 is the no-failure control; quorum needs a "
                   "majority group; the primary lives in the first group.")
    return table


if __name__ == "__main__":
    print(run())
