"""E10 — Conc1 vs Conc2 (and what Conc2 costs in assumptions).

Claim (Section 6): Conc1 (timestamp ordering, never waits) works on any
network; Conc2 (strict 2PL, FIFO waits) avoids many aborts but is only
sound "under certain reasonable characteristics of the system" —
message-order synchronicity and atomic ordered broadcast.

Design: the same mixed workload runs under

* conc1 on the lossy asynchronous network (the paper's base system),
* conc1 on the synchronous network (isolates the network effect),
* conc2 on the synchronous network it requires,
* conc2 on the asynchronous network — OUTSIDE its assumptions; its
  serializability report is shown, not asserted.

Reported: commit rate, throughput, abort reasons, serializability
verdict (read mismatches / negative dips from the replay checker).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.harness.serial import check_serializable
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver

EXPERIMENT = "E10"

#: (scheme, synchronous) cases in display order.
CASES = [
    ("conc1", False), ("conc1", True),
    ("conc2", True), ("conc2", False),
]


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["S0", "S1", "S2", "S3"])
    flights: list[str] = field(
        default_factory=lambda: ["flightA", "flightB"])
    duration: float = 300.0
    arrival_rate: float = 0.2
    txn_timeout: float = 20.0
    seats: int = 150
    seed: int = 103
    loss: float = 0.05

    @classmethod
    def quick(cls) -> "Params":
        return cls(duration=150.0, arrival_rate=0.15)


def _run_one(params: Params, scheme: str, synchronous: bool) -> dict:
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed, cc=scheme,
        synchronous=synchronous, sync_delay=1.0,
        txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=1.0, jitter=1.0,
                        loss_probability=params.loss)))
    initial, domains = {}, {}
    for flight in params.flights:
        system.add_item(flight, CounterDomain(), total=params.seats)
        initial[flight] = params.seats
        domains[flight] = CounterDomain()
    workload_config = WorkloadConfig(
        arrival_rate=params.arrival_rate, duration=params.duration,
        mix=OpMix(reserve=0.45, cancel=0.35, transfer=0.12, read=0.08))
    source = AirlineWorkload(list(params.flights), workload_config)
    collector = Collector()
    WorkloadDriver(system.sim, system, params.sites, source,
                   workload_config, collector).install()
    system.run_for(params.duration + params.txn_timeout + 300.0)
    report = check_serializable(collector.results, initial, domains)
    reasons = collector.abort_reasons()
    return {
        "commit_rate": collector.commit_rate(),
        "throughput": collector.throughput(params.duration),
        "ts_aborts": reasons.get("timestamp-refused", 0)
        + reasons.get("locked", 0),
        "timeout_aborts": reasons.get("timeout", 0),
        "violations": (len(report.read_mismatches)
                       + len(report.negative_dips)),
        "reads": report.reads_checked,
        "conserved": system.auditor.all_ok(),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (scheme × network) grid behind E10."""
    params = params or Params()
    return [("_run_one", {"params": params, "scheme": scheme,
                          "synchronous": synchronous})
            for scheme, synchronous in CASES]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E10: concurrency control schemes and their assumptions",
        ["scheme", "network", "commit%", "throughput", "cc aborts",
         "timeout aborts", "reads", "serializability violations",
         "conserved"])
    for scheme, synchronous in CASES:
        stats = next(results)
        table.add_row(
            scheme, "sync" if synchronous else "async",
            round(100 * stats["commit_rate"], 1),
            round(stats["throughput"], 3),
            stats["ts_aborts"], stats["timeout_aborts"], stats["reads"],
            stats["violations"], "yes" if stats["conserved"] else "NO")
    table.add_note("conc2/async runs outside its soundness assumptions: "
                   "its violation count is reported, not asserted. "
                   "Conservation holds regardless (redistribution can "
                   "never create value).")
    return table


if __name__ == "__main__":
    print(run())
