"""E9 — Timeout pessimism and the retry variation.

Claim (Section 5): "This step exemplifies the pessimism that we
incorporate ... a timeout always results in the abortion of the
transaction. There are variations to our scheme where such a drastic
action is not required. For example, the requests could be re-tried a
few more times."

Design: redistribution-dependent workload on a lossy network, sweeping
the timeout budget and the number of request retry rounds within it.
Reported per (timeout, retries): commit rate, mean commit latency,
worst-case decision time (== the timeout: the non-blocking bound), and
messages per committed transaction.

Expected shape: a frontier — longer timeouts and more retries buy
commit rate at the price of worst-case decision time and message
traffic; the bound is always honoured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver
from repro.workloads.inventory import InventoryWorkload

EXPERIMENT = "E9"


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["S0", "S1", "S2", "S3"])
    timeouts: list[float] = field(
        default_factory=lambda: [4.0, 8.0, 16.0, 32.0])
    retry_counts: list[int] = field(default_factory=lambda: [0, 2])
    loss: float = 0.35
    duration: float = 300.0
    arrival_rate: float = 0.06
    total: int = 60
    seed: int = 97

    @classmethod
    def quick(cls) -> "Params":
        return cls(timeouts=[4.0, 16.0], retry_counts=[0, 2],
                   duration=150.0)


def _run_one(params: Params, timeout: float, retries: int) -> dict:
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed,
        txn_timeout=timeout, request_retries=retries,
        retransmit_period=3.0,
        link=LinkConfig(base_delay=1.0, jitter=1.0,
                        loss_probability=params.loss)))
    system.add_item("stock", CounterDomain(), total=params.total)
    workload_config = WorkloadConfig(
        arrival_rate=params.arrival_rate, duration=params.duration,
        mix=OpMix(reserve=0.5, cancel=0.5), amount_low=4, amount_high=14)
    source = InventoryWorkload(["stock"], workload_config)
    collector = Collector()
    WorkloadDriver(system.sim, system, params.sites, source,
                   workload_config, collector).install()
    system.run_for(params.duration + timeout + 300.0)
    system.auditor.assert_ok()
    committed = collector.committed
    latencies = [result.latency for result in committed]
    return {
        "commit_rate": collector.commit_rate(),
        "mean_latency": (sum(latencies) / len(latencies)
                         if latencies else float("nan")),
        "max_decision": collector.max_latency(),
        "msgs_per_commit": (system.network.total_sent / len(committed)
                            if committed else float("inf")),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (timeout × retries) grid behind E9."""
    params = params or Params()
    return [("_run_one", {"params": params, "timeout": timeout,
                          "retries": retries})
            for timeout in params.timeouts
            for retries in params.retry_counts]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        f"E9: timeout/retry frontier (loss={params.loss})",
        ["timeout", "retries", "commit%", "mean commit t",
         "max decision t", "msgs/commit"])
    for timeout in params.timeouts:
        for retries in params.retry_counts:
            stats = next(results)
            table.add_row(timeout, retries,
                          round(100 * stats["commit_rate"], 1),
                          round(stats["mean_latency"], 2),
                          round(stats["max_decision"], 2),
                          round(stats["msgs_per_commit"], 2))
    table.add_note("max decision time never exceeds the timeout — the "
                   "non-blocking bound holds at every point of the "
                   "frontier.")
    return table


if __name__ == "__main__":
    print(run())
