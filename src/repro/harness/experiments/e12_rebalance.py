"""E12 — Proactive rebalancing vs demand-driven redistribution.

Claim context (Sections 3 and 9): the base protocol moves value only
on demand ("requests other sites ... in the case of being unable to
proceed"), and the paper leaves "the best ways to distribute the data"
open. The :mod:`repro.core.rebalance` daemon is the natural proactive
complement: ship surplus above the initial quota to peers before anyone
asks.

Design: a lopsided steady state — cancellations (increments) land at
one "returns depot" site while sales (decrements) happen everywhere —
so value continually pools where it is not needed. Swept: daemon off /
daemon at several periods × rebalance policy (``static-rr`` sprays
surplus round-robin, ``demand-weighted`` aims it at the sites whose
shortfall requests the depot has seen, ``pull`` has short sites fetch
the deficit themselves). Reported: sales commit rate, mean sale
latency, demand requests sent, daemon shipments+pulls, total messages
(the daemon's traffic is not free), and the conservation verdict.

Expected shape: without rebalancing, sales at non-depot sites starve
(every one needs an on-demand gather); with it, commit rate and latency
improve at the cost of background message traffic, with diminishing
returns as the period shrinks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.rebalance import RebalanceConfig, install_rebalancing
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig

EXPERIMENT = "E12"


@dataclass
class Params:
    sites: list[str] = field(
        default_factory=lambda: ["depot", "S1", "S2", "S3"])
    periods: list[float | None] = field(
        default_factory=lambda: [None, 40.0, 20.0, 10.0])
    policies: list[str] = field(
        default_factory=lambda: ["static-rr", "demand-weighted", "pull"])
    duration: float = 400.0
    sale_rate: float = 0.05        # per non-depot site
    return_rate: float = 0.25      # at the depot
    total: int = 40                # scarce: distribution matters
    txn_timeout: float = 12.0
    seed: int = 127

    @classmethod
    def quick(cls) -> "Params":
        return cls(periods=[None, 20.0], duration=200.0,
                   policies=["static-rr", "demand-weighted"])


def _run_one(params: Params, period: float | None,
             policy: str = "static-rr") -> dict:
    system = DvPSystem(SystemConfig(
        sites=list(params.sites), seed=params.seed,
        txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=1.0, jitter=0.5)))
    system.add_item("stock", CounterDomain(), total=params.total)
    daemons = {}
    if period is not None:
        daemons = install_rebalancing(system, RebalanceConfig(
            period=period, high_watermark=1.5, policy=policy))
    sales = Collector()
    rng = random.Random(params.seed)
    depot = params.sites[0]
    # Returns pour into the depot...
    time = 0.0
    while True:
        time += rng.expovariate(params.return_rate)
        if time >= params.duration:
            break
        system.sim.at(time, lambda: system.submit(depot, TransactionSpec(
            ops=(IncrementOp("stock", rng.randint(1, 2)),),
            label="return")))
    # ...while sales happen at the other sites.
    for site in params.sites[1:]:
        time = 0.0
        while True:
            time += rng.expovariate(params.sale_rate)
            if time >= params.duration:
                break

            def arrive(s=site):
                sales.on_submit(at=system.sim.now)
                system.submit(s, TransactionSpec(
                    ops=(DecrementOp("stock", rng.randint(1, 3)),),
                    label="sale"), sales.on_result)

            system.sim.at(time, arrive)
    system.run_until(params.duration + params.txn_timeout + 200.0)
    system.auditor.assert_ok()
    requests = sum(site.requests_honored + site.requests_ignored
                   for site in system.sites.values())
    latencies = [result.latency for result in sales.committed]
    return {
        "commit": sales.commit_rate(),
        "latency": (sum(latencies) / len(latencies)
                    if latencies else float("nan")),
        "requests": requests,
        "ships": sum(daemon.shipments + daemon.pulls
                     for daemon in daemons.values()),
        "messages": system.network.total_sent,
    }


def _grid(params: Params) -> list[tuple[float | None, str]]:
    """(period, policy) rows: one daemon-off row, then the sweep."""
    rows: list[tuple[float | None, str]] = []
    for period in params.periods:
        if period is None:
            rows.append((None, "static-rr"))
        else:
            rows.extend((period, policy) for policy in params.policies)
    return rows


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (period × policy) grid behind E12."""
    params = params or Params()
    return [("_run_one", {"params": params, "period": period,
                          "policy": policy})
            for period, policy in _grid(params)]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E12: proactive rebalancing under a returns-depot imbalance",
        ["daemon period", "policy", "sale commit%", "sale mean latency",
         "demand requests", "ships", "total msgs"])
    for period, policy in _grid(params):
        stats = next(results)
        table.add_row("off" if period is None else period,
                      "-" if period is None else policy,
                      round(100 * stats["commit"], 1),
                      round(stats["latency"], 2),
                      stats["requests"], stats["ships"],
                      stats["messages"])
    table.add_note("value pools at the depot; the daemon ships surplus "
                   "before sales have to go asking for it. "
                   "demand-weighted aims the same shipments at the "
                   "sites that have been short; pull fetches on need.")
    return table


if __name__ == "__main__":
    print(run())
