"""E1 — Non-blocking transaction processing under partitions.

Claim (Sections 2, 5): with DvP every transaction reaches a local
decision within a bounded number of local steps — operationally, within
its timeout — no matter when a partition strikes; with a traditional
2PC system the *client* may still get a timely abort from its
coordinator, but prepared participants hold locks for as long as the
partition lasts (unbounded).

Design: the same cross-site-transfer arrival process is run against a
DvP system and a 2PC system. A partition splits the sites mid-run for a
swept duration. We report, per partition duration:

* worst-case client decision time (submit -> commit/abort);
* worst-case lock-hold / blocked duration at any site;
* how many transactions were still undecided (or still holding locks)
  when the partition healed.

Expected shape: DvP's two worst cases stay pinned at the timeout while
2PC's lock-hold grows linearly with the partition duration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.common import BaselineConfig
from repro.baselines.twopc import TwoPCSystem
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    TransactionSpec,
    TransferOp,
)
from repro.harness.parallel import evaluate_cells
from repro.metrics.collector import Collector
from repro.metrics.tables import Table
from repro.net.link import LinkConfig
from repro.workloads.base import WorkloadConfig, WorkloadDriver

EXPERIMENT = "E1"


@dataclass
class Params:
    sites: list[str] = field(default_factory=lambda: ["W", "X", "Y", "Z"])
    partition_durations: list[float] = field(
        default_factory=lambda: [20.0, 50.0, 100.0, 200.0])
    partition_start: float = 40.0
    arrival_rate: float = 0.15
    txn_timeout: float = 15.0
    initial_per_item: int = 120
    seed: int = 11
    link_delay: float = 2.0
    link_jitter: float = 1.0
    #: Sharded-kernel knobs (repro.sim.shard); defaults reproduce the
    #: classic single-queue run. The determinism suite reruns this
    #: experiment with several worker counts and pins the fingerprint.
    shards: int = 1
    shard_workers: int = 1

    @classmethod
    def quick(cls) -> "Params":
        return cls(partition_durations=[20.0, 80.0], arrival_rate=0.10)


class CrossSiteTransfers:
    """Each arrival moves value from the site's own item to another's.

    Items are named after sites; under 2PC item ``acct_S`` is homed at
    site S, so a transfer is the classic multi-site write that needs
    atomic commitment. Under DvP the same spec touches two local
    fragments — single-site, non-blocking.
    """

    def __init__(self, sites: list[str]) -> None:
        self.sites = sites

    @staticmethod
    def item_of(site: str) -> str:
        return f"acct_{site}"

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        other = rng.choice([name for name in self.sites if name != site])
        amount = rng.randint(1, 4)
        return TransactionSpec(
            ops=(TransferOp(self.item_of(site), self.item_of(other),
                            amount),),
            label="transfer")


def _plant_victim(system, params: Params, spec: TransactionSpec,
                  collector: Collector) -> None:
    """Guarantee one transaction is mid-protocol when the partition
    strikes: submitted one link-delay early, its first cross-group
    round trip straddles the cut. The spec is each system's vulnerable
    shape: for 2PC a cross-home transfer (prepare lands, decision
    cannot); for DvP a decrement that must gather remote value (its
    requests land, the Vm cannot — and the timeout aborts it)."""
    victim_at = params.partition_start - params.link_delay - 0.5

    def submit() -> None:
        collector.on_submit(at=system.sim.now)
        system.submit(params.sites[0], spec, collector.on_result)

    system.sim.at_site(params.sites[0], victim_at, submit,
                       label="victim")


def _run_dvp(params: Params, duration: float) -> dict:
    config = SystemConfig(
        sites=list(params.sites), seed=params.seed,
        txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=params.link_delay,
                        jitter=params.link_jitter),
        shards=params.shards, shard_workers=params.shard_workers)
    system = DvPSystem(config)
    source = CrossSiteTransfers(params.sites)
    for site in params.sites:
        system.add_item(source.item_of(site), CounterDomain(),
                        total=params.initial_per_item)
    collector = Collector()
    run_length = params.partition_start + duration + 40.0
    driver = WorkloadDriver(
        system.sim, system, params.sites, source,
        WorkloadConfig(arrival_rate=params.arrival_rate,
                       duration=run_length), collector)
    driver.install()
    victim_spec = TransactionSpec(
        ops=(DecrementOp(source.item_of(params.sites[0]),
                         params.initial_per_item),),
        label="victim")
    _plant_victim(system, params, victim_spec, collector)
    half = len(params.sites) // 2
    # Topology-wide events run at consistent global cuts under sharding
    # (plain `at` on the single-queue kernel).
    system.sim.at_global(params.partition_start,
                         lambda: system.network.partition(
                             [params.sites[:half], params.sites[half:]]))
    system.sim.at_global(params.partition_start + duration,
                         system.network.heal)
    heal_at = params.partition_start + duration
    system.run_until(heal_at)
    # Resources blocked beyond the protocol's own bound at heal time:
    # active transactions older than the timeout (DvP: provably none).
    blocked_over_bound = sum(
        1 for site in system.sites.values()
        for txn in site.active.values()
        if system.sim.now - txn.submitted_at > params.txn_timeout + 1e-9)
    system.run_until(run_length)
    system.run_for(params.txn_timeout + 60.0)
    # In DvP the only "lock hold" is a transaction's own lifetime.
    max_hold = collector.max_latency()
    system.auditor.assert_ok()
    return {
        "decided": len(collector.results),
        "max_decision": collector.max_latency(),
        "max_lock_hold": max_hold,
        "blocked_at_heal": blocked_over_bound,
        "commit_rate": collector.commit_rate(),
    }


def _run_twopc(params: Params, duration: float) -> dict:
    system = TwoPCSystem(
        list(params.sites), seed=params.seed,
        link=LinkConfig(base_delay=params.link_delay,
                        jitter=params.link_jitter),
        config=BaselineConfig(txn_timeout=params.txn_timeout))
    source = CrossSiteTransfers(params.sites)
    for site in params.sites:
        system.add_item(source.item_of(site), site, params.initial_per_item)
    collector = Collector()
    run_length = params.partition_start + duration + 40.0
    driver = WorkloadDriver(
        system.sim, system, params.sites, source,
        WorkloadConfig(arrival_rate=params.arrival_rate,
                       duration=run_length), collector)
    driver.install()
    victim_spec = TransactionSpec(
        ops=(TransferOp(source.item_of(params.sites[0]),
                        source.item_of(params.sites[-1]), 2),),
        label="victim")
    _plant_victim(system, params, victim_spec, collector)
    half = len(params.sites) // 2
    system.sim.at(params.partition_start,
                  lambda: system.network.partition(
                      [params.sites[:half], params.sites[half:]]))
    heal_at = params.partition_start + duration
    system.sim.at(heal_at, system.network.heal)
    system.run_for(heal_at - system.sim.now)
    # Prepared participants already blocked past the protocol timeout:
    # these hold locks with no unilateral way out.
    blocked_over_bound = sum(
        1 for _site, _txn, age in system.currently_blocked()
        if age > system.config.txn_timeout + 1e-9)
    system.run_for(run_length - system.sim.now + params.txn_timeout + 60.0)
    max_hold = max((hold for _s, _t, hold in system.lock_holds),
                   default=0.0)
    return {
        "decided": len(collector.results),
        "max_decision": collector.max_latency(),
        "max_lock_hold": max_hold,
        "blocked_at_heal": blocked_over_bound,
        "commit_rate": collector.commit_rate(),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (system × partition-duration) grid behind E1."""
    params = params or Params()
    return [(fn, {"params": params, "duration": duration})
            for duration in params.partition_durations
            for fn in ("_run_dvp", "_run_twopc")]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E1: non-blocking behaviour across partition durations",
        ["partition", "system", "txns", "commit%", "max decision t",
         "max lock hold", "blocked>bound at heal"])
    for duration in params.partition_durations:
        for name in ("DvP", "2PC"):
            stats = next(results)
            table.add_row(
                duration, name, stats["decided"],
                round(100 * stats["commit_rate"], 1),
                round(stats["max_decision"], 1),
                round(stats["max_lock_hold"], 1),
                stats["blocked_at_heal"])
    table.add_note(
        f"DvP decision time and lock hold are bounded by the timeout "
        f"({params.txn_timeout}); 2PC lock holds track the partition.")
    return table


if __name__ == "__main__":
    print(run())
