"""E7 — The cost of reading the full value.

Claim (Sections 3, 8): "there is a high overhead in reading the entire
value of a particular data item" — a full read must drain every remote
fragment (requests to all sites, a Vm from each, freezes at every
responder), while a partitionable update is usually free of any
network traffic at all.

Design: for each site count n, scatter value across the sites with a
warm-up churn, quiesce, then issue (a) one local update and (b) one
full read, measuring messages sent and latency for each in isolation.
A second phase measures the *collateral* cost: the abort rate of
update traffic while a read (and its freezes) is in progress.

Expected shape: update cost stays O(1)/zero-message; read cost grows
linearly in n (2n request+drain messages plus acks) and read-time
freezes abort concurrent updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.harness.parallel import evaluate_cells
from repro.metrics.tables import Table
from repro.net.link import LinkConfig

EXPERIMENT = "E7"


@dataclass
class Params:
    site_counts: list[int] = field(default_factory=lambda: [2, 4, 8, 16])
    total: int = 1000
    txn_timeout: float = 40.0
    read_freeze: float = 40.0
    seed: int = 71
    link_delay: float = 1.0

    @classmethod
    def quick(cls) -> "Params":
        return cls(site_counts=[2, 8])


def _build(params: Params, count: int) -> DvPSystem:
    sites = [f"S{index}" for index in range(count)]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=params.seed, txn_timeout=params.txn_timeout,
        read_freeze=params.read_freeze,
        link=LinkConfig(base_delay=params.link_delay)))
    system.add_item("pool", CounterDomain(), total=params.total)
    # Churn so fragments are uneven (each site has touched the item).
    rng = system.sim.rng.stream("e07-churn")
    for index, site in enumerate(sites):
        amount = rng.randint(1, 5)
        system.sim.at(index * 2.0 + 0.25, lambda s=site, a=amount:
                      system.submit(s, TransactionSpec(
                          ops=(DecrementOp("pool", a),), label="churn")))
    system.run_for(count * 2.0 + 30.0)
    return system


def _measure(system: DvPSystem, spec: TransactionSpec) -> tuple[float, int,
                                                                bool]:
    """(latency, messages, committed) for one transaction in isolation."""
    sent_before = system.network.total_sent
    outcomes = []
    system.submit(list(system.sites)[0], spec, outcomes.append)
    system.run_for(system.config.txn_timeout + 120.0)
    result = outcomes[0]
    return (result.latency, system.network.total_sent - sent_before,
            result.committed)


def _collateral(params: Params, count: int) -> float:
    """Abort rate of update traffic racing one full read."""
    system = _build(params, count)
    sites = list(system.sites)
    outcomes = []
    start = system.sim.now
    system.submit(sites[0], TransactionSpec(
        ops=(ReadFullOp("pool"),), label="read"), outcomes.append)
    # Updates at every other site while the read's freezes are live.
    for offset, site in enumerate(sites[1:]):
        system.sim.at(start + 2.0 + offset * 0.5,
                      lambda s=site: system.submit(s, TransactionSpec(
                          ops=(IncrementOp("pool", 1),), label="racer"),
                          outcomes.append))
    system.run_for(params.txn_timeout + params.read_freeze + 120.0)
    racers = [result for result in outcomes if result.label == "racer"]
    if not racers:
        return 0.0
    return sum(1 for result in racers if not result.committed) / len(racers)


def _cell(params: Params, count: int) -> dict:
    """All E7 measurements for one site count (one grid cell)."""
    system = _build(params, count)
    update_latency, update_msgs, _ok = _measure(
        system, TransactionSpec(ops=(IncrementOp("pool", 3),),
                                label="update"))
    system2 = _build(params, count)
    read_latency, read_msgs, read_ok = _measure(
        system2, TransactionSpec(ops=(ReadFullOp("pool"),),
                                 label="read"))
    return {
        "update_latency": update_latency,
        "update_msgs": update_msgs,
        "read_latency": read_latency,
        "read_msgs": read_msgs,
        "read_ok": read_ok,
        "collateral": _collateral(params, count),
    }


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent site-count grid behind E7."""
    params = params or Params()
    return [("_cell", {"params": params, "count": count})
            for count in params.site_counts]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E7: full-read cost vs update cost as sites grow",
        ["sites", "update msgs", "update t", "read msgs", "read t",
         "read ok", "racer abort% during read"])
    for count in params.site_counts:
        stats = next(results)
        table.add_row(count, stats["update_msgs"],
                      round(stats["update_latency"], 2),
                      stats["read_msgs"], round(stats["read_latency"], 2),
                      "yes" if stats["read_ok"] else "no",
                      round(100 * stats["collateral"], 1))
    table.add_note("read messages grow ~3n (request + drain + ack per "
                   "peer); updates on a funded fragment cost zero "
                   "messages; freezes abort concurrent update traffic "
                   "under Conc1.")
    return table


if __name__ == "__main__":
    print(run())
