"""One module per experiment; see DESIGN.md §4 for the index.

Modules are imported lazily so that running one experiment never pays
for (or breaks on) the others.
"""

from __future__ import annotations

import importlib

_MODULES = {
    "E1": "e01_nonblocking",
    "E2": "e02_availability",
    "E3": "e03_vm_delivery",
    "E4": "e04_serializability",
    "E5": "e05_recovery",
    "E6": "e06_hotspot",
    "E7": "e07_read_cost",
    "E8": "e08_policies",
    "E9": "e09_timeouts",
    "E10": "e10_cc_schemes",
    "E11": "e11_hybrid",
    "E12": "e12_rebalance",
    "E13": "e13_reshard",
    "E14": "e14_serving",
    "E15": "e15_commit",
    "E16": "e16_reads",
}


def get(experiment_id: str):
    """Import and return the module for an experiment id ("E1".."E10")."""
    name = _MODULES[experiment_id.upper()]
    return importlib.import_module(f"repro.harness.experiments.{name}")


def all_ids() -> list[str]:
    return list(_MODULES)
