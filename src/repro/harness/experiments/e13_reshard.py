"""E13 — Elastic topology: commit rate under reshard-under-load.

Claim context (Section 9 and docs/PARTITIONING.md): the paper leaves
"the best ways to distribute the data" open, and data-value
partitioning makes redistribution cheap precisely because moving value
is just another transfer-mode Vm. This experiment stresses the elastic
extreme: while a decrement workload runs at every site, a new site
joins mid-run and an original site is decommissioned shortly after —
each reshard re-partitioning the directory and migrating fragment
value through ordinary Vm traffic, fenced behind in-flight old-epoch
transactions.

Design: N sites (16–64) on the sharded kernel, a consistent-hash
directory with a few replicas per item, Poisson decrements everywhere.
``add_site`` fires at 35% of the horizon and ``remove_site`` at 60%
(waiting out any still-running migration), splitting commits into
before/during/after phases by submission time. Reported per cell:
phase commit rates, migration shipments and migrated value, directory
epochs, total messages, and the conservation verdict (mid-run
``verify_full`` probes plus the incremental auditor at quiescence).

Expected shape: commit rate dips slightly *during* the reshard window
(value in migration Vm is unavailable until accepted; the epoch fence
delays moves, not transactions) and recovers after; migration traffic
scales with the value the leaver held plus what the joiner gains —
roughly 1/N of the total under consistent hashing, not a full
reshuffle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
)
from repro.harness.parallel import evaluate_cells
from repro.metrics.tables import Table
from repro.net.link import LinkConfig

EXPERIMENT = "E13"

#: Horizon fractions of the two topology changes and the probes.
ADD_AT = 0.35
REMOVE_AT = 0.60
PROBE_FRACTIONS = (0.3, 0.5, 0.8)


@dataclass
class Params:
    site_counts: list[int] = field(default_factory=lambda: [16, 32, 64])
    reshard: list[bool] = field(default_factory=lambda: [False, True])
    items: int = 6
    replicas: int = 3
    total: int = 240               # per item, spread over its owners
    duration: float = 300.0
    rate: float = 0.02             # decrement arrivals per site
    txn_timeout: float = 12.0
    shards: int = 4
    seed: int = 211

    @classmethod
    def quick(cls) -> "Params":
        return cls(site_counts=[16], items=4, duration=150.0,
                   shards=2)


def _run_one(params: Params, sites: int, reshard: bool) -> dict:
    names = [f"S{index}" for index in range(sites)]
    system = DvPSystem(SystemConfig(
        sites=names, seed=params.seed,
        txn_timeout=params.txn_timeout,
        link=LinkConfig(base_delay=1.0, jitter=0.5),
        shards=params.shards,
        partitioner="consistent", replicas=params.replicas))
    items = [f"item{index}" for index in range(params.items)]
    for item in items:
        system.add_item(item, CounterDomain(), total=params.total)

    results = []
    rng = random.Random(params.seed)
    for site in names:
        time = 0.0
        while True:
            time += rng.expovariate(params.rate)
            if time >= params.duration:
                break
            amount = rng.randint(1, 3)
            item = rng.choice(items)

            def arrive(site=site, item=item, amount=amount):
                op = (IncrementOp(item, amount)
                      if rng.random() < 0.25 else
                      DecrementOp(item, amount))
                system.submit(site, TransactionSpec(
                    ops=(op,), label="e13"), results.append)

            system.sim.at_site(site, time, arrive,
                               label=f"e13-arrival:{site}")

    add_at = ADD_AT * params.duration
    remove_at = REMOVE_AT * params.duration
    if reshard:
        system.sim.at_global(add_at, lambda: system.add_site("E0"),
                             label="e13:add-site")

        def try_remove():
            # The join's migration may still be shipping; topology
            # changes are serialized, so wait it out.
            if system.reshard_in_progress:
                system.sim.at_global(system.sim.now + 5.0, try_remove,
                                     label="e13:remove-site")
                return
            system.remove_site(names[-1])

        system.sim.at_global(remove_at, try_remove,
                             label="e13:remove-site")

    probe_failures = []
    for fraction in PROBE_FRACTIONS:
        def probe(fraction=fraction):
            for report in system.auditor.verify_full():
                if not report.ok:
                    probe_failures.append(f"{fraction:g}: {report}")
        system.sim.at_global(fraction * params.duration, probe,
                             label="e13-probe")

    system.run_until(params.duration)
    system.run_for(params.txn_timeout + 200.0)
    system.auditor.assert_ok()
    assert not probe_failures, probe_failures
    assert not system.reshard_in_progress

    def window_rate(begin, end):
        pool = [r for r in results if begin <= r.submitted_at < end]
        if not pool:
            return float("nan")
        return sum(1 for r in pool if r.committed) / len(pool)

    return {
        "before": window_rate(0.0, add_at),
        "during": window_rate(add_at, remove_at + params.txn_timeout),
        "after": window_rate(remove_at + params.txn_timeout,
                             params.duration),
        "ships": system.sim.metrics.counter("migrate.ships").value,
        "migrated": system.sim.metrics.counter("migrate.value").value,
        "epochs": system.directory.epoch,
        "messages": system.network.total_sent,
        "decided": len(results),
    }


def _grid(params: Params) -> list[tuple[int, bool]]:
    return [(sites, reshard) for sites in params.site_counts
            for reshard in params.reshard]


def cells(params: Params | None = None) -> list[tuple[str, dict]]:
    """The independent (sites × reshard on/off) grid behind E13."""
    params = params or Params()
    return [("_run_one", {"params": params, "sites": sites,
                          "reshard": reshard})
            for sites, reshard in _grid(params)]


def run(params: Params | None = None, evaluate=None) -> Table:
    params = params or Params()
    results = iter(evaluate_cells(EXPERIMENT, cells(params), evaluate))
    table = Table(
        "E13: commit rate and migration traffic under reshard-under-load",
        ["sites", "reshard", "commit% before", "during", "after",
         "migration ships", "value moved", "epochs", "total msgs"])
    for sites, reshard in _grid(params):
        stats = next(results)
        table.add_row(sites, "join+leave" if reshard else "off",
                      round(100 * stats["before"], 1),
                      round(100 * stats["during"], 1),
                      round(100 * stats["after"], 1),
                      stats["ships"], stats["migrated"],
                      stats["epochs"], stats["messages"])
    table.add_note("join at 35% / decommission at 60% of the horizon; "
                   "migrations are ordinary transfer Vm fenced behind "
                   "old-epoch transactions, so the auditor and probes "
                   "check every move. Consistent hashing keeps the "
                   "moved value near 1/N of the total per change.")
    return table


if __name__ == "__main__":
    print(run())
