"""Common scenario plumbing for the experiments.

A scenario = a DvP system + registered items + a workload + optional
failure injection (partitions, crashes), run for a duration and then
settled (so in-flight Vm land) before measuring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.domain import CounterDomain, Domain
from repro.core.system import DvPSystem, SystemConfig
from repro.metrics.collector import Collector
from repro.net.partitions import PartitionSchedule, PartitionScheduler
from repro.workloads.base import SpecSource, WorkloadConfig, WorkloadDriver


@dataclass
class ScenarioResult:
    """Everything an experiment needs to build its table rows."""

    system: DvPSystem
    collector: Collector
    duration: float
    conservation_ok: bool
    audits: list = field(default_factory=list)

    @property
    def commit_rate(self) -> float:
        return self.collector.commit_rate()

    @property
    def throughput(self) -> float:
        return self.collector.throughput(self.duration)


def run_dvp_scenario(
        system_config: SystemConfig,
        items: dict[str, tuple[Domain, Any]],
        source: SpecSource,
        workload_config: WorkloadConfig,
        partition_schedule: PartitionSchedule | None = None,
        crashes: list[tuple[float, str]] | None = None,
        recoveries: list[tuple[float, str]] | None = None,
        settle: float = 120.0) -> ScenarioResult:
    """Build, fail-inject, drive, settle, audit. Deterministic per seed.

    *items* maps item name -> (domain, split-dict or integer total).
    """
    system = DvPSystem(system_config)
    for name, (domain, split) in items.items():
        if isinstance(split, dict):
            system.add_item(name, domain, split=split)
        else:
            system.add_item(name, domain, total=split)
    collector = Collector()
    driver = WorkloadDriver(system.sim, system, system_config.sites,
                            source, workload_config, collector)
    driver.install()
    if partition_schedule is not None:
        PartitionScheduler(system.sim, system.network,
                           partition_schedule).install()
    for time, site in (crashes or []):
        system.sim.at(time, lambda s=site: system.crash(s),
                      label=f"crash:{site}")
    for time, site in (recoveries or []):
        system.sim.at(time, lambda s=site: system.recover(s),
                      label=f"recover:{site}")
    system.run_until(workload_config.duration)
    # Settle: heal, let timers/retransmissions finish so audits see a
    # quiescent system.
    system.network.heal()
    for site in system.sites.values():
        if not site.alive:
            site.recover()
    system.run_for(settle)
    audits = system.audit()
    return ScenarioResult(
        system=system, collector=collector,
        duration=workload_config.duration,
        conservation_ok=all(report.ok for report in audits),
        audits=audits)


def counter_items(names: list[str], total: int) -> dict[str, tuple]:
    """Shorthand: each name is a CounterDomain item split evenly."""
    return {name: (CounterDomain(), total) for name in names}


def run_experiment(experiment_id: str, params=None, evaluate=None):
    """Look up an experiment module and render its table.

    *evaluate* is an optional grid evaluator — typically a
    :class:`repro.harness.parallel.GridEvaluator` carrying the worker
    pool and result cache; ``None`` keeps the original in-process
    sequential path. *params* defaults to the module's full preset.
    """
    from repro.harness import experiments

    module = experiments.get(experiment_id)
    if params is None:
        params = module.Params()
    return module.run(params, evaluate=evaluate)
