"""Experiment harness: one module per experiment (E1..E10).

Each experiment module exposes ``run(params=None) -> Table`` and a
params dataclass with two presets: ``Params()`` (full, used to produce
EXPERIMENTS.md) and ``Params.quick()`` (small, used by the pytest
benchmarks so the whole suite stays fast).
"""

from repro.harness.runner import ScenarioResult, run_dvp_scenario

__all__ = ["ScenarioResult", "run_dvp_scenario"]
