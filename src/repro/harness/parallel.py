"""Parallel, cached evaluation of experiment cell grids.

Every experiment's table is a grid of independent *cells* — one
deterministic simulation per (configuration × seed) point, identified
by a module-level cell function and its keyword arguments (see the
``cells()`` function each module in :mod:`repro.harness.experiments`
exports). Because cells share no state, they can be computed in any
order, on any process, and memoized:

* :class:`GridEvaluator` fans cell computation out over a
  ``multiprocessing`` pool (``jobs`` workers) and consults an optional
  :class:`ResultCache` first, so re-running a sweep only computes the
  cells whose inputs changed;
* the cache key is a SHA-256 over a canonical JSON rendering of
  ``(experiment id, cell function, kwargs)`` — kwargs carry the full
  ``Params`` dataclass, which embeds the ``SystemConfig`` knobs,
  workload shape, and seed, so any input change yields a new key;
* cached values are the cell's JSON-encoded return value. Cell
  functions must therefore return JSON-representable data (dicts,
  lists/tuples, strings, numbers, bools, None) — every experiment's
  stats dicts already do. Computed results are round-tripped through
  JSON before use so cold and warm runs are bit-identical.

The CLI exposes this through ``repro run <id> --jobs N [--no-cache]``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
from pathlib import Path
from typing import Any, Callable

#: Bump when cell semantics change in a way that invalidates old
#: cached results (the key already covers all declared inputs).
CACHE_VERSION = 1

#: A cell: (module-level function name, keyword arguments).
Cell = tuple[str, dict]

_MISS = object()


def canonical(value: Any) -> Any:
    """A JSON-able, deterministic rendering of a cell argument.

    Dataclasses carry their class name (two parameter objects with the
    same field values but different types hash differently); dict keys
    are sorted by the JSON encoder; tuples collapse to lists; anything
    exotic falls back to ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__qualname__, **fields}
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cache_key(experiment: str, fn: str, kwargs: dict) -> str:
    """Stable digest of one cell's full input."""
    blob = json.dumps(
        {"version": CACHE_VERSION, "experiment": experiment, "fn": fn,
         "kwargs": canonical(kwargs)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk JSON memo of computed cells, safe for concurrent use.

    One file per key under ``root`` (two-level fan-out by key prefix);
    writes go through a temp file + atomic rename so parallel workers
    and parallel harness invocations never observe torn entries.
    """

    def __init__(self, root: str | Path = ".repro-cache") -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any:
        """The cached result, or the module-private MISS sentinel."""
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return _MISS
        if payload.get("version") != CACHE_VERSION:
            return _MISS
        return payload["result"]

    def put(self, key: str, experiment: str, fn: str, result: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{multiprocessing.current_process().pid}")
        tmp.write_text(json.dumps(
            {"version": CACHE_VERSION, "experiment": experiment,
             "fn": fn, "result": result}, sort_keys=True))
        tmp.replace(path)


def _execute_cell(task: tuple[str, str, dict]) -> Any:
    """Worker body: import the experiment module, run one cell."""
    experiment, fn, kwargs = task
    from repro.harness import experiments
    module = experiments.get(experiment)
    return getattr(module, fn)(**kwargs)


class GridEvaluator:
    """Evaluate a cell grid with a worker pool and a result cache.

    Callable with ``(experiment_id, cells)``; returns results in grid
    order. ``jobs=1`` keeps everything in-process (still cached);
    ``cache=None`` disables memoization.
    """

    def __init__(self, jobs: int = 1,
                 cache: ResultCache | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.cache_hits = 0
        self.computed = 0

    def __call__(self, experiment: str, cells: list[Cell]) -> list[Any]:
        results: list[Any] = [None] * len(cells)
        pending: list[tuple[int, str | None, tuple[str, str, dict]]] = []
        for index, (fn, kwargs) in enumerate(cells):
            key = None
            if self.cache is not None:
                key = cache_key(experiment, fn, kwargs)
                hit = self.cache.get(key)
                if hit is not _MISS:
                    results[index] = hit
                    self.cache_hits += 1
                    continue
            pending.append((index, key, (experiment, fn, kwargs)))
        if pending:
            tasks = [task for _index, _key, task in pending]
            if self.jobs > 1 and len(tasks) > 1:
                with multiprocessing.Pool(
                        min(self.jobs, len(tasks))) as pool:
                    values = pool.map(_execute_cell, tasks)
            else:
                values = [_execute_cell(task) for task in tasks]
            for (index, key, task), value in zip(pending, values):
                # Round-trip through JSON so computed and cached replay
                # results are indistinguishable (tuples become lists,
                # keys become strings) — sweeps render identically on
                # cold and warm runs.
                value = json.loads(json.dumps(value))
                results[index] = value
                self.computed += 1
                if self.cache is not None and key is not None:
                    self.cache.put(key, task[0], task[1], value)
        return results


def evaluate_cells(experiment: str, cells: list[Cell],
                   evaluate: Callable[[str, list[Cell]], list[Any]]
                   | None = None) -> list[Any]:
    """Run a grid through *evaluate*, or in-process when None.

    The in-process fallback calls the cell functions directly (no JSON
    round-trip, no subprocesses) — exactly the original sequential
    behaviour of ``run(params)``.
    """
    if evaluate is not None:
        return evaluate(experiment, cells)
    return [_execute_cell((experiment, fn, kwargs))
            for fn, kwargs in cells]
