"""Workload driving: arrival processes, mixes, and the generic driver.

A workload turns a random stream into :class:`TransactionSpec`s; the
:class:`WorkloadDriver` schedules Poisson arrivals at every site and
submits the specs through any system exposing
``submit(site, spec, on_done)`` — the DvP system and all baselines do.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.core.transactions import TransactionSpec
from repro.metrics.collector import Collector
from repro.sim.kernel import Simulator


class SubmitTarget(Protocol):
    """Anything transactions can be submitted to."""

    def submit(self, site: str, spec: TransactionSpec,
               on_done: Callable | None = None) -> Any: ...


@dataclass(frozen=True)
class OpMix:
    """Relative weights of the four operation families."""

    reserve: float = 0.6   # decrement
    cancel: float = 0.2    # increment
    transfer: float = 0.0  # move between items
    read: float = 0.0      # full read

    def normalized(self) -> list[tuple[str, float]]:
        pairs = [("reserve", self.reserve), ("cancel", self.cancel),
                 ("transfer", self.transfer), ("read", self.read)]
        total = sum(weight for _name, weight in pairs)
        if total <= 0:
            raise ValueError("op mix has no positive weights")
        return [(name, weight / total) for name, weight in pairs]


@dataclass
class WorkloadConfig:
    """Shared workload parameters."""

    arrival_rate: float = 0.2     # transactions per unit time per site
    duration: float = 200.0
    amount_low: int = 1
    amount_high: int = 4
    mix: OpMix = field(default_factory=OpMix)
    zipf_skew: float = 0.0        # 0 = uniform item choice
    work: float = 0.0             # local computation per transaction
    seed_stream: str = "workload"

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.amount_low < 1 or self.amount_high < self.amount_low:
            raise ValueError("bad amount range")


class SpecSource(Protocol):
    """A workload: produces specs for arrivals at a site."""

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        ...


def zipf_choice(rng: random.Random, items: list[str], skew: float) -> str:
    """Pick an item with Zipf(skew) weighting over the list order."""
    if skew <= 0 or len(items) == 1:
        return rng.choice(items)
    weights = [1.0 / (rank ** skew) for rank in range(1, len(items) + 1)]
    return rng.choices(items, weights=weights, k=1)[0]


class WorkloadDriver:
    """Schedules Poisson arrivals and submits generated transactions."""

    def __init__(self, sim: Simulator, target: SubmitTarget,
                 sites: list[str], source: SpecSource,
                 config: WorkloadConfig,
                 collector: Collector | None = None) -> None:
        self.sim = sim
        self.target = target
        self.sites = sites
        self.source = source
        self.config = config
        self.collector = collector or Collector()
        self._rng = sim.rng.stream(config.seed_stream)
        # Spec draws happen inside arrival events, which execute on the
        # site's shard when the simulation is sharded (repro.sim.shard);
        # a per-site stream keeps those draws independent of the order
        # shards execute in, so results cannot depend on worker count.
        self._site_rng = {
            site: sim.rng.stream(f"{config.seed_stream}:{site}")
            for site in sites}

    def install(self, start: float = 0.0) -> int:
        """Pre-schedule every arrival in [start, start+duration].

        Returns the number of scheduled arrivals. Pre-scheduling (rather
        than chained timers) keeps the arrival process identical across
        systems compared on the same seed.
        """
        scheduled = 0
        for site in self.sites:
            time = start
            while True:
                time += self._next_gap()
                if time >= start + self.config.duration:
                    break
                self.sim.at_site(site, time, self._make_arrival(site),
                                 label=f"arrival:{site}")
                scheduled += 1
        return scheduled

    def _next_gap(self) -> float:
        return self._rng.expovariate(self.config.arrival_rate)

    def _make_arrival(self, site: str):
        def arrive() -> None:
            spec = self.source.make_spec(self._site_rng[site], site)
            self.collector.on_submit(at=self.sim.now)
            try:
                self.target.submit(site, spec, self.collector.on_result)
            except Exception:
                # Site down (or baseline refused the spec shape): the
                # customer walked away; counted as lost.
                pass
        return arrive


def uniform_amount(rng: random.Random, config: WorkloadConfig) -> int:
    return rng.randint(config.amount_low, config.amount_high)


def poisson_count(rng: random.Random, rate: float, duration: float) -> int:
    """Sample a Poisson(rate*duration) count (inverse-CDF, small means)."""
    mean = rate * duration
    if mean > 700:
        # Normal approximation far above any value used here.
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        product *= rng.random()
        count += 1
    return count
