"""Workload driving: arrival processes, mixes, and the generic driver.

A workload turns a random stream into :class:`TransactionSpec`s; the
:class:`WorkloadDriver` schedules Poisson arrivals at every site and
submits the specs through any system exposing
``submit(site, spec, on_done)`` — the DvP system and all baselines do.
"""

from __future__ import annotations

import math
import random
from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Any, Callable, Protocol

from repro.core.site import SiteDown
from repro.core.transactions import TransactionSpec, UnsupportedSpec
from repro.metrics.collector import Collector
from repro.sim.kernel import Simulator


class SubmitTarget(Protocol):
    """Anything transactions can be submitted to."""

    def submit(self, site: str, spec: TransactionSpec,
               on_done: Callable | None = None) -> Any: ...


@dataclass(frozen=True)
class OpMix:
    """Relative weights of the operation families."""

    reserve: float = 0.6   # decrement
    cancel: float = 0.2    # increment
    transfer: float = 0.0  # move between items
    read: float = 0.0      # full read
    #: Bounded-staleness view read (docs/READS.md). Appended with
    #: weight 0 so every pre-existing mix draws the exact same
    #: sequence: a zero-weight tail entry can never be chosen and
    #: does not shift which index any existing draw selects.
    read_view: float = 0.0

    def normalized(self) -> list[tuple[str, float]]:
        pairs = [("reserve", self.reserve), ("cancel", self.cancel),
                 ("transfer", self.transfer), ("read", self.read),
                 ("read_view", self.read_view)]
        total = sum(weight for _name, weight in pairs)
        if total <= 0:
            raise ValueError("op mix has no positive weights")
        return [(name, weight / total) for name, weight in pairs]


@dataclass
class WorkloadConfig:
    """Shared workload parameters."""

    arrival_rate: float = 0.2     # transactions per unit time per site
    duration: float = 200.0
    amount_low: int = 1
    amount_high: int = 4
    mix: OpMix = field(default_factory=OpMix)
    zipf_skew: float = 0.0        # 0 = uniform item choice
    work: float = 0.0             # local computation per transaction
    seed_stream: str = "workload"

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.amount_low < 1 or self.amount_high < self.amount_low:
            raise ValueError("bad amount range")


class SpecSource(Protocol):
    """A workload: produces specs for arrivals at a site."""

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        ...


#: Cumulative Zipf weights keyed by (item count, skew). The weights
#: depend only on list *length* and skew, never on item identity, so
#: one cache entry serves every caller — without it each arrival paid
#: an O(n) weight rebuild, ruinous at 10^5 items x 10^6 arrivals.
_ZIPF_CUM_CACHE: dict[tuple[int, float], list[float]] = {}


def _zipf_cum_weights(count: int, skew: float) -> list[float]:
    key = (count, skew)
    cum = _ZIPF_CUM_CACHE.get(key)
    if cum is None:
        cum = list(accumulate(
            1.0 / (rank ** skew) for rank in range(1, count + 1)))
        _ZIPF_CUM_CACHE[key] = cum
    return cum


def zipf_choice(rng: random.Random, items: list[str], skew: float) -> str:
    """Pick an item with Zipf(skew) weighting over the list order."""
    if skew <= 0 or len(items) == 1:
        return rng.choice(items)
    # Same draw ``random.choices`` would make (one uniform, bisect on
    # the cumulative weights) so cached and uncached paths produce
    # bit-identical sequences from the same stream state.
    cum = _zipf_cum_weights(len(items), skew)
    total = cum[-1] + 0.0
    return items[bisect(cum, rng.random() * total, 0, len(items) - 1)]


class WorkloadDriver:
    """Schedules Poisson arrivals and submits generated transactions."""

    def __init__(self, sim: Simulator, target: SubmitTarget,
                 sites: list[str], source: SpecSource,
                 config: WorkloadConfig,
                 collector: Collector | None = None) -> None:
        self.sim = sim
        self.target = target
        self.sites = sites
        self.source = source
        self.config = config
        self.collector = collector or Collector()
        self._rng = sim.rng.stream(config.seed_stream)
        # Spec draws happen inside arrival events, which execute on the
        # site's shard when the simulation is sharded (repro.sim.shard);
        # a per-site stream keeps those draws independent of the order
        # shards execute in, so results cannot depend on worker count.
        self._site_rng = {
            site: sim.rng.stream(f"{config.seed_stream}:{site}")
            for site in sites}
        self._gap_rng: dict[str, random.Random] = {}

    def install(self, start: float = 0.0) -> int:
        """Pre-schedule every arrival in [start, start+duration].

        Returns the number of scheduled arrivals. Pre-scheduling (rather
        than chained timers) keeps the arrival process identical across
        systems compared on the same seed.
        """
        scheduled = 0
        for site in self.sites:
            time = start
            while True:
                time += self._next_gap()
                if time >= start + self.config.duration:
                    break
                self.sim.at_site(site, time, self._make_arrival(site),
                                 label=f"arrival:{site}")
                scheduled += 1
        return scheduled

    # -- open-loop (lazy) arrival scheduling ---------------------------------
    #
    # ``install`` materializes the whole horizon up front — fine at
    # harness scales, hopeless for 10^5-10^6 users. The open-loop mode
    # keeps exactly one pending arrival per site: each arrival event
    # draws the next gap and chains the next arrival. Gap draws use a
    # *dedicated per-site stream* (``{seed_stream}:gaps:{site}``): the
    # draw happens inside the site's own shard event, so a per-site
    # stream keeps the arrival process independent of shard execution
    # order (worker-invariant) — and identical to what
    # ``install_prescheduled`` produces from the same seed.

    def install_open_loop(self, start: float = 0.0) -> int:
        """Schedule one chained arrival per site; O(sites) memory.

        Returns the number of sites with at least one arrival.
        """
        self._make_gap_streams()
        deadline = start + self.config.duration
        live = 0
        for site in self.sites:
            first = start + self._next_site_gap(site)
            if first >= deadline:
                continue
            self.sim.at_site(site, first,
                             self._make_chained_arrival(site, deadline),
                             label=f"arrival:{site}")
            live += 1
        return live

    def install_prescheduled(self, start: float = 0.0) -> int:
        """Pre-materialized twin of :meth:`install_open_loop`.

        Draws gaps from the same per-site streams, so arrival instants
        (and hence trace fingerprints) match the open-loop mode exactly
        — the determinism oracle for the lazy path. Returns the number
        of scheduled arrivals.
        """
        self._make_gap_streams()
        deadline = start + self.config.duration
        scheduled = 0
        for site in self.sites:
            time = start
            while True:
                time += self._next_site_gap(site)
                if time >= deadline:
                    break
                self.sim.at_site(site, time, self._make_arrival(site),
                                 label=f"arrival:{site}")
                scheduled += 1
        return scheduled

    def _make_gap_streams(self) -> None:
        # Streams must be forked from the root RNG (outside any shard
        # event) — ``sim.rng`` inside an event is the shard's fork.
        for site in self.sites:
            if site not in self._gap_rng:
                self._gap_rng[site] = self.sim.rng.stream(
                    f"{self.config.seed_stream}:gaps:{site}")

    def _next_gap(self) -> float:
        return self._rng.expovariate(self.config.arrival_rate)

    def _next_site_gap(self, site: str) -> float:
        return self._gap_rng[site].expovariate(self.config.arrival_rate)

    def _make_chained_arrival(self, site: str, deadline: float):
        def arrive() -> None:
            next_time = self.sim.now + self._next_site_gap(site)
            if next_time < deadline:
                self.sim.at_site(site, next_time, arrive,
                                 label=f"arrival:{site}")
            self._arrive(site)
        return arrive

    def _make_arrival(self, site: str):
        def arrive() -> None:
            self._arrive(site)
        return arrive

    def _arrive(self, site: str) -> None:
        spec = self.source.make_spec(self._site_rng[site], site)
        self.collector.on_submit(at=self.sim.now)
        try:
            self.target.submit(site, spec, self.collector.on_result)
        except (SiteDown, UnsupportedSpec):
            # The target refused service — site down, or the spec shape
            # is out of scope for a narrower baseline. The customer
            # walked away; counted as lost. Anything else is a
            # programming error and must propagate.
            pass


def uniform_amount(rng: random.Random, config: WorkloadConfig) -> int:
    return rng.randint(config.amount_low, config.amount_high)


def poisson_count(rng: random.Random, rate: float, duration: float) -> int:
    """Sample a Poisson(rate*duration) count (inverse-CDF, small means)."""
    mean = rate * duration
    if mean > 700:
        # Normal approximation far above any value used here.
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        product *= rng.random()
        count += 1
    return count
