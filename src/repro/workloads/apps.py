"""App-level traffic: drive the ``apps/`` façades, not raw specs.

The PR 8 serving front-end accepted :class:`TransactionSpec`s built by
hand in the workload generators. Real callers go through the
application façades (reserve a seat, deposit cents, estimate a
balance), so the serving experiments should too:
:class:`AppWorkloadDriver` keeps the generic driver's arrival process
(Poisson per site, per-site deterministic streams, collector
integration) but each arrival invokes a *façade call* sampled by an
:class:`AppTraffic` source. Point the façade at a serving front-end
(``Bank(system, via=frontend)``) and the whole app-level request path
— routing, bounded queues, admission control, bounded-staleness view
reads — is exercised end to end.

Draw discipline: each traffic source makes exactly the same stream
draws per arrival (kind, item via Zipf, amount) as its raw-spec twin
in this package, so swapping a raw workload for its app traffic does
not change which transactions a seeded run submits.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol

from repro.apps.airline import ReservationSystem
from repro.apps.bank import Bank
from repro.core.site import SiteDown
from repro.core.transactions import UnsupportedSpec
from repro.workloads.base import (
    WorkloadConfig,
    WorkloadDriver,
    uniform_amount,
    zipf_choice,
)

#: One sampled application request: call it with the completion
#: callback to submit (through whatever target the façade wraps).
AppCall = Callable[[Callable | None], None]


class AppTraffic(Protocol):
    """A workload expressed as façade calls instead of raw specs."""

    def make_call(self, rng: random.Random, site: str) -> AppCall: ...


class AppWorkloadDriver(WorkloadDriver):
    """The generic driver, arriving into façade calls.

    Reuses every arrival mode of :class:`WorkloadDriver` (install /
    open-loop / prescheduled) unchanged; only the arrival body differs:
    the sampled :class:`AppCall` is invoked with the collector's result
    callback, and the façade's own target decides whether that is a
    direct submit or a serving front-end admission.
    """

    def __init__(self, sim, sites: list[str], source: AppTraffic,
                 config: WorkloadConfig, collector=None) -> None:
        # The façade carries its own submit target; the driver's is unused.
        super().__init__(sim, target=None, sites=sites, source=source,
                         config=config, collector=collector)

    def _arrive(self, site: str) -> None:
        call = self.source.make_call(self._site_rng[site], site)
        self.collector.on_submit(at=self.sim.now)
        try:
            call(self.collector.on_result)
        except (SiteDown, UnsupportedSpec):
            pass  # refused service; the customer walked away (counted lost)


class AirlineAppTraffic:
    """Façade twin of :class:`~repro.workloads.airline.AirlineWorkload`.

    Same draws per arrival (kind, Zipf flight, seat count), mapped onto
    :class:`ReservationSystem` calls. ``read_view`` weight in the mix
    becomes a bounded-staleness ``seats_estimate`` with *view_bound*.
    """

    def __init__(self, reservations: ReservationSystem,
                 flights: list[str],
                 config: WorkloadConfig | None = None,
                 view_bound: float | None = None) -> None:
        if not flights:
            raise ValueError("at least one flight required")
        self.reservations = reservations
        self.flights = flights
        self.config = config or WorkloadConfig()
        self.view_bound = view_bound

    def make_call(self, rng: random.Random, site: str) -> AppCall:
        kind = rng.choices(
            [name for name, _weight in self.config.mix.normalized()],
            weights=[weight for _name, weight
                     in self.config.mix.normalized()])[0]
        flight = zipf_choice(rng, self.flights, self.config.zipf_skew)
        seats = uniform_amount(rng, self.config)
        app, work = self.reservations, self.config.work
        if kind == "cancel":
            return lambda done: app.cancel(site, flight, seats,
                                           on_done=done, work=work)
        if kind == "transfer" and len(self.flights) > 1:
            other = zipf_choice(rng, [name for name in self.flights
                                      if name != flight],
                                self.config.zipf_skew)
            return lambda done: app.change_flight(
                site, other, flight, seats, on_done=done, work=work)
        if kind == "read":
            return lambda done: app.seats_available(site, flight,
                                                    on_done=done,
                                                    work=work)
        if kind == "read_view":
            return lambda done: app.seats_estimate(
                site, flight, bound=self.view_bound, on_done=done,
                work=work)
        return lambda done: app.reserve(site, flight, seats,
                                        on_done=done, work=work)


class BankAppTraffic:
    """Banking traffic over a :class:`Bank` façade.

    ``reserve`` → withdraw, ``cancel`` → deposit, ``transfer`` → inter-
    account transfer, ``read`` → exact audit, ``read_view`` → bounded-
    staleness balance estimate with *view_bound* — the read tier E16
    sweeps against the exact fan-out.
    """

    def __init__(self, bank: Bank, accounts: list[str],
                 config: WorkloadConfig | None = None,
                 view_bound: float | None = None) -> None:
        if not accounts:
            raise ValueError("at least one account required")
        self.bank = bank
        self.accounts = accounts
        self.config = config or WorkloadConfig()
        self.view_bound = view_bound

    def make_call(self, rng: random.Random, site: str) -> AppCall:
        kind = rng.choices(
            [name for name, _weight in self.config.mix.normalized()],
            weights=[weight for _name, weight
                     in self.config.mix.normalized()])[0]
        account = zipf_choice(rng, self.accounts, self.config.zipf_skew)
        cents = uniform_amount(rng, self.config)
        bank, work = self.bank, self.config.work
        if kind == "cancel":
            return lambda done: bank.deposit(site, account, cents,
                                             on_done=done, work=work)
        if kind == "transfer" and len(self.accounts) > 1:
            payee = zipf_choice(rng, [name for name in self.accounts
                                      if name != account],
                                self.config.zipf_skew)
            return lambda done: bank.transfer(site, account, payee,
                                              cents, on_done=done,
                                              work=work)
        if kind == "read":
            return lambda done: bank.audit_balance(site, account,
                                                   on_done=done,
                                                   work=work)
        if kind == "read_view":
            return lambda done: bank.estimate_balance(
                site, account, bound=self.view_bound, on_done=done,
                work=work)
        return lambda done: bank.withdraw(site, account, cents,
                                          on_done=done, work=work)


__all__ = ["AppCall", "AppTraffic", "AppWorkloadDriver",
           "AirlineAppTraffic", "BankAppTraffic"]
