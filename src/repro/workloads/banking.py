"""Banking workload (the paper's irreversible-transaction example).

Accounts are money amounts (integral cents). Deposits "without caring
about the net balance" are the paper's canonical always-safe operation;
withdrawals need funds gathered locally; audits read the exact balance.
Withdrawals disburse cash — they are irreversible, which is why
serializability (not post-hoc reconciliation) is required here.
"""

from __future__ import annotations

import random

from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
)
from repro.workloads.base import (
    OpMix,
    WorkloadConfig,
    uniform_amount,
    zipf_choice,
)


class BankingWorkload:
    """Generates deposits / withdrawals / transfers / audits."""

    def __init__(self, accounts: list[str],
                 config: WorkloadConfig | None = None) -> None:
        if not accounts:
            raise ValueError("at least one account required")
        self.accounts = accounts
        self.config = config or WorkloadConfig(
            mix=OpMix(reserve=0.45, cancel=0.4, transfer=0.1, read=0.05),
            amount_low=100, amount_high=5000)  # cents

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        kind = rng.choices(
            [name for name, _weight in self.config.mix.normalized()],
            weights=[weight for _name, weight
                     in self.config.mix.normalized()])[0]
        account = zipf_choice(rng, self.accounts, self.config.zipf_skew)
        cents = uniform_amount(rng, self.config)
        if kind == "reserve":
            return TransactionSpec(ops=(DecrementOp(account, cents),),
                                   label="withdraw", work=self.config.work)
        if kind == "cancel":
            return TransactionSpec(ops=(IncrementOp(account, cents),),
                                   label="deposit", work=self.config.work)
        if kind == "transfer" and len(self.accounts) > 1:
            payee = zipf_choice(rng, [name for name in self.accounts
                                      if name != account],
                                self.config.zipf_skew)
            return TransactionSpec(ops=(TransferOp(account, payee, cents),),
                                   label="transfer", work=self.config.work)
        if kind == "read":
            return TransactionSpec(ops=(ReadFullOp(account),),
                                   label="audit", work=self.config.work)
        return TransactionSpec(ops=(IncrementOp(account, cents),),
                               label="deposit", work=self.config.work)
