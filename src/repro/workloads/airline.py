"""The Section 3 airline reservation workload.

Flights are counters of available seats; customers reserve seats
(decrement), cancel (increment), change flights (transfer between two
flight items) and agents occasionally need exact seat counts (full
read).
"""

from __future__ import annotations

import random

from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
    TransferOp,
)
from repro.workloads.base import (
    OpMix,
    WorkloadConfig,
    uniform_amount,
    zipf_choice,
)


class AirlineWorkload:
    """Generates reservation-system transactions over *flights*."""

    def __init__(self, flights: list[str],
                 config: WorkloadConfig | None = None) -> None:
        if not flights:
            raise ValueError("at least one flight required")
        self.flights = flights
        self.config = config or WorkloadConfig(
            mix=OpMix(reserve=0.65, cancel=0.2, transfer=0.1, read=0.05))

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        kind = rng.choices(
            [name for name, _weight in self.config.mix.normalized()],
            weights=[weight for _name, weight
                     in self.config.mix.normalized()])[0]
        flight = zipf_choice(rng, self.flights, self.config.zipf_skew)
        seats = uniform_amount(rng, self.config)
        if kind == "reserve":
            ops = (DecrementOp(flight, seats),)
        elif kind == "cancel":
            ops = (IncrementOp(flight, seats),)
        elif kind == "transfer" and len(self.flights) > 1:
            other = zipf_choice(rng, [name for name in self.flights
                                      if name != flight],
                                self.config.zipf_skew)
            ops = (TransferOp(flight, other, seats),)
            kind = "change-flight"
        elif kind == "read":
            ops = (ReadFullOp(flight),)
        else:
            ops = (DecrementOp(flight, seats),)
            kind = "reserve"
        return TransactionSpec(ops=ops, label=kind, work=self.config.work)
