"""Inventory / aggregate-field hot-spot workload (Section 8).

One (or a few) "hot" quantity-on-hand counters absorb almost all
updates — O'Neil's hot-spot scenario. Updates are small sells
(decrement) and restocks (increment); skew concentrates traffic on the
first items of the list.
"""

from __future__ import annotations

import random

from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.workloads.base import (
    OpMix,
    WorkloadConfig,
    uniform_amount,
    zipf_choice,
)


class InventoryWorkload:
    """Generates sell/restock/stock-check transactions over *items*."""

    def __init__(self, items: list[str],
                 config: WorkloadConfig | None = None) -> None:
        if not items:
            raise ValueError("at least one item required")
        self.items = items
        self.config = config or WorkloadConfig(
            mix=OpMix(reserve=0.7, cancel=0.25, transfer=0.0, read=0.05),
            zipf_skew=1.5, amount_low=1, amount_high=3)

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        kind = rng.choices(
            [name for name, _weight in self.config.mix.normalized()],
            weights=[weight for _name, weight
                     in self.config.mix.normalized()])[0]
        item = zipf_choice(rng, self.items, self.config.zipf_skew)
        units = uniform_amount(rng, self.config)
        if kind == "reserve":
            return TransactionSpec(ops=(DecrementOp(item, units),),
                                   label="sell", work=self.config.work)
        if kind == "cancel":
            return TransactionSpec(ops=(IncrementOp(item, units),),
                                   label="restock", work=self.config.work)
        if kind == "read":
            return TransactionSpec(ops=(ReadFullOp(item),),
                                   label="stock-check", work=self.config.work)
        return TransactionSpec(ops=(DecrementOp(item, units),),
                               label="sell", work=self.config.work)
