"""Workload generators for the paper's motivating applications."""

from repro.workloads.airline import AirlineWorkload
from repro.workloads.apps import (
    AirlineAppTraffic,
    AppWorkloadDriver,
    BankAppTraffic,
)
from repro.workloads.banking import BankingWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver
from repro.workloads.inventory import InventoryWorkload

__all__ = [
    "AirlineAppTraffic",
    "AirlineWorkload",
    "AppWorkloadDriver",
    "BankAppTraffic",
    "BankingWorkload",
    "InventoryWorkload",
    "OpMix",
    "WorkloadConfig",
    "WorkloadDriver",
]
