"""Delta-debugging shrinker for failing fault plans.

Classic ddmin (Zeller & Hildebrandt) over the plan's action list: try
progressively finer chunk removals, keeping any reduced plan that still
fails the *same oracle(s)* under the *same seed*, until the plan is
locally minimal — removing any single remaining action makes the
failure disappear. Because runs are pure functions of ``(seed, plan)``,
the predicate is deterministic and the minimization is replayable.

Shrinking judges candidate plans by oracle-name overlap with the
original failure (not message equality): messages carry values and
timestamps that lawfully drift as the schedule shrinks, but a repro
that stops failing the auditor and starts failing only progress is a
different bug and is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.plan import FaultPlan
from repro.chaos.runner import ChaosConfig, ChaosResult, run_chaos


@dataclass
class ShrinkResult:
    """A locally-minimal failing plan plus the search transcript."""

    original: FaultPlan
    minimal: FaultPlan
    seed: int
    config: ChaosConfig
    target_oracles: tuple[str, ...]
    runs: int = 0
    final: ChaosResult | None = None
    history: list[str] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.original) - len(self.minimal)


def shrink(config: ChaosConfig, plan: FaultPlan, seed: int,
           target_oracles: "tuple[str, ...] | None" = None,
           oracles: "list | None" = None,
           max_runs: int = 500) -> ShrinkResult:
    """Minimize *plan* while it keeps failing *target_oracles*.

    *target_oracles* defaults to whatever the unshrunk plan fails
    (determined by one extra run). Raises ``ValueError`` if the
    original plan does not fail at all — there is nothing to shrink.
    """
    state = ShrinkResult(original=plan, minimal=plan, seed=seed,
                         config=config,
                         target_oracles=tuple(target_oracles or ()))
    last_failing: dict[int, ChaosResult] = {}

    def still_fails(candidate: FaultPlan) -> bool:
        if state.runs >= max_runs:
            return False
        state.runs += 1
        result = run_chaos(config, candidate, seed, oracles=oracles)
        wanted = set(state.target_oracles)
        hit = bool(result.failures) and (not wanted
                                         or wanted <= set(result.failures))
        state.history.append(
            f"{len(candidate)} actions -> "
            f"{'FAIL' + str(sorted(result.failures)) if result.failures else 'pass'}")
        if hit:
            last_failing[len(candidate)] = result
        return hit

    baseline = run_chaos(config, plan, seed, oracles=oracles)
    state.runs += 1
    if not baseline.failed:
        raise ValueError("plan does not fail any oracle; nothing to shrink")
    if not state.target_oracles:
        state.target_oracles = baseline.failed_oracles
    last_failing[len(plan)] = baseline

    actions = list(plan.actions)
    granularity = 2
    while len(actions) >= 2:
        chunks = _chunk(actions, granularity)
        reduced = False
        # Try each chunk alone, then each complement (classic ddmin).
        for candidate in chunks + [_complement(actions, chunk)
                                   for chunk in chunks]:
            if len(candidate) == len(actions):
                continue
            if still_fails(FaultPlan(tuple(candidate))):
                actions = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(actions):
                break
            granularity = min(len(actions), granularity * 2)

    # ddmin at granularity == len(actions) already tried every single
    # removal, but cap-outs and early breaks can leave slack: sweep
    # until no single removal still fails (local minimality).
    swept = True
    while swept and len(actions) >= 1:
        swept = False
        for index in range(len(actions)):
            candidate = actions[:index] + actions[index + 1:]
            if still_fails(FaultPlan(tuple(candidate))):
                actions = candidate
                swept = True
                break

    state.minimal = FaultPlan(tuple(actions))
    state.final = last_failing.get(len(actions))
    if state.final is None:  # pragma: no cover - cache always primed
        state.final = run_chaos(config, state.minimal, seed, oracles=oracles)
        state.runs += 1
    return state


def _chunk(actions: list, pieces: int) -> list[list]:
    """Split into *pieces* near-equal contiguous chunks."""
    pieces = min(pieces, len(actions))
    size, leftover = divmod(len(actions), pieces)
    chunks, start = [], 0
    for index in range(pieces):
        end = start + size + (1 if index < leftover else 0)
        chunks.append(actions[start:end])
        start = end
    return chunks


def _complement(actions: list, chunk: list) -> list:
    """*actions* minus the contiguous *chunk* (identity-based)."""
    ids = {id(action) for action in chunk}
    return [action for action in actions if id(action) not in ids]


__all__ = ["shrink", "ShrinkResult"]
