"""The FaultPlan DSL: typed, serializable, replayable fault schedules.

A :class:`FaultPlan` is an ordered tuple of typed fault actions — site
crashes/recoveries, directed link loss/duplication/reorder windows,
partition/heal group maps, and clock-skewed timer fires. Compiling a
plan schedules guarded callbacks on the simulator; because every action
is parameterized by plain data and every callback draws no randomness
of its own, a run is a pure function of ``(seed, plan)`` and replays
bit-identically (checked via :meth:`Simulator.trace_fingerprint`).

Plans serialize to JSON (``to_json`` / ``from_json``): the shrinker
writes minimized failing plans as repro artifacts under
``tests/repros/`` and CI failures replay locally from the same file.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, ClassVar

from repro.net.link import LinkConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import DvPSystem


class PlanError(ValueError):
    """A fault plan is malformed or references unknown sites."""


@dataclass(frozen=True)
class FaultAction:
    """Base class: one scripted fault at virtual time ``at``."""

    at: float

    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise PlanError(f"{type(self).__name__}.at must be >= 0")

    def sites_used(self) -> tuple[str, ...]:
        """Site names the action references (for validation)."""
        return ()

    def schedule(self, system: "DvPSystem") -> None:
        """Arm the action's guarded callback(s) on the simulator."""
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["kind"] = self.kind
        return data


@dataclass(frozen=True)
class CrashSite(FaultAction):
    """Fail-stop the site at time ``at`` (no-op if already down)."""

    site: str = ""
    kind: ClassVar[str] = "crash"

    def sites_used(self) -> tuple[str, ...]:
        return (self.site,)

    def schedule(self, system: "DvPSystem") -> None:
        def fire() -> None:
            if system.sites[self.site].alive:
                system.crash(self.site)

        # Site-targeted: runs on the shard owning the site.
        system.sim.at_site(self.site, self.at, fire,
                           label=f"chaos:crash:{self.site}")


@dataclass(frozen=True)
class RecoverSite(FaultAction):
    """Independently recover the site at ``at`` (no-op if alive)."""

    site: str = ""
    kind: ClassVar[str] = "recover"

    def sites_used(self) -> tuple[str, ...]:
        return (self.site,)

    def schedule(self, system: "DvPSystem") -> None:
        def fire() -> None:
            if not system.sites[self.site].alive:
                system.recover(self.site)

        system.sim.at_site(self.site, self.at, fire,
                           label=f"chaos:recover:{self.site}")


@dataclass(frozen=True)
class PartitionNet(FaultAction):
    """Split connectivity into ``groups`` at ``at`` (unlisted sites
    land together in an implicit final group)."""

    groups: tuple[tuple[str, ...], ...] = ()
    kind: ClassVar[str] = "partition"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.groups:
            raise PlanError("partition needs at least one group")
        # JSON round-trips lists; freeze to tuples for hashability.
        object.__setattr__(self, "groups", tuple(
            tuple(group) for group in self.groups))

    def sites_used(self) -> tuple[str, ...]:
        return tuple(name for group in self.groups for name in group)

    def schedule(self, system: "DvPSystem") -> None:
        def fire() -> None:
            system.network.partition([list(group) for group in self.groups])

        # Topology-wide: runs at a consistent cut across shards.
        system.sim.at_global(self.at, fire, label="chaos:partition")


@dataclass(frozen=True)
class HealNet(FaultAction):
    """Undo any partition at ``at``."""

    kind: ClassVar[str] = "heal"

    def schedule(self, system: "DvPSystem") -> None:
        system.sim.at_global(self.at, system.network.heal,
                             label="chaos:heal")


@dataclass(frozen=True)
class LinkFaultWindow(FaultAction):
    """Degrade the directed link ``src``->``dst`` for ``duration``.

    Inside the window the link's loss probability, duplication
    probability, and jitter (reordering) are overridden; ``down=True``
    severs the link outright. The link object (and its RNG stream)
    survives the window, so the fault composes with replay.
    """

    src: str = ""
    dst: str = ""
    duration: float = 1.0
    loss: float | None = None
    duplicate: float | None = None
    jitter: float | None = None
    down: bool = False
    kind: ClassVar[str] = "link"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise PlanError("link fault window needs a positive duration")
        if self.src == self.dst:
            raise PlanError("link fault src and dst must differ")

    def sites_used(self) -> tuple[str, ...]:
        return (self.src, self.dst)

    def _window_config(self, base: LinkConfig) -> LinkConfig:
        return LinkConfig(
            base_delay=base.base_delay,
            jitter=base.jitter if self.jitter is None else self.jitter,
            loss_probability=(base.loss_probability if self.loss is None
                              else self.loss),
            duplicate_probability=(base.duplicate_probability
                                   if self.duplicate is None
                                   else self.duplicate))

    def schedule(self, system: "DvPSystem") -> None:
        network = system.network

        def open_window() -> None:
            link = network.link(self.src, self.dst)
            network.inject_link_fault(self.src, self.dst,
                                      self._window_config(link.config))
            if self.down:
                link.fail()

        def close_window() -> None:
            network.clear_link_fault(self.src, self.dst)
            if self.down:
                network.link(self.src, self.dst).restore()

        tag = f"{self.src}->{self.dst}"
        # Link behaviour is read by the sender at send time, so a
        # window opening mid-round would be acausal for a shard that
        # already ran past it: run both edges at global cuts.
        system.sim.at_global(self.at, open_window,
                             label=f"chaos:link-fault:{tag}")
        system.sim.at_global(self.at + self.duration, close_window,
                             label=f"chaos:link-heal:{tag}")


@dataclass(frozen=True)
class SkewTick(FaultAction):
    """Clock-skew jump at ``site``: every armed local timer fires at
    ``at`` instead of its scheduled instant (see
    :meth:`DvPSite.skew_fire_timers`)."""

    site: str = ""
    kind: ClassVar[str] = "skew"

    def sites_used(self) -> tuple[str, ...]:
        return (self.site,)

    def schedule(self, system: "DvPSystem") -> None:
        def fire() -> None:
            system.sites[self.site].skew_fire_timers()

        system.sim.at_site(self.site, self.at, fire,
                           label=f"chaos:skew:{self.site}")


@dataclass(frozen=True)
class AddSite(FaultAction):
    """Join a new site ``site`` to the topology at ``at``.

    The name is *not* validated against the config's site list — it is
    a site that does not exist yet (``sites_used`` returns nothing).
    The fire guard skips when the name is already present or another
    reshard is still migrating, so sampled schedules never fault the
    run itself.
    """

    site: str = ""
    kind: ClassVar[str] = "add-site"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.site:
            raise PlanError("add-site needs a site name")

    def schedule(self, system: "DvPSystem") -> None:
        from repro.core.migration import ReshardInProgress

        def fire() -> None:
            if self.site in system.sites:
                return
            try:
                system.add_site(self.site)
            except ReshardInProgress:
                pass

        # Topology-wide: the directory epoch bump and the new site's
        # shard adoption must happen at a consistent cut.
        system.sim.at_global(self.at, fire,
                             label=f"chaos:add-site:{self.site}")


@dataclass(frozen=True)
class RemoveSite(FaultAction):
    """Decommission ``site`` at ``at``, draining its fragments.

    The guard skips dead, already-decommissioned, or missing sites and
    overlapping reshards — removal is only *attempted* when legal, so
    any schedule the grammar samples runs to completion.
    """

    site: str = ""
    kind: ClassVar[str] = "remove-site"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.site:
            raise PlanError("remove-site needs a site name")

    def sites_used(self) -> tuple[str, ...]:
        return (self.site,)

    def schedule(self, system: "DvPSystem") -> None:
        from repro.core.migration import ReshardInProgress
        from repro.core.site import SiteDown

        def fire() -> None:
            site = system.sites.get(self.site)
            if site is None or not site.alive or site.decommissioned:
                return
            if self.site not in system.directory.sites:
                return
            if len(system.directory.sites) == 1:
                return
            try:
                system.remove_site(self.site)
            except (ReshardInProgress, SiteDown):
                pass

        system.sim.at_global(self.at, fire,
                             label=f"chaos:remove-site:{self.site}")


@dataclass(frozen=True)
class Reshard(FaultAction):
    """Change the directory's replica count to ``replicas`` at ``at``
    (None = every site owns every item), migrating fragments."""

    replicas: int | None = None
    kind: ClassVar[str] = "reshard"

    def schedule(self, system: "DvPSystem") -> None:
        from repro.core.migration import ReshardInProgress

        def fire() -> None:
            try:
                system.reshard(self.replicas)
            except ReshardInProgress:
                pass

        system.sim.at_global(self.at, fire, label="chaos:reshard")


ACTION_TYPES: dict[str, type[FaultAction]] = {
    cls.kind: cls for cls in (CrashSite, RecoverSite, PartitionNet,
                              HealNet, LinkFaultWindow, SkewTick,
                              AddSite, RemoveSite, Reshard)}


def action_from_dict(data: dict[str, Any]) -> FaultAction:
    """Inverse of :meth:`FaultAction.to_dict`."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = ACTION_TYPES.get(kind)
    if cls is None:
        raise PlanError(f"unknown fault action kind {kind!r}")
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise PlanError(f"{kind}: unknown fields {sorted(unknown)}")
    if kind == "partition" and "groups" in payload:
        payload["groups"] = tuple(tuple(g) for g in payload["groups"])
    try:
        return cls(**payload)
    except TypeError as exc:
        raise PlanError(f"{kind}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of fault actions."""

    actions: tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    def __len__(self) -> int:
        return len(self.actions)

    def validate(self, sites: list[str]) -> None:
        """Raise :class:`PlanError` on references to unknown sites."""
        known = set(sites)
        for action in self.actions:
            unknown = set(action.sites_used()) - known
            if unknown:
                raise PlanError(
                    f"{action.kind} references unknown sites "
                    f"{sorted(unknown)}")

    def compile(self, system: "DvPSystem") -> None:
        """Schedule every action's guarded callbacks on the simulator."""
        self.validate(list(system.sites))
        for action in self.actions:
            action.schedule(system)

    def without(self, indices: set[int]) -> "FaultPlan":
        """Copy with the actions at *indices* removed (shrinker step)."""
        return FaultPlan(tuple(
            action for position, action in enumerate(self.actions)
            if position not in indices))

    # -- serialization ----------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [action.to_dict() for action in self.actions]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    @classmethod
    def from_dicts(cls, data: list[dict[str, Any]]) -> "FaultPlan":
        return cls(tuple(action_from_dict(entry) for entry in data))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, list):
            raise PlanError("fault plan JSON must be a list of actions")
        return cls.from_dicts(data)

    def describe(self) -> str:
        """One line per action, for failure reports and artifacts."""
        if not self.actions:
            return "(empty plan)"
        parts = []
        for action in self.actions:
            data = action.to_dict()
            data.pop("kind")
            at = data.pop("at")
            detail = " ".join(f"{key}={value}" for key, value
                              in sorted(data.items()) if value is not None)
            parts.append(f"t={at:g} {action.kind}"
                         + (f" {detail}" if detail else ""))
        return "; ".join(parts)


__all__ = [
    "FaultAction", "FaultPlan", "PlanError", "CrashSite", "RecoverSite",
    "PartitionNet", "HealNet", "LinkFaultWindow", "SkewTick",
    "AddSite", "RemoveSite", "Reshard",
    "ACTION_TYPES", "action_from_dict",
]
