"""Schedule search: sample fault plans from a weighted grammar and run
each against the workload until the budget is spent.

The grammar produces *motifs*, not raw actions: a crash is (usually)
paired with a recovery, a partition with a heal, a link fault with its
window end — so sampled plans explore the interesting corners (value
stranded on a dead site, Vm crossing a healing partition, retransmits
into a lossy window) rather than degenerate permanently-broken
topologies. The settle phase of every run lifts whatever the plan left
broken, so unpaired motifs are still fair game.

Everything is derived from ``(master seed, plan index)`` via the same
SHA-256 stream derivation the simulator uses: exploration is fully
deterministic, and any failure is reproducible from the printed seed
and index alone — no state carried between runs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.chaos.plan import (
    AddSite,
    CrashSite,
    FaultAction,
    FaultPlan,
    HealNet,
    LinkFaultWindow,
    PartitionNet,
    RecoverSite,
    RemoveSite,
    Reshard,
    SkewTick,
)

#: Names AddSite motifs draw from, in preference order. Fixed so the
#: sampled plan is a pure function of (seed, index) and needs no config
#: field; guards skip a name that already joined.
JOINER_POOL = ("E0", "E1", "E2")
from repro.chaos.runner import ChaosConfig, ChaosResult, run_chaos
from repro.sim.random import derive_seed


@dataclass(frozen=True)
class GrammarWeights:
    """Relative odds of each fault motif in a sampled plan."""

    crash: float = 3.0
    partition: float = 2.0
    link_loss: float = 2.0
    link_dup: float = 1.0
    link_down: float = 1.0
    link_reorder: float = 1.0
    skew: float = 1.0
    #: Elastic-topology motifs (docs/PARTITIONING.md). Default weight 0
    #: keeps every pre-existing exploration digest byte-stable: the
    #: zero-weight tail entries can never be drawn, and appending them
    #: to the cumulative-weight table does not change which index any
    #: existing draw selects. Use :func:`reshard_grammar` to enable.
    add_site: float = 0.0
    remove_site: float = 0.0
    reshard: float = 0.0

    def normalized(self) -> list[tuple[str, float]]:
        pairs = [(name, getattr(self, name)) for name in (
            "crash", "partition", "link_loss", "link_dup", "link_down",
            "link_reorder", "skew",
            "add_site", "remove_site", "reshard")]
        total = sum(weight for _name, weight in pairs)
        if total <= 0:
            raise ValueError("fault grammar has no positive weights")
        return [(name, weight / total) for name, weight in pairs]


@dataclass(frozen=True)
class FaultGrammar:
    """Samples :class:`FaultPlan` instances for a scenario config."""

    weights: GrammarWeights = field(default_factory=GrammarWeights)
    min_motifs: int = 1
    max_motifs: int = 4

    def sample(self, rng: random.Random, config: ChaosConfig) -> FaultPlan:
        sites = config.site_names()
        names = [name for name, _w in self.weights.normalized()]
        odds = [weight for _n, weight in self.weights.normalized()]
        actions: list[FaultAction] = []
        for _ in range(rng.randint(self.min_motifs, self.max_motifs)):
            motif = rng.choices(names, weights=odds)[0]
            actions.extend(self._motif(motif, rng, config, sites))
        return FaultPlan(tuple(actions))

    def _motif(self, motif: str, rng: random.Random, config: ChaosConfig,
               sites: list[str]) -> list[FaultAction]:
        duration = config.duration
        start = rng.uniform(0.05 * duration, 0.75 * duration)
        if motif == "crash":
            victim = rng.choice(sites)
            out = [CrashSite(at=start, site=victim)]
            if rng.random() < 0.8:
                out.append(RecoverSite(
                    at=start + rng.uniform(3.0, 0.4 * duration),
                    site=victim))
            return out
        if motif == "partition":
            shuffled = sites[:]
            rng.shuffle(shuffled)
            cut = rng.randint(1, len(shuffled) - 1)
            groups = (tuple(shuffled[:cut]), tuple(shuffled[cut:]))
            out = [PartitionNet(at=start, groups=groups)]
            if rng.random() < 0.9:
                out.append(HealNet(
                    at=start + rng.uniform(3.0, 0.4 * duration)))
            return out
        if motif == "skew":
            return [SkewTick(at=start, site=rng.choice(sites))]
        if motif == "add_site":
            return [AddSite(at=start, site=rng.choice(JOINER_POOL))]
        if motif == "remove_site":
            return [RemoveSite(at=start, site=rng.choice(sites))]
        if motif == "reshard":
            return [Reshard(at=start, replicas=rng.choice([1, 2]))]
        # Directed link windows.
        src, dst = rng.sample(sites, 2)
        window = rng.uniform(3.0, 0.4 * duration)
        if motif == "link_loss":
            return [LinkFaultWindow(at=start, src=src, dst=dst,
                                    duration=window,
                                    loss=rng.choice([0.4, 0.7, 1.0]))]
        if motif == "link_dup":
            return [LinkFaultWindow(at=start, src=src, dst=dst,
                                    duration=window,
                                    duplicate=rng.choice([0.3, 0.6]))]
        if motif == "link_down":
            return [LinkFaultWindow(at=start, src=src, dst=dst,
                                    duration=window, down=True)]
        # link_reorder: fat jitter makes in-window sends overtake each
        # other (and messages sent before the window).
        return [LinkFaultWindow(at=start, src=src, dst=dst,
                                duration=window,
                                jitter=rng.choice([4.0, 8.0]))]


@dataclass
class FailureCase:
    """One failing (plan, seed) pair found during exploration."""

    index: int
    seed: int
    plan: FaultPlan
    failures: dict[str, list[str]]
    summary: str


@dataclass
class ExploreReport:
    """Outcome of a budgeted schedule search."""

    budget: int
    master_seed: int
    config: ChaosConfig
    runs: int = 0
    failures: list[FailureCase] = field(default_factory=list)
    run_summaries: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def digest(self) -> str:
        """SHA-256 over every run summary: two explorations of the same
        (budget, seed, config) must print the same digest."""
        combined = hashlib.sha256()
        for line in self.run_summaries:
            combined.update(line.encode())
            combined.update(b"\n")
        return combined.hexdigest()

    def describe(self) -> str:
        rebalance = ("" if self.config.rebalance is None else
                     f" rebalance={self.config.rebalance}"
                     f":{self.config.rebalance_period:g}")
        bundling = ("" if self.config.bundle_flush_delay is None else
                    f" bundle={self.config.bundle_flush_delay:g}")
        partition = ("" if self.config.partitioner == "all" else
                     f" partitioner={self.config.partitioner}" +
                     ("" if self.config.replicas is None else
                      f"/{self.config.replicas}"))
        serving = ("" if self.config.serving is None else
                   f" serving={self.config.serving}"
                   f":{self.config.serving_max_inflight}"
                   f"/{self.config.serving_max_depth}")
        views = ("" if self.config.views is None else
                 f" views={self.config.views:g}"
                 f"@{self.config.view_refresh:g}")
        lines = [f"chaos explore: budget={self.budget} "
                 f"seed={self.master_seed} sites={self.config.sites} "
                 f"items={self.config.items} txns={self.config.txns} "
                 f"duration={self.config.duration:g}"
                 f"{rebalance}{bundling}{partition}{serving}{views}",
                 f"plans run: {self.runs}  failing: {len(self.failures)}"]
        for case in self.failures:
            lines.append(f"  plan #{case.index} (run seed {case.seed}) "
                         f"FAILED {sorted(case.failures)}")
            lines.append(f"    {case.plan.describe()}")
            for oracle, messages in sorted(case.failures.items()):
                for message in messages[:3]:
                    lines.append(f"    [{oracle}] {message}")
        lines.append(f"exploration digest: {self.digest()}")
        return "\n".join(lines)


def reshard_grammar(weights: GrammarWeights | None = None
                    ) -> FaultGrammar:
    """A grammar that mixes elastic-topology motifs (site joins,
    decommissions, replica reshards) into the standard fault families —
    the schedule space for docs/PARTITIONING.md's migration claims."""
    base = weights or GrammarWeights()
    return FaultGrammar(weights=replace(
        base, add_site=2.0, remove_site=1.5, reshard=1.0))


def run_seed_for(master_seed: int, index: int) -> int:
    """The simulator seed of exploration run *index*."""
    return derive_seed(master_seed, f"chaos:run:{index}")


def sample_plan(master_seed: int, index: int, config: ChaosConfig,
                grammar: FaultGrammar | None = None) -> FaultPlan:
    """The fault plan of exploration run *index* (pure function)."""
    grammar = grammar or FaultGrammar()
    rng = random.Random(derive_seed(master_seed, f"chaos:plan:{index}"))
    return grammar.sample(rng, config)


def explore(config: ChaosConfig, budget: int, master_seed: int,
            grammar: FaultGrammar | None = None,
            oracles: "list | None" = None,
            stop_at_first_failure: bool = False,
            on_run: Callable[[int, ChaosResult], None] | None = None
            ) -> ExploreReport:
    """Sample and judge *budget* plans; report every failing one."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    grammar = grammar or FaultGrammar()
    report = ExploreReport(budget=budget, master_seed=master_seed,
                           config=config)
    for index in range(budget):
        plan = sample_plan(master_seed, index, config, grammar)
        seed = run_seed_for(master_seed, index)
        result = run_chaos(config, plan, seed, oracles=oracles)
        report.runs += 1
        report.run_summaries.append(f"#{index} {result.summary()}")
        if on_run is not None:
            on_run(index, result)
        if result.failed:
            report.failures.append(FailureCase(
                index=index, seed=seed, plan=plan,
                failures=result.failures, summary=result.summary()))
            if stop_at_first_failure:
                break
    return report


__all__ = ["GrammarWeights", "FaultGrammar", "FailureCase",
           "ExploreReport", "explore", "sample_plan", "run_seed_for",
           "reshard_grammar", "JOINER_POOL"]
