"""Budgeted chaos exploration of the Paxos Commit baseline.

The DvP explorer (:mod:`repro.chaos.explore`) samples fault plans and
judges runs with DvP-specific oracles (fragment conservation books,
Vm exactly-once). The coordinated baselines need the same adversarial
treatment with their own invariants, so this module drives
:class:`~repro.baselines.paxoscommit.PaxosCommitSystem` through sampled
crash/recover and partition/heal schedules — the fault families the
baseline systems implement — under a conservation-preserving transfer
workload, and judges each run with three oracles:

* **conservation** — after settling, the summed store values equal the
  initial allocation (an atomic-commit protocol must never half-apply
  a transfer);
* **agreement** — the union of all stable logs never shows two leaders
  deciding differently for one transaction, nor one participant
  committing while another aborts it;
* **liveness** — once every site is recovered and the network healed,
  no participant is still blocked on an undecided transaction (the
  anti-2PC property: any majority of acceptors unblocks).

Everything derives from ``(master seed, index)`` with the simulator's
stream derivation, so a failing index reproduces from the printed seed
alone, and the closing digest is byte-stable for a given
``(budget, seed, config)`` — same contract as the DvP explorer.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.baselines.common import BaselineConfig
from repro.baselines.paxoscommit import PaxosCommitSystem
from repro.chaos.plan import (
    CrashSite,
    FaultAction,
    FaultPlan,
    HealNet,
    PartitionNet,
    RecoverSite,
)
from repro.chaos.runner import ChaosConfig
from repro.core.transactions import TransactionSpec, TransferOp
from repro.net.link import LinkConfig
from repro.sim.random import derive_seed


def sample_baseline_plan(master_seed: int, index: int,
                         config: ChaosConfig) -> FaultPlan:
    """The fault plan of baseline run *index* (pure function).

    Only crash/recover and partition/heal motifs: those are the fault
    families the baseline systems implement (link windows and elastic
    topology are DvP-side machinery).
    """
    rng = random.Random(derive_seed(master_seed,
                                    f"chaos:baseline-plan:{index}"))
    sites = config.site_names()
    actions: list[FaultAction] = []
    for _ in range(rng.randint(1, 3)):
        start = rng.uniform(0.05 * config.duration, 0.75 * config.duration)
        if rng.random() < 0.6:
            victim = rng.choice(sites)
            actions.append(CrashSite(at=start, site=victim))
            if rng.random() < 0.8:
                actions.append(RecoverSite(
                    at=start + rng.uniform(3.0, 0.4 * config.duration),
                    site=victim))
        else:
            shuffled = sites[:]
            rng.shuffle(shuffled)
            cut = rng.randint(1, len(shuffled) - 1)
            actions.append(PartitionNet(
                at=start, groups=(tuple(shuffled[:cut]),
                                  tuple(shuffled[cut:]))))
            if rng.random() < 0.9:
                actions.append(HealNet(
                    at=start + rng.uniform(3.0, 0.4 * config.duration)))
    return FaultPlan(tuple(actions))


@dataclass
class BaselineChaosResult:
    """One judged run of the Paxos Commit baseline."""

    index: int
    seed: int
    plan: FaultPlan
    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    total_value: int = 0
    blocked: int = 0
    failures: dict[str, list[str]] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    def summary(self) -> str:
        verdict = ("FAIL " + ",".join(sorted(self.failures))
                   if self.failures else "ok")
        return (f"plan={len(self.plan)} submitted={self.submitted} "
                f"committed={self.committed} aborted={self.aborted} "
                f"total={self.total_value} blocked={self.blocked} "
                f"{verdict}")


def _check_agreement(system: PaxosCommitSystem) -> list[str]:
    """Scan every stable log for split-brain decisions."""
    problems: list[str] = []
    decisions: dict[str, set[bool]] = {}
    participant_outcomes: dict[str, dict[str, bool]] = {}
    for site in system.sites.values():
        for envelope in site.log.scan():
            record = envelope.record
            if record[0] == "coord-decision":
                decisions.setdefault(record[1], set()).add(record[2])
            elif record[0] == "participant-commit":
                participant_outcomes.setdefault(
                    record[1], {})[site.name] = True
            elif record[0] == "participant-abort":
                participant_outcomes.setdefault(
                    record[1], {})[site.name] = False
    for txn_id, verdicts in sorted(decisions.items()):
        if len(verdicts) > 1:
            problems.append(f"{txn_id}: leaders decided both ways")
    for txn_id, outcomes in sorted(participant_outcomes.items()):
        if len(set(outcomes.values())) > 1:
            problems.append(
                f"{txn_id}: participants disagree: {sorted(outcomes)}")
        chosen = decisions.get(txn_id)
        if chosen is not None and len(chosen) == 1 and \
                set(outcomes.values()) != chosen:
            problems.append(f"{txn_id}: participants applied "
                            f"{sorted(set(outcomes.values()))} but the "
                            f"decision was {sorted(chosen)}")
    return problems


def run_baseline_chaos(config: ChaosConfig, plan: FaultPlan,
                       seed: int, index: int = 0) -> BaselineChaosResult:
    """One deterministic Paxos Commit run under *plan*."""
    sites = config.site_names()
    system = PaxosCommitSystem(
        sites, seed=seed,
        link=LinkConfig(base_delay=config.base_delay,
                        jitter=config.base_jitter),
        config=BaselineConfig(txn_timeout=config.txn_timeout,
                              retry_period=config.retransmit_period))
    items = config.item_names()
    per_item = config.total // len(items)
    for position, item in enumerate(items):
        system.add_item(item, sites[position % len(sites)], per_item)
    initial_total = per_item * len(items)

    result = BaselineChaosResult(index=index, seed=seed, plan=plan)
    rng = random.Random(derive_seed(seed, "baseline-workload"))
    outcomes: list[bool] = []
    for _ in range(config.txns):
        at = rng.uniform(1.0, config.duration)
        origin = rng.choice(sites)
        src, dst = rng.sample(items, 2) if len(items) > 1 \
            else (items[0], items[0])
        amount = rng.randint(1, 3)
        spec = TransactionSpec(
            ops=(TransferOp(src, dst, amount),) if src != dst
            else (), label="transfer")
        if not spec.ops:
            continue

        def arrive(o=origin, sp=spec) -> None:
            if not system.sites[o].alive:
                return
            result.submitted += 1
            system.submit(o, sp,
                          lambda r: outcomes.append(r.committed))

        system.sim.at(at, arrive)

    plan.compile(system)
    system.sim.run_until(config.duration)
    # Settle: lift everything the plan left broken, then let takeover
    # rounds and decision retransmissions drain.
    system.network.heal()
    for name in sites:
        if not system.sites[name].alive:
            system.recover(name)
    system.sim.run_until(config.duration + config.settle)

    result.committed = sum(outcomes)
    result.aborted = len(outcomes) - result.committed
    result.total_value = system.total_value()
    result.blocked = len(system.currently_blocked())

    if result.total_value != initial_total:
        result.failures.setdefault("conservation", []).append(
            f"total {result.total_value} != initial {initial_total}")
    agreement = _check_agreement(system)
    if agreement:
        result.failures["agreement"] = agreement
    if result.blocked:
        result.failures.setdefault("liveness", []).append(
            f"{result.blocked} participant(s) still blocked after "
            f"settle: {system.currently_blocked()[:3]}")
    return result


@dataclass
class BaselineChaosReport:
    """Outcome of a budgeted baseline schedule search."""

    budget: int
    master_seed: int
    config: ChaosConfig
    runs: int = 0
    failures: list[BaselineChaosResult] = field(default_factory=list)
    run_summaries: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def digest(self) -> str:
        combined = hashlib.sha256()
        for line in self.run_summaries:
            combined.update(line.encode())
            combined.update(b"\n")
        return combined.hexdigest()

    def describe(self) -> str:
        lines = [f"baseline chaos explore (paxos-commit): "
                 f"budget={self.budget} seed={self.master_seed} "
                 f"sites={self.config.sites} items={self.config.items} "
                 f"txns={self.config.txns} "
                 f"duration={self.config.duration:g}",
                 f"plans run: {self.runs}  failing: {len(self.failures)}"]
        for case in self.failures:
            lines.append(f"  plan #{case.index} (run seed {case.seed}) "
                         f"FAILED {sorted(case.failures)}")
            lines.append(f"    {case.plan.describe()}")
            for oracle, messages in sorted(case.failures.items()):
                for message in messages[:3]:
                    lines.append(f"    [{oracle}] {message}")
        lines.append(f"exploration digest: {self.digest()}")
        return "\n".join(lines)


def explore_baseline(config: ChaosConfig, budget: int,
                     master_seed: int) -> BaselineChaosReport:
    """Sample and judge *budget* plans against the Paxos baseline."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    report = BaselineChaosReport(budget=budget, master_seed=master_seed,
                                 config=config)
    for index in range(budget):
        plan = sample_baseline_plan(master_seed, index, config)
        seed = derive_seed(master_seed, f"chaos:baseline-run:{index}")
        result = run_baseline_chaos(config, plan, seed, index=index)
        report.runs += 1
        report.run_summaries.append(f"#{index} {result.summary()}")
        if result.failed:
            report.failures.append(result)
    return report


__all__ = ["BaselineChaosReport", "BaselineChaosResult",
           "explore_baseline", "run_baseline_chaos",
           "sample_baseline_plan"]
