"""Replayable repro artifacts (``dvp-chaos-repro/1`` JSON format).

A repro artifact freezes everything needed to re-execute a failing
chaos run bit-identically: the scenario config, the simulator seed, the
(usually shrunk) fault plan, any armed test-only fault injection, and
the oracle verdicts observed when it was written. ``replay()`` rebuilds
the run from the file alone — this is how a CI chaos failure is
reproduced locally (see docs/CHAOS.md):

    python -m repro chaos --replay tests/repros/<name>.json
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.chaos.plan import FaultPlan, PlanError
from repro.chaos.runner import ChaosConfig, ChaosResult, run_chaos
from repro.core import fragments
from repro.reads import views as read_views

FORMAT = "dvp-chaos-repro/1"


def arm_injection(mode: "str | None") -> tuple:
    """Arm a named test-only injection, routing it to its owning module
    (fragment leaks live in ``repro.core.fragments``, view-staleness
    lies in ``repro.reads.views``). Returns the previous armed state;
    pass it to :func:`disarm_injection` to restore."""
    previous = (fragments.test_leak(), read_views.view_leak())
    if mode is not None and mode in read_views.VIEW_LEAK_MODES:
        read_views.set_view_leak(mode)
    else:
        fragments.set_test_leak(mode)
    return previous


def disarm_injection(previous: tuple) -> None:
    fragments.set_test_leak(previous[0])
    read_views.set_view_leak(previous[1])

#: How many trailing trace events a minimized repro embeds. Small on
#: purpose: the tail is the "what was happening right before the
#: oracles failed" context, not a full trace — `repro trace` replays
#: the artifact when the whole timeline is wanted.
TRACE_TAIL_EVENTS = 64


@dataclass
class ReproArtifact:
    """In-memory form of one repro JSON file."""

    seed: int
    config: ChaosConfig
    plan: FaultPlan
    injection: str | None = None
    failures: dict[str, list[str]] = field(default_factory=dict)
    note: str = ""
    #: Last-K structured trace events of the failing run, as canonical
    #: JSONL lines (see repro.obs.export) — the frozen repro explains
    #: itself without being re-run. Absent in pre-PR3 artifacts.
    trace_tail: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "seed": self.seed,
            "config": self.config.to_dict(),
            "injection": self.injection,
            "plan": self.plan.to_dicts(),
            "failures": self.failures,
            "note": self.note,
            "trace_tail": self.trace_tail,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReproArtifact":
        if data.get("format") != FORMAT:
            raise PlanError(
                f"not a {FORMAT} artifact (format={data.get('format')!r})")
        return cls(
            seed=data["seed"],
            config=ChaosConfig.from_dict(data["config"]),
            plan=FaultPlan.from_dicts(data["plan"]),
            injection=data.get("injection"),
            failures={oracle: list(messages) for oracle, messages
                      in data.get("failures", {}).items()},
            note=data.get("note", ""),
            trace_tail=list(data.get("trace_tail", [])))

    def write(self, path: "str | pathlib.Path") -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "ReproArtifact":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    def replay(self, oracles: "list | None" = None,
               trace_limit: int = 0,
               trace_kernel: bool = False) -> ChaosResult:
        """Re-execute the frozen run (arming any recorded injection).

        Pass ``trace_limit`` to also capture a structured trace tail;
        with the limit the artifact's own tail was recorded at
        (:data:`TRACE_TAIL_EVENTS` by default), the replayed
        ``result.trace_tail`` is byte-identical to ``self.trace_tail``.
        """
        previous = arm_injection(self.injection)
        try:
            return run_chaos(self.config, self.plan, self.seed,
                             oracles=oracles, trace_limit=trace_limit,
                             trace_kernel=trace_kernel)
        finally:
            disarm_injection(previous)


def default_name(artifact: ReproArtifact) -> str:
    """Stable, human-scannable artifact filename."""
    oracles = "-".join(sorted(artifact.failures)) or "fail"
    injection = f"_{artifact.injection}" if artifact.injection else ""
    return (f"chaos_{oracles}{injection}_seed{artifact.seed}"
            f"_{len(artifact.plan)}act.json")


__all__ = ["ReproArtifact", "default_name", "arm_injection",
           "disarm_injection", "FORMAT", "TRACE_TAIL_EVENTS"]
