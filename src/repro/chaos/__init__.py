"""Deterministic chaos engine: fault-plan DSL, schedule search,
oracle checking, delta-debugging shrinker, replayable repro artifacts.

The paper's claims are behavioral — non-blocking transactions and
``Π(fragments) + Π(live Vm) = d`` under crashes, lost/duplicated/
reordered messages, and partitions. This package explores that failure
space systematically: :mod:`plan` defines typed fault schedules that
replay bit-identically from ``(seed, plan)``; :mod:`explore` samples
them from a weighted grammar and judges every run against the three
:mod:`oracles`; :mod:`shrink` minimizes any failure to a locally
minimal action list; :mod:`artifact` freezes it as a JSON repro.
See docs/CHAOS.md.
"""

from repro.chaos.artifact import (
    TRACE_TAIL_EVENTS,
    ReproArtifact,
    arm_injection,
    default_name,
    disarm_injection,
)
from repro.chaos.explore import (
    JOINER_POOL,
    ExploreReport,
    FailureCase,
    FaultGrammar,
    GrammarWeights,
    explore,
    reshard_grammar,
    run_seed_for,
    sample_plan,
)
from repro.chaos.oracles import (
    AuditorOracle,
    ProgressOracle,
    SerialOracle,
    ViewOracle,
    default_oracles,
)
from repro.chaos.plan import (
    AddSite,
    CrashSite,
    FaultAction,
    FaultPlan,
    HealNet,
    LinkFaultWindow,
    PartitionNet,
    PlanError,
    RecoverSite,
    RemoveSite,
    Reshard,
    SkewTick,
)
from repro.chaos.runner import ChaosConfig, ChaosResult, run_chaos
from repro.chaos.shrink import ShrinkResult, shrink

__all__ = [
    "AddSite", "AuditorOracle", "ChaosConfig", "ChaosResult",
    "CrashSite", "ExploreReport", "FailureCase", "FaultAction",
    "FaultGrammar", "FaultPlan", "GrammarWeights", "HealNet",
    "JOINER_POOL", "LinkFaultWindow", "PartitionNet", "PlanError",
    "ProgressOracle", "RecoverSite", "RemoveSite", "ReproArtifact",
    "Reshard", "SerialOracle", "ShrinkResult", "SkewTick",
    "TRACE_TAIL_EVENTS", "ViewOracle", "arm_injection", "default_name",
    "default_oracles", "disarm_injection", "explore",
    "reshard_grammar", "run_chaos", "run_seed_for", "sample_plan",
    "shrink",
]
