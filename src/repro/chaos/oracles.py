"""The three oracles every chaos run is judged against.

* :class:`AuditorOracle` — the PR 1 incremental conservation auditor:
  ``verify_full()`` must find no divergence between the incremental
  books and a brute-force scan, every item must satisfy
  ``Π(fragments) + Π(live Vm) = d``, and the mid-run probes (taken
  while faults were still active) must all have passed.

* :class:`SerialOracle` — a single-site reference execution: apply the
  committed transactions' operator sequence, in commit order, to an
  unpartitioned reference value per item and compare the quiescent
  ``Π`` the distributed system reached against it. Also replays every
  committed full read through the N_M band check (a read may lawfully
  under-report by exactly the value in transmission at its commit
  instant, and must never over-report).

* :class:`ProgressOracle` — the paper's non-blocking property: every
  decided transaction decided within its timeout (+ local work), no
  transaction is still waiting on an unreachable site at quiescence,
  every undecided submission is attributable to a crash that destroyed
  it, and all live Vm were eventually absorbed once connectivity
  returned.

Oracles are pure observers of a finished :class:`ChaosResult`; each
returns a list of human-readable failure messages (empty = pass).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol

from repro.core.invariants import IncrementalDivergence
from repro.harness.serial import check_serializable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.runner import ChaosResult

#: Slack on latency comparisons (pure float-accumulation guard; the
#: timeout bound itself is exact in virtual time).
EPSILON = 1e-9


class Oracle(Protocol):
    name: str

    def check(self, result: "ChaosResult") -> list[str]: ...


class AuditorOracle:
    """Conservation + incremental-books/scan agreement, mid-run and final."""

    name = "auditor"

    def check(self, result: "ChaosResult") -> list[str]:
        failures = [f"mid-run probe: {message}"
                    for message in result.probe_failures]
        try:
            reports = result.system.auditor.verify_full()
        except IncrementalDivergence as exc:
            failures.append(f"quiescent divergence: {exc}")
            return failures
        for report in reports:
            if not report.ok:
                failures.append(f"quiescent {report} "
                                f"per_site={report.per_site}")
        return failures


class SerialOracle:
    """Committed operator sequence vs. an unpartitioned reference value."""

    name = "serial"

    def check(self, result: "ChaosResult") -> list[str]:
        failures: list[str] = []
        system = result.system
        domains = {item: system.sites[next(iter(system.sites))]
                   .fragments.domain(item)
                   for item in result.initial_totals}
        # Reference execution: fold semantic deltas in commit order
        # onto the initial logical value — one site, no partitioning.
        reference = dict(result.initial_totals)
        for txn in sorted(system.committed(),
                          key=lambda r: (r.finished_at, r.txn_id)):
            for item, sign, amount in txn.semantic_deltas:
                domain = domains[item]
                if sign > 0:
                    reference[item] = domain.combine(reference[item], amount)
                else:
                    if not domain.covers(reference[item], amount):
                        failures.append(
                            f"{txn.txn_id} over-consumed {item}: serial "
                            f"value {reference[item]} cannot cover {amount}")
                        continue
                    reference[item] = domain.subtract(reference[item],
                                                      amount)
        # Quiescent Π of the distributed execution must equal it.
        for item, expected in sorted(reference.items()):
            domain = domains[item]
            observed = domain.combine(
                system.auditor.fragments_total_scan(item),
                system.auditor.live_vm_total_scan(item))
            if observed != expected:
                failures.append(
                    f"{item}: quiescent Π={observed} but the serial "
                    f"reference execution gives {expected}")
        # Full reads: banded against the reference timeline (N_M term).
        # Local reads (label "chaos:local-read") return only the site's
        # own quota — a lawful lower bound, not a full-value claim —
        # and are excluded from the band. View reads claim a *stale*
        # exact value; the view oracle judges their certificates.
        full_reads = [txn for txn in system.results
                      if txn.label not in ("chaos:local-read",
                                           "chaos:view-read")]
        report = check_serializable(full_reads, result.initial_totals,
                                    domains)
        for txn_id, item, observed, replayed in report.read_mismatches:
            failures.append(
                f"read {txn_id}[{item}] returned {observed}, outside the "
                f"lawful band around serial value {replayed}")
        for txn_id, item, amount in report.negative_dips:
            failures.append(
                f"{txn_id} dipped {item} below zero by {amount} in the "
                f"serial replay")
        return failures


class ProgressOracle:
    """Non-blocking: bounded decisions, no stranded work at quiescence."""

    name = "progress"

    def check(self, result: "ChaosResult") -> list[str]:
        failures: list[str] = []
        system = result.system
        bound = result.config.txn_timeout
        for txn in system.results:
            # request_retries=0 in chaos configs: one timeout round.
            # Skewed timers only fire *earlier*, never later.
            if txn.latency > bound + EPSILON:
                failures.append(
                    f"{txn.txn_id} took {txn.latency:g} > timeout "
                    f"{bound:g} to decide ({txn.outcome.value}) — "
                    f"it blocked on an unreachable site")
        undecided = result.submitted - len(system.results)
        if undecided > result.wiped_by_crash:
            failures.append(
                f"{undecided} submissions never decided but only "
                f"{result.wiped_by_crash} were wiped by crashes — "
                f"somebody is blocked")
        for site in system.sites.values():
            if not site.alive:
                failures.append(f"site {site.name} still down at "
                                f"quiescence")
            if site.active:
                failures.append(
                    f"site {site.name} still has active transactions "
                    f"{sorted(site.active)} at quiescence")
            stuck = site.vm.unacked_count()
            if stuck:
                failures.append(
                    f"site {site.name} still owes {stuck} unaccepted Vm "
                    f"at quiescence — value stranded in transmission")
        return failures


class ViewOracle:
    """Staleness certificates never lie (docs/READS.md).

    Every certificate a *committed* bounded-staleness read served must
    (a) respect the reader's bound — ``checked_at - as_of <= bound`` —
    and (b) carry the exact conservation total ``N(as_of)``: the
    initial quota plus every committed semantic delta whose commit
    instant is ``<= as_of``. Views publish at a consistent global cut,
    so no interleaving can excuse a wrong snapshot — a fault may only
    ever make a view *staler* (forcing fallback), never wrong.

    Commits at exactly ``as_of`` race the barrier on the single-queue
    kernel (insertion order breaks the tie), so any prefix of the tie
    group, folded in ``(finished_at, txn_id)`` order, is accepted.
    """

    name = "view"

    def check(self, result: "ChaosResult") -> list[str]:
        failures: list[str] = []
        system = result.system
        certified = [(txn, item, cert)
                     for txn in sorted(system.committed(),
                                       key=lambda r: (r.finished_at,
                                                      r.txn_id))
                     for item, cert in sorted(txn.view_reads.items())]
        if not certified:
            return failures
        domains = {item: system.sites[next(iter(system.sites))]
                   .fragments.domain(item)
                   for item in result.initial_totals}
        deltas: dict[str, list[tuple[float, str, int, Any]]] = {
            item: [] for item in result.initial_totals}
        for txn in sorted(system.committed(),
                          key=lambda r: (r.finished_at, r.txn_id)):
            for item, sign, amount in txn.semantic_deltas:
                deltas[item].append((txn.finished_at, txn.txn_id,
                                     sign, amount))
        for txn, item, cert in certified:
            if cert.bound is not None and \
                    cert.staleness > cert.bound + EPSILON:
                failures.append(
                    f"{txn.txn_id}[{item}] certificate staleness "
                    f"{cert.staleness:g} exceeds the reader's bound "
                    f"{cert.bound:g}")
            domain = domains[item]
            value = result.initial_totals[item]
            acceptable = set()
            for at, _txn_id, sign, amount in deltas[item]:
                if at > cert.as_of + EPSILON:
                    break
                if at >= cert.as_of - EPSILON:
                    # The barrier may have run before this tied commit.
                    acceptable.add(value)
                value = (domain.combine(value, amount) if sign > 0
                         else domain.subtract(value, amount))
            acceptable.add(value)
            if cert.value not in acceptable:
                failures.append(
                    f"{txn.txn_id}[{item}] certificate claims "
                    f"N({cert.as_of:g})={cert.value} but the reference "
                    f"replay gives {sorted(acceptable, key=repr)} — "
                    f"the view lied")
        return failures


def default_oracles() -> list[Oracle]:
    return [AuditorOracle(), SerialOracle(), ProgressOracle(),
            ViewOracle()]


__all__ = ["Oracle", "AuditorOracle", "SerialOracle", "ProgressOracle",
           "ViewOracle", "default_oracles", "EPSILON"]
