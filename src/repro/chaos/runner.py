"""Run one workload under one fault plan, deterministically.

``run_chaos(config, plan, seed)`` is a pure function: it builds a DvP
system, pre-schedules a seed-derived transaction workload, compiles the
plan onto the simulator, runs to the plan horizon, then *settles*
(heals the network, lifts link faults, recovers dead sites, and lets
retransmissions land) so the oracles inspect a quiescent system. The
whole execution is traced; :attr:`ChaosResult.fingerprint` is a SHA-256
over every event, so two runs of the same ``(seed, plan)`` can be
compared bit-for-bit.

Mid-run conservation probes run ``verify_full()`` at fixed fractions of
the horizon — the same cross-check the PR 1 fuzz performed — and any
divergence or violation they see is folded into the auditor oracle's
verdict.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.chaos.plan import FaultPlan
from repro.core.domain import CounterDomain
from repro.core.invariants import IncrementalDivergence
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    ReadLocalOp,
    ReadViewOp,
    TransactionSpec,
    TransferOp,
)
from repro.net.link import LinkConfig
from repro.obs.export import event_to_json
from repro.sim.random import derive_seed

#: Horizon fractions at which the incremental books are cross-checked
#: against a full scan while faults are still active.
PROBE_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 0.97)


@dataclass(frozen=True)
class ChaosConfig:
    """The workload/system half of a chaos scenario (plan-independent).

    The base links are benign (constant small delay, no loss): every
    failure comes from the fault plan, so an empty plan is a healthy
    run and shrinking a plan monotonically removes failure causes.
    """

    sites: int = 4
    items: int = 2
    total: int = 120
    txns: int = 24
    duration: float = 80.0
    txn_timeout: float = 10.0
    retransmit_period: float = 3.0
    checkpoint_interval: int = 4
    base_delay: float = 1.0
    base_jitter: float = 0.5
    settle: float = 150.0
    #: Rebalance-daemon policy at every site (None: no daemons). The
    #: daemons run for the whole fault horizon — the oracles must hold
    #: with planned redistribution in the schedule — and are stopped at
    #: settle start so the system can reach quiescence.
    rebalance: str | None = None
    rebalance_period: float = 6.0
    #: Transport bundling flush window (None: bundling off, the seed
    #: transport). When set, the system runs the bundled outbox + ack
    #: coalescing — replay determinism and every oracle must hold with
    #: batching exactly as without it. Old recorded artifacts carry no
    #: key and load as None.
    bundle_flush_delay: float | None = None
    #: Shard count for the sharded kernel (repro.sim.shard); 1 = the
    #: classic single-queue kernel. Old recorded artifacts carry no key
    #: and load as 1, so their fingerprints replay byte-for-byte.
    shards: int = 1
    #: Worker-lane count for the sharded kernel's schedule; any value
    #: must produce the same fingerprint (the determinism tests pin it).
    shard_workers: int = 1
    #: Partitioner name for the placement directory ("all" = the seed
    #: behaviour: every site owns every item). Old recorded artifacts
    #: carry no key and load as "all", replaying byte-for-byte.
    partitioner: str = "all"
    #: Owners per item under non-"all" partitioners (None: every site).
    replicas: int | None = None
    #: Serving front-end router (None: the seed direct-submit path).
    #: When set, every chaos arrival flows through the
    #: repro.serving front-end — routed, queued, admission-controlled —
    #: and ``submitted`` counts dispatches *into* the system (sheds
    #: never entered it). Old recorded artifacts carry no key and load
    #: as None, replaying byte-for-byte.
    serving: str | None = None
    serving_max_depth: int = 8
    serving_max_inflight: int = 2
    serving_board_period: float = 4.0
    #: Per-reader staleness bound for bounded-staleness view reads
    #: (None: views off, the seed read path). When set, the system runs
    #: the Π(b) view service (docs/READS.md) and a slice of the read
    #: workload becomes ``ReadViewOp(bound=views)`` — re-interpreting
    #: an existing roll range, never drawing extra randomness, so
    #: views-off digests stay byte-identical. Old recorded artifacts
    #: carry no key and load as None, replaying byte-for-byte.
    views: float | None = None
    #: View refresh (write-behind publish) period in virtual time.
    view_refresh: float = 4.0

    def site_names(self) -> list[str]:
        return [f"S{index}" for index in range(self.sites)]

    def item_names(self) -> list[str]:
        return [f"item{index}" for index in range(self.items)]

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosConfig":
        return cls(**data)


@dataclass
class ChaosResult:
    """Everything the oracles and the explorer need from one run."""

    config: ChaosConfig
    plan: FaultPlan
    seed: int
    system: DvPSystem
    submitted: int = 0
    wiped_by_crash: int = 0
    probe_failures: list[str] = field(default_factory=list)
    failures: dict[str, list[str]] = field(default_factory=dict)
    fingerprint: str = ""
    initial_totals: dict[str, int] = field(default_factory=dict)
    #: Canonical JSONL lines of the retained trace ring (empty unless
    #: the run was started with ``trace_limit > 0``). Deterministic:
    #: same (config, plan, seed, trace_limit) → same lines.
    trace_tail: list[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    @property
    def failed_oracles(self) -> tuple[str, ...]:
        return tuple(sorted(self.failures))

    def summary(self) -> str:
        """Deterministic one-liner (no wall-clock, no object ids)."""
        results = self.system.results
        committed = sum(1 for r in results if r.committed)
        verdict = ("FAIL[" + ",".join(self.failed_oracles) + "]"
                   if self.failed else "ok")
        return (f"seed={self.seed} actions={len(self.plan)} "
                f"txns={committed}c/{len(results) - committed}a/"
                f"{self.submitted - len(results)}l "
                f"crashes={sum(s.crash_count for s in self.system.sites.values())} "
                f"{verdict} trace={self.fingerprint[:12]}")


def _build_workload(system: DvPSystem, config: ChaosConfig,
                    result: ChaosResult, frontend=None) -> None:
    """Pre-schedule every arrival from a seed-derived stream.

    Arrivals at a dead site vanish without being counted as submitted
    (the customer's request never reached a running server), so the
    progress oracle can attribute every lost submission to a crash.
    With a serving *frontend* the arrival instead enters the front-end
    (the load balancer outlives any one site); requests the front-end
    sheds never reach the system and are not counted as submitted —
    ``run_chaos`` reads the dispatch count off the front-end after the
    run.
    """
    rng = system.sim.rng.stream("chaos:workload")
    sites = config.site_names()
    items = config.item_names()
    for _ in range(config.txns):
        site = rng.choice(sites)
        item = rng.choice(items)
        roll = rng.random()
        amount = rng.randint(1, max(2, config.total // (2 * config.sites)))
        if roll < 0.50:
            op = DecrementOp(item, amount)
        elif roll < 0.70:
            op = IncrementOp(item, rng.randint(1, 8))
        elif roll < 0.82 and len(items) > 1:
            other = rng.choice([name for name in items if name != item])
            op = TransferOp(item, other, rng.randint(1, 5))
        elif roll < 0.92:
            # With views on, the upper half of the read range becomes a
            # bounded-staleness view read. The roll was already drawn,
            # so views-off runs consume the same stream and keep their
            # exploration digests byte-identical.
            if config.views is not None and roll >= 0.87:
                op = ReadViewOp(item, bound=config.views)
            else:
                op = ReadFullOp(item)
        else:
            op = ReadLocalOp(item)
        when = rng.uniform(0.5, config.duration)
        # Local reads return only the site's own quota — a lower bound
        # with no serial-value claim — so the serial oracle must be
        # able to tell them apart from full reads. View reads claim a
        # *bounded-stale* value, judged by the view oracle instead.
        label = ("chaos:local-read" if isinstance(op, ReadLocalOp)
                 else "chaos:view-read" if isinstance(op, ReadViewOp)
                 else "chaos")

        def arrive(site=site, op=op, label=label) -> None:
            spec = TransactionSpec(ops=(op,), label=label)
            if frontend is not None:
                frontend.submit(site, spec)
                return
            target = system.sites[site]
            if not target.alive:
                return
            result.submitted += 1
            target.submit(spec)

        # Site-targeted arrival: lands on the shard owning the site.
        system.sim.at_site(site, when, arrive,
                           label=f"chaos-arrival:{site}")


def _install_probes(system: DvPSystem, config: ChaosConfig,
                    result: ChaosResult) -> None:
    for fraction in PROBE_FRACTIONS:
        def probe(fraction=fraction) -> None:
            try:
                reports = system.auditor.verify_full()
            except IncrementalDivergence as exc:
                result.probe_failures.append(
                    f"t={fraction * config.duration:g}: divergence: {exc}")
                return
            for report in reports:
                if not report.ok:
                    result.probe_failures.append(
                        f"t={fraction * config.duration:g}: {report}")
        # verify_full scans every site's books: a consistent global
        # cut under sharding (plain `at` on the single-queue kernel).
        system.sim.at_global(fraction * config.duration, probe,
                             label="chaos-probe")


def run_chaos(config: ChaosConfig, plan: FaultPlan, seed: int,
              oracles: "list | None" = None,
              trace_limit: int = 0,
              trace_kernel: bool = False) -> ChaosResult:
    """Execute one ``(config, plan, seed)`` scenario and judge it.

    *oracles* defaults to the standard three (auditor, serial,
    progress); pass an explicit list to narrow or extend.

    ``trace_limit > 0`` additionally enables the structured trace bus
    with a ring of that many events; the retained tail lands in
    :attr:`ChaosResult.trace_tail` (and the full live bus stays
    readable on ``result.system.sim.obs``, which `repro trace` renders
    from). Tracing is observation only — it never perturbs the
    schedule, so the fingerprint is unchanged by it.
    """
    from repro.chaos.oracles import default_oracles

    bundling = None
    if config.bundle_flush_delay is not None:
        from repro.net.outbox import BundlingConfig
        bundling = BundlingConfig(flush_delay=config.bundle_flush_delay)
    views = None
    if config.views is not None:
        from repro.reads import ViewConfig
        views = ViewConfig(refresh_period=config.view_refresh)
    system = DvPSystem(SystemConfig(
        sites=config.site_names(), seed=seed,
        txn_timeout=config.txn_timeout,
        retransmit_period=config.retransmit_period,
        checkpoint_interval=config.checkpoint_interval,
        link=LinkConfig(base_delay=config.base_delay,
                        jitter=config.base_jitter),
        bundling=bundling,
        shards=config.shards, shard_workers=config.shard_workers,
        partitioner=config.partitioner, replicas=config.replicas,
        views=views))
    result = ChaosResult(config=config, plan=plan, seed=seed, system=system)
    per_site = _quota_split(config, seed)
    for item in config.item_names():
        system.add_item(item, CounterDomain(), split=per_site[item])
        result.initial_totals[item] = sum(per_site[item].values())
    frontend = None
    if config.serving is not None:
        from repro.serving import ServingConfig, ServingFrontend
        frontend = ServingFrontend(system, ServingConfig(
            router=config.serving,
            max_inflight=config.serving_max_inflight,
            max_depth=config.serving_max_depth,
            board_period=config.serving_board_period))
        frontend.start()
    daemons = {}
    if config.rebalance is not None:
        from repro.core.rebalance import RebalanceConfig, install_rebalancing
        daemons = install_rebalancing(system, RebalanceConfig(
            period=config.rebalance_period, high_watermark=1.5,
            policy=config.rebalance))

    system.sim.enable_trace(limit=0)  # fingerprint only; keep no list
    if trace_limit > 0:
        system.sim.obs.enable(ring_limit=trace_limit,
                              kernel_steps=trace_kernel)
    _build_workload(system, config, result, frontend)
    _install_probes(system, config, result)
    plan.compile(system)

    system.run_until(config.duration)

    # Serving settle: refuse new work and shed the queued backlog so
    # everything *dispatched* decides inside the settle window (queued
    # requests never entered the system; shedding them is bookkeeping,
    # not data loss). In-flight transactions decide on their own.
    if frontend is not None:
        frontend.quiesce()

    # Settle: lift every scripted fault, revive every site, let
    # retransmissions land. The oracles require quiescence — so the
    # daemons stop here too (a push in the settle tail would leave a
    # fresh Vm unacked at the horizon; everything already in flight
    # lands and acks normally).
    for daemon in daemons.values():
        daemon.stop()
    system.network.heal()
    system.network.clear_all_link_faults()
    for name, site in system.sites.items():
        if not site.alive:
            system.recover(name)  # call_in_site: timers land on the shard
    system.run_for(config.txn_timeout + config.settle)

    if frontend is not None:
        # Submissions = dispatches into the system; sheds stayed out.
        result.submitted = frontend.dispatched
    result.wiped_by_crash = sum(site.txns_wiped
                                for site in system.sites.values())
    result.fingerprint = system.sim.trace_fingerprint()
    if trace_limit > 0:
        result.trace_tail = [event_to_json(event)
                             for event in system.sim.obs.events()]
    for oracle in (default_oracles() if oracles is None else oracles):
        messages = oracle.check(result)
        if messages:
            result.failures[oracle.name] = messages
    return result


def _quota_split(config: ChaosConfig, seed: int) -> dict[str, dict[str, int]]:
    """Deterministic uneven initial quotas (forces early Vm traffic).

    Under a non-"all" partitioner the quota goes only to each item's
    directory owners (non-owners start at zero — the combine identity).
    One weight is drawn per site regardless, so the draw sequence — and
    with it every pre-existing exploration digest — is byte-identical
    when ``partitioner="all"`` (where owners == all sites anyway).
    """
    from repro.core.partition import Directory, make_partitioner

    rng = random.Random(derive_seed(seed, "chaos:quotas"))
    directory = Directory(make_partitioner(config.partitioner),
                          tuple(config.site_names()),
                          replicas=config.replicas)
    split: dict[str, dict[str, int]] = {}
    for item in config.item_names():
        names = config.site_names()
        owners = set(directory.owners(item))
        drawn = [rng.randint(1, 5) for _ in names]
        weights = [weight if name in owners else 0
                   for name, weight in zip(names, drawn)]
        scale = config.total / sum(weights)
        quotas = [int(weight * scale) for weight in weights]
        first_owner = next(i for i, name in enumerate(names)
                           if name in owners)
        quotas[first_owner] += config.total - sum(quotas)
        split[item] = dict(zip(names, quotas))
    return split


__all__ = ["ChaosConfig", "ChaosResult", "run_chaos", "PROBE_FRACTIONS"]
