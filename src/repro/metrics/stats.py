"""Summary statistics over transaction latencies and counts.

Kept dependency-free (no numpy) so the core library stays lightweight;
the experiment harness is the only consumer that cares about speed and
these sample sizes are small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        return math.nan
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a latency sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def empty(cls) -> "Summary":
        return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)


def summarize(values: list[float]) -> Summary:
    if not values:
        return Summary.empty()
    return Summary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        maximum=max(values))
