"""Summary statistics over transaction latencies and counts.

Kept dependency-free (no numpy) so the core library stays lightweight.
The serving front-end feeds 10^5-10^6 latency samples through
``summarize``, so the sample is sorted exactly once per summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        return math.nan
    return percentile_sorted(sorted(values), q)


def percentile_sorted(ordered: list[float], q: float) -> float:
    """Percentile of an *already sorted* sample — no copy, no sort.

    Callers that need several percentiles of the same sample sort once
    and index (``summarize`` does); sorting inside ``percentile`` per
    quantile tripled the dominant cost at 10^6 samples.
    """
    if not ordered:
        return math.nan
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a latency sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def empty(cls) -> "Summary":
        return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)


def summarize(values: list[float]) -> Summary:
    if not values:
        return Summary.empty()
    ordered = sorted(values)
    return Summary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile_sorted(ordered, 50),
        p95=percentile_sorted(ordered, 95),
        p99=percentile_sorted(ordered, 99),
        maximum=ordered[-1])
