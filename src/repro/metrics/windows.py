"""Windowed serving statistics: latency/shed/abort rates over time.

The serving front-end measures *client-perceived* latency — enqueue to
decision — which is strictly longer than ``TxnResult.latency`` (dispatch
to decision) whenever requests queue. :class:`ServeSample` records the
three timestamps per request; :func:`window_stats` buckets samples into
fixed windows and summarizes each, which is how the saturation knee is
located (p99 vs offered load, docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.stats import percentile_sorted


@dataclass(frozen=True)
class ServeSample:
    """One request's life through the serving front-end."""

    site: str                    # site the request was queued at
    arrived_at: float            # enqueue time (admission passed)
    dispatched_at: float         # left the queue, entered the system
    finished_at: float           # decision time (commit or abort)
    committed: bool

    @property
    def queue_wait(self) -> float:
        return self.dispatched_at - self.arrived_at

    @property
    def latency(self) -> float:
        """Client-perceived: enqueue to decision."""
        return self.finished_at - self.arrived_at


@dataclass(frozen=True)
class WindowStat:
    """Aggregates over one [start, start+width) window."""

    start: float
    offered: int                 # arrivals (admitted + shed) in window
    shed: int
    committed: int
    aborted: int
    p50: float
    p99: float
    mean_wait: float

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def abort_rate(self) -> float:
        decided = self.committed + self.aborted
        return self.aborted / decided if decided else 0.0


class StreamingWindowStats:
    """Incremental twin of :func:`window_stats` for streamed samples.

    Retaining every :class:`ServeSample` is fine at harness scales and
    hopeless at 10^5-10^6 sites. Point the serving front-end's
    ``on_sample``/``on_overload`` sinks here (with ``retain_samples``
    off) and each sample is folded into its arrival window as two
    floats and three counters, then dropped — samples outside
    [start, end) cost nothing at all. ``stats()`` returns exactly what
    ``window_stats`` returns over the same stream (the equivalence is
    a regression test).
    """

    def __init__(self, start: float, end: float, width: float) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        self.start = start
        self.end = end
        self.width = width
        count = max(1, int((end - start) / width + 0.5))
        self._latencies: list[list[float]] = [[] for _ in range(count)]
        self._waits: list[list[float]] = [[] for _ in range(count)]
        self._committed = [0] * count
        self._aborted = [0] * count
        self._sheds = [0] * count

    def _index(self, at: float) -> int | None:
        if not self.start <= at < self.end:
            return None
        count = len(self._committed)
        return min(count - 1, int((at - self.start) / self.width))

    def add(self, sample: ServeSample) -> None:
        slot = self._index(sample.arrived_at)
        if slot is None:
            return
        self._latencies[slot].append(sample.latency)
        self._waits[slot].append(sample.queue_wait)
        if sample.committed:
            self._committed[slot] += 1
        else:
            self._aborted[slot] += 1

    def add_shed(self, at: float) -> None:
        slot = self._index(at)
        if slot is not None:
            self._sheds[slot] += 1

    def stats(self) -> list[WindowStat]:
        out = []
        for slot, latencies in enumerate(self._latencies):
            ordered = sorted(latencies)
            waits = self._waits[slot]
            decided = self._committed[slot] + self._aborted[slot]
            out.append(WindowStat(
                start=self.start + slot * self.width,
                offered=decided + self._sheds[slot],
                shed=self._sheds[slot],
                committed=self._committed[slot],
                aborted=self._aborted[slot],
                p50=percentile_sorted(ordered, 50),
                p99=percentile_sorted(ordered, 99),
                mean_wait=sum(waits) / len(waits) if waits else 0.0))
        return out


def window_stats(samples: list[ServeSample], shed_times: list[float],
                 start: float, end: float, width: float) -> list[WindowStat]:
    """Bucket samples by *arrival* time into fixed windows.

    Keying on arrival (not decision) time means a window's latency
    tail reflects the load offered during that window — the quantity
    the knee is defined over.
    """
    if width <= 0:
        raise ValueError("window width must be positive")
    count = max(1, int((end - start) / width + 0.5))
    buckets: list[list[ServeSample]] = [[] for _ in range(count)]
    sheds = [0] * count

    def index(at: float) -> int | None:
        if not start <= at < end:
            return None
        return min(count - 1, int((at - start) / width))

    for sample in samples:
        slot = index(sample.arrived_at)
        if slot is not None:
            buckets[slot].append(sample)
    for at in shed_times:
        slot = index(at)
        if slot is not None:
            sheds[slot] += 1

    stats = []
    for slot, bucket in enumerate(buckets):
        latencies = sorted(sample.latency for sample in bucket)
        waits = [sample.queue_wait for sample in bucket]
        stats.append(WindowStat(
            start=start + slot * width,
            offered=len(bucket) + sheds[slot],
            shed=sheds[slot],
            committed=sum(1 for sample in bucket if sample.committed),
            aborted=sum(1 for sample in bucket if not sample.committed),
            p50=percentile_sorted(latencies, 50),
            p99=percentile_sorted(latencies, 99),
            mean_wait=sum(waits) / len(waits) if waits else 0.0))
    return stats
