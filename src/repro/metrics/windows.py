"""Windowed serving statistics: latency/shed/abort rates over time.

The serving front-end measures *client-perceived* latency — enqueue to
decision — which is strictly longer than ``TxnResult.latency`` (dispatch
to decision) whenever requests queue. :class:`ServeSample` records the
three timestamps per request; :func:`window_stats` buckets samples into
fixed windows and summarizes each, which is how the saturation knee is
located (p99 vs offered load, docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.stats import percentile_sorted


@dataclass(frozen=True)
class ServeSample:
    """One request's life through the serving front-end."""

    site: str                    # site the request was queued at
    arrived_at: float            # enqueue time (admission passed)
    dispatched_at: float         # left the queue, entered the system
    finished_at: float           # decision time (commit or abort)
    committed: bool

    @property
    def queue_wait(self) -> float:
        return self.dispatched_at - self.arrived_at

    @property
    def latency(self) -> float:
        """Client-perceived: enqueue to decision."""
        return self.finished_at - self.arrived_at


@dataclass(frozen=True)
class WindowStat:
    """Aggregates over one [start, start+width) window."""

    start: float
    offered: int                 # arrivals (admitted + shed) in window
    shed: int
    committed: int
    aborted: int
    p50: float
    p99: float
    mean_wait: float

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def abort_rate(self) -> float:
        decided = self.committed + self.aborted
        return self.aborted / decided if decided else 0.0


def window_stats(samples: list[ServeSample], shed_times: list[float],
                 start: float, end: float, width: float) -> list[WindowStat]:
    """Bucket samples by *arrival* time into fixed windows.

    Keying on arrival (not decision) time means a window's latency
    tail reflects the load offered during that window — the quantity
    the knee is defined over.
    """
    if width <= 0:
        raise ValueError("window width must be positive")
    count = max(1, int((end - start) / width + 0.5))
    buckets: list[list[ServeSample]] = [[] for _ in range(count)]
    sheds = [0] * count

    def index(at: float) -> int | None:
        if not start <= at < end:
            return None
        return min(count - 1, int((at - start) / width))

    for sample in samples:
        slot = index(sample.arrived_at)
        if slot is not None:
            buckets[slot].append(sample)
    for at in shed_times:
        slot = index(at)
        if slot is not None:
            sheds[slot] += 1

    stats = []
    for slot, bucket in enumerate(buckets):
        latencies = sorted(sample.latency for sample in bucket)
        waits = [sample.queue_wait for sample in bucket]
        stats.append(WindowStat(
            start=start + slot * width,
            offered=len(bucket) + sheds[slot],
            shed=sheds[slot],
            committed=sum(1 for sample in bucket if sample.committed),
            aborted=sum(1 for sample in bucket if not sample.committed),
            p50=percentile_sorted(latencies, 50),
            p99=percentile_sorted(latencies, 99),
            mean_wait=sum(waits) / len(waits) if waits else 0.0))
    return stats
