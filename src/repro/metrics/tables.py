"""Fixed-width table rendering for experiment output.

Every experiment returns a :class:`Table`; the benchmark harness prints
it so `pytest benchmarks/ --benchmark-only` regenerates the report that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            # int(inf) raises OverflowError; render it symbolically.
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e12:
            return f"{int(value)}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A titled grid of rows under named columns."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[_format_cell(value) for value in row] for row in self.rows]
        widths = [len(column) for column in self.columns]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(name.ljust(width)
                           for name, width in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
