"""Measurement: per-transaction records, summary statistics, tables."""

from repro.metrics.collector import Collector
from repro.metrics.stats import Summary, percentile, summarize
from repro.metrics.tables import Table

__all__ = ["Collector", "Summary", "Table", "percentile", "summarize"]
