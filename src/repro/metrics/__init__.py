"""Measurement: per-transaction records, summary statistics, tables."""

from repro.metrics.collector import Collector, CollectorInconsistency
from repro.metrics.stats import Summary, percentile, percentile_sorted, summarize
from repro.metrics.tables import Table
from repro.metrics.windows import (
    ServeSample,
    StreamingWindowStats,
    WindowStat,
    window_stats,
)

__all__ = [
    "Collector",
    "CollectorInconsistency",
    "ServeSample",
    "StreamingWindowStats",
    "Summary",
    "Table",
    "WindowStat",
    "percentile",
    "percentile_sorted",
    "summarize",
    "window_stats",
]
