"""Collects transaction outcomes across a run.

Works for the DvP system and for every baseline: anything that produces
:class:`~repro.core.transactions.TxnResult`-shaped objects (the
baselines reuse that dataclass) can feed a collector.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.transactions import TxnResult
from repro.metrics.stats import Summary, summarize


class CollectorInconsistency(RuntimeError):
    """More outcomes reported than requests submitted.

    A result/shed count exceeding the submit count means somebody
    double-reported (a completion callback fired twice, or a shed was
    also given a TxnResult). Pre-fix ``Collector.lost`` clamped the
    difference with ``max(0, ...)`` and the double-report passed
    silently as "nothing lost".
    """


@dataclass
class Collector:
    """Accumulates results; knows nothing about how they were produced."""

    results: list[TxnResult] = field(default_factory=list)
    submitted: int = 0
    #: Virtual time of each submission that supplied one. Windowed
    #: views need these: a submission that vanished in a crash has no
    #: TxnResult, so the only way to count it inside a window is by
    #: when it was submitted.
    submit_times: list[float] = field(default_factory=list)
    #: Requests refused by admission control (serving front-end) —
    #: decided, but never entered the system, so no TxnResult.
    shed: int = 0
    shed_times: list[float] = field(default_factory=list)

    def on_submit(self, at: float | None = None) -> None:
        self.submitted += 1
        if at is not None:
            self.submit_times.append(at)

    def on_result(self, result: TxnResult) -> None:
        self.results.append(result)

    def on_shed(self, at: float | None = None) -> None:
        self.shed += 1
        if at is not None:
            self.shed_times.append(at)

    # -- views ---------------------------------------------------------------

    @property
    def committed(self) -> list[TxnResult]:
        return [result for result in self.results if result.committed]

    @property
    def aborted(self) -> list[TxnResult]:
        return [result for result in self.results if not result.committed]

    @property
    def lost(self) -> int:
        """Submitted but never reported back (vanished in a crash).

        Raises :class:`CollectorInconsistency` when outcomes outnumber
        submissions — a double-reported result would otherwise silently
        clamp to "0 lost". Sink-only collectors (results fed without
        ``on_submit``, as some harnesses do) never tracked submissions
        and keep reporting 0.
        """
        if self.submitted == 0:
            return 0
        outcomes = len(self.results) + self.shed
        if outcomes > self.submitted:
            raise CollectorInconsistency(
                f"{len(self.results)} results + {self.shed} sheds "
                f"reported for only {self.submitted} submissions — "
                "a completion callback fired more than once")
        return self.submitted - outcomes

    def commit_rate(self) -> float:
        if not self.results:
            return 0.0
        return len(self.committed) / len(self.results)

    def abort_reasons(self) -> Counter:
        return Counter(result.reason for result in self.aborted)

    def latency_summary(self, committed_only: bool = True) -> Summary:
        pool = self.committed if committed_only else self.results
        return summarize([result.latency for result in pool])

    def max_latency(self) -> float:
        """Worst-case decision time over ALL decided transactions —
        commits and aborts alike. The non-blocking property (E1) is
        exactly the claim that this is bounded by the timeout."""
        if not self.results:
            return 0.0
        return max(result.latency for result in self.results)

    def throughput(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return len(self.committed) / duration

    def in_window(self, start: float, end: float) -> "Collector":
        """Sub-collector of results that were *submitted* in [start, end).

        When per-submission timestamps were recorded, ``submitted`` (and
        hence ``lost``) reflects the submissions that actually fell in
        the window — not just the ones that came back. Pre-fix this
        method set ``submitted = len(results)``, so a windowed view
        could never report a lost transaction. Without timestamps
        (legacy callers) it falls back to that old behaviour.
        """
        window = Collector()
        window.results = [result for result in self.results
                          if start <= result.submitted_at < end]
        window.submit_times = [at for at in self.submit_times
                               if start <= at < end]
        window.shed_times = [at for at in self.shed_times
                             if start <= at < end]
        window.shed = len(window.shed_times)
        window.submitted = (len(window.submit_times) if self.submit_times
                            else len(window.results) + window.shed)
        return window
