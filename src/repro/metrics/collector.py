"""Collects transaction outcomes across a run.

Works for the DvP system and for every baseline: anything that produces
:class:`~repro.core.transactions.TxnResult`-shaped objects (the
baselines reuse that dataclass) can feed a collector.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.transactions import TxnResult
from repro.metrics.stats import Summary, summarize


@dataclass
class Collector:
    """Accumulates results; knows nothing about how they were produced."""

    results: list[TxnResult] = field(default_factory=list)
    submitted: int = 0
    #: Virtual time of each submission that supplied one. Windowed
    #: views need these: a submission that vanished in a crash has no
    #: TxnResult, so the only way to count it inside a window is by
    #: when it was submitted.
    submit_times: list[float] = field(default_factory=list)

    def on_submit(self, at: float | None = None) -> None:
        self.submitted += 1
        if at is not None:
            self.submit_times.append(at)

    def on_result(self, result: TxnResult) -> None:
        self.results.append(result)

    # -- views ---------------------------------------------------------------

    @property
    def committed(self) -> list[TxnResult]:
        return [result for result in self.results if result.committed]

    @property
    def aborted(self) -> list[TxnResult]:
        return [result for result in self.results if not result.committed]

    @property
    def lost(self) -> int:
        """Submitted but never reported back (vanished in a crash)."""
        return max(0, self.submitted - len(self.results))

    def commit_rate(self) -> float:
        if not self.results:
            return 0.0
        return len(self.committed) / len(self.results)

    def abort_reasons(self) -> Counter:
        return Counter(result.reason for result in self.aborted)

    def latency_summary(self, committed_only: bool = True) -> Summary:
        pool = self.committed if committed_only else self.results
        return summarize([result.latency for result in pool])

    def max_latency(self) -> float:
        """Worst-case decision time over ALL decided transactions —
        commits and aborts alike. The non-blocking property (E1) is
        exactly the claim that this is bounded by the timeout."""
        if not self.results:
            return 0.0
        return max(result.latency for result in self.results)

    def throughput(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return len(self.committed) / duration

    def in_window(self, start: float, end: float) -> "Collector":
        """Sub-collector of results that were *submitted* in [start, end).

        When per-submission timestamps were recorded, ``submitted`` (and
        hence ``lost``) reflects the submissions that actually fell in
        the window — not just the ones that came back. Pre-fix this
        method set ``submitted = len(results)``, so a windowed view
        could never report a lost transaction. Without timestamps
        (legacy callers) it falls back to that old behaviour.
        """
        window = Collector()
        window.results = [result for result in self.results
                          if start <= result.submitted_at < end]
        window.submit_times = [at for at in self.submit_times
                               if start <= at < end]
        window.submitted = (len(window.submit_times) if self.submit_times
                            else len(window.results))
        return window
