"""Fragment migration for elastic topology changes.

When the partition directory reshapes (site join/leave, replica-count
change), fragment value held by sites that lost ownership must move to
the new owners. This module does that with **ordinary transfer-mode
virtual messages** — the exact lock → log ``[actions, messages]`` →
apply → register discipline every Rds transaction uses — so the
incremental conservation auditor and all three chaos oracles check
every migration with no special cases (docs/PARTITIONING.md).

The :class:`MigrationController` runs as a periodic *global* event (a
barrier cut on the sharded kernel: it reads every site's state
consistently and hands per-site work to ``call_in_site``):

1. **Epoch fence** — before moving anything, wait until no site has an
   active transaction started under a pre-reshard epoch. In-flight
   transactions resolved their peer sets against the old directory;
   draining them first means no transaction ever observes a half-moved
   placement. The fence is bounded by the transaction timeout (every
   old-epoch transaction decides or times out), checked once per tick.
2. **Ship** — each pending move drains the source's full fragment to
   its new owner as one transfer Vm. A dead source is retried after
   recovery (its log restores the fragment first); a locked fragment
   is retried next tick; Vm retransmission covers dead or partitioned
   destinations for free.
3. **Complete** — a move is done when the destination's incoming
   channel has cumulatively accepted the shipped sequence number.
4. **Drain** (site removal) — the leaving site is rescanned every tick
   for value that arrived after the reshard (in-flight Vm addressed
   under the old epoch), and the migration holds open until the leaver
   has no unacknowledged outgoing Vm.

Placement is advisory: value that lands at a non-owner after its move
completed (a read-drain refund, a stale transfer) simply rests there —
reads fan to all peers regardless of the directory, so no value is
ever unreachable, and conservation never depended on placement at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.partition import stable_hash
from repro.obs.events import MigrationDone, MigrationShip
from repro.storage.records import SetFragment, VmCreateRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import DvPSystem


class ReshardInProgress(RuntimeError):
    """A topology change was requested while a migration is running."""


@dataclass
class Move:
    """One planned fragment movement: *src* drains *item* to *dst*."""

    src: str
    dst: str
    item: str
    state: str = "pending"       # pending -> shipped -> done
    seq: int = 0                 # channel seq of the migration Vm
    shipped: int | None = None   # integer amount actually shipped


def plan_moves(items: dict[str, tuple[str, ...]],
               new_owners: dict[str, tuple[str, ...]]) -> list[Move]:
    """Moves implied by an ownership change (old → new, per item).

    Every site that lost ownership of an item drains its fragment to a
    deterministically chosen site among those that *gained* ownership
    (or any current owner when the change only shrank the set, as in a
    site removal). The pick hashes (item, src), so load spreads across
    the gainers without any RNG draw — planning must not perturb the
    simulation's random streams.
    """
    moves: list[Move] = []
    for item in sorted(items):
        old = items[item]
        new = new_owners[item]
        gained = tuple(site for site in new if site not in old)
        candidates = gained or new
        for src in old:
            if src in new or not candidates:
                continue
            dst = candidates[stable_hash(f"{item}:{src}")
                             % len(candidates)]
            moves.append(Move(src=src, dst=dst, item=item))
    return moves


class MigrationController:
    """Drives one reshard's moves to completion; see module docstring."""

    def __init__(self, system: "DvPSystem", moves: list[Move],
                 epoch: int, drain: str | None = None,
                 period: float | None = None) -> None:
        self.system = system
        self.moves = moves
        self.epoch = epoch
        #: Site being decommissioned (rescanned for late value), if any.
        self.drain = drain
        self.period = (period if period is not None
                       else system.config.retransmit_period)
        self.done = False
        self.ticks = 0
        self.fence_waits = 0
        self._fenced = True
        self._ship_counter = 0
        sim = system.sim
        self._obs = sim.obs
        self._c_ship = sim.metrics.counter("migrate.ships")
        self._c_value = sim.metrics.counter("migrate.value")

    def start(self) -> None:
        if not self.moves and self.drain is None:
            self._finish()
            return
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        sim = self.system.sim
        sim.at_global(sim.now + self.period, self._tick,
                      label=f"migrate:tick:e{self.epoch}")

    # -- the periodic pass -------------------------------------------------

    def _tick(self) -> None:
        self.ticks += 1
        if self._fenced:
            if self._old_epoch_txns():
                self.fence_waits += 1
                self._schedule_tick()
                return
            self._fenced = False
        if self.drain is not None:
            self._rescan_drain()
        progress_pending = False
        for move in self.moves:
            if move.state == "pending":
                self._try_ship(move)
            if move.state == "shipped":
                self._check_accepted(move)
            if move.state != "done":
                progress_pending = True
        if progress_pending or self._drain_open():
            self._schedule_tick()
        else:
            self._finish()

    def _old_epoch_txns(self) -> bool:
        for site in self.system.sites.values():
            for txn in site.active.values():
                if getattr(txn, "epoch", self.epoch) < self.epoch:
                    return True
        return False

    # -- shipping ----------------------------------------------------------

    def _try_ship(self, move: Move) -> None:
        site = self.system.sites[move.src]
        if not site.alive:
            return          # recovery restores the fragment; retry then
        if not site.fragments.knows(move.item):
            move.state = "done"
            return
        self.system.sim.call_in_site(move.src,
                                     lambda: self._ship_locked(move))

    def _ship_locked(self, move: Move) -> None:
        site = self.system.sites[move.src]
        domain = site.fragments.domain(move.item)
        value = site.fragments.value(move.item)
        if domain.is_zero(value):
            move.state = "done"   # nothing to carry; drain rescans later
            return
        self._ship_counter += 1
        owner = f"migrate:{move.src}:{self._ship_counter}"
        if not site.locks.try_acquire_all(owner, {move.item}):
            return                # busy; retry next tick
        try:
            ts = site.clock.next()
            remainder = domain.zero()
            entry = site.vm.allocate_entry(move.dst, move.item, value,
                                           "transfer", owner)
            lsn = site.log_append(VmCreateRecord(
                txn_id=owner,
                actions=(SetFragment(move.item, remainder, ts=ts),),
                messages=(entry,)))
            site.apply_actions(
                (SetFragment(move.item, remainder, ts=ts),), lsn)
            site.vm.register_created([entry])
            move.seq = entry.channel_seq
            move.state = "shipped"
            move.shipped = value if isinstance(value, int) else None
            self._c_ship.value += 1
            if isinstance(value, int):
                self._c_value.value += value
            if self._obs.enabled:
                self._obs.emit(MigrationShip(
                    t=site.sim.now, site=move.src, dst=move.dst,
                    item=move.item, amount=value, epoch=self.epoch))
        finally:
            site.locks.release_all(owner)
            site.after_lock_release()

    def _check_accepted(self, move: Move) -> None:
        receiver = self.system.sites[move.dst]
        channel = receiver.vm.in_channel(move.src)
        if channel.cumulative_accepted >= move.seq:
            move.state = "done"

    # -- decommission drain ------------------------------------------------

    def _rescan_drain(self) -> None:
        """Value that reached the leaver after planning still must go."""
        leaver = self.system.sites[self.drain]
        if not leaver.alive:
            return
        covered = {(move.src, move.item) for move in self.moves
                   if move.state != "done"}
        for item in leaver.fragments.non_zero_items():
            if (self.drain, item) in covered:
                continue
            owners = self.system.directory.owners(item)
            candidates = tuple(site for site in owners
                               if site != self.drain)
            if not candidates:
                continue
            dst = candidates[stable_hash(f"{item}:{self.drain}")
                             % len(candidates)]
            self.moves.append(Move(src=self.drain, dst=dst, item=item))

    def _drain_open(self) -> bool:
        if self.drain is None:
            return False
        leaver = self.system.sites[self.drain]
        if not leaver.alive:
            return True           # must come back and finish draining
        return leaver.vm.unacked_count() > 0

    # -- completion --------------------------------------------------------

    def _finish(self) -> None:
        self.done = True
        if self._obs.enabled:
            self._obs.emit(MigrationDone(
                t=self.system.sim.now, epoch=self.epoch,
                moves=len(self.moves), fence_waits=self.fence_waits))
        self.system._migration_finished(self)


__all__ = ["Move", "plan_moves", "MigrationController",
           "ReshardInProgress"]
