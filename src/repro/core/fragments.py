"""Per-site fragment store.

A fragment is the local element of Π⁻¹(d): the stable page holds its
value (see :mod:`repro.storage.pages`); this store adds the volatile
metadata — the fragment timestamp TS(d_i) used by Conc1 — and the
domain registry mapping each item to its (Γ, Π).

An optional ``observer`` (the conservation auditor's incremental
accounting) is told about every stable-value change — registration,
write, and effective redo — with the old and new values, which is all
the information needed to keep global Σ-fragment totals in O(1).
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol

from repro.core.domain import Domain
from repro.storage.pages import PageStore

#: Test-only fault injection, used by the chaos engine's own validation
#: (see docs/CHAOS.md): a deliberately planted conservation bug that
#: the explorer must catch and the shrinker must minimize. Never set in
#: production code paths.
#:
#: ``"write"`` — every stable write of a positive integer fragment
#: silently loses one unit (value destroyed on the hot path; any
#: committing workload violates conservation, no faults required).
#: ``"crash"`` — each crash burns one unit of the first non-zero
#: integer fragment (a torn page the redo guard can never restore; only
#: plans containing a crash violate conservation).
_TEST_LEAK: str | None = None

_LEAK_MODES = (None, "write", "crash")


def set_test_leak(mode: str | None) -> None:
    """Arm/disarm the planted conservation bug (test harnesses only)."""
    global _TEST_LEAK
    if mode not in _LEAK_MODES:
        raise ValueError(f"unknown leak mode {mode!r}; try {_LEAK_MODES}")
    _TEST_LEAK = mode


def test_leak() -> str | None:
    return _TEST_LEAK


class FragmentObserver(Protocol):
    """What the auditor hooks into a fragment store."""

    def on_fragment_register(self, site: str, item: str, domain: Domain,
                             value: Any) -> None: ...

    def on_fragment_write(self, site: str, item: str, old: Any,
                          new: Any) -> None: ...


class FragmentStore:
    """Domain-aware view over a site's stable pages."""

    def __init__(self, site: str, pages: PageStore) -> None:
        self.site = site
        self.pages = pages
        self.observer: FragmentObserver | None = None
        self._domains: dict[str, Domain] = {}
        self._timestamps: dict[str, int] = {}

    # -- registration -----------------------------------------------------

    def register(self, item: str, domain: Domain, initial: Any) -> None:
        """Install *item*'s local fragment with its *initial* quota."""
        domain.validate(initial)
        self._domains[item] = domain
        self.pages.create(item, initial)
        self._timestamps[item] = 0
        if self.observer is not None:
            self.observer.on_fragment_register(self.site, item, domain,
                                               initial)

    def knows(self, item: str) -> bool:
        return item in self._domains

    def items(self) -> Iterator[str]:
        yield from self._domains

    def domain(self, item: str) -> Domain:
        return self._domains[item]

    # -- values (stable) ----------------------------------------------------

    def value(self, item: str) -> Any:
        return self.pages.read(item)

    def write(self, item: str, value: Any, lsn: int) -> None:
        if _TEST_LEAK == "write" and isinstance(value, int) and value > 0:
            value -= 1  # planted bug: one unit silently destroyed
        self._domains[item].validate(value)
        if self.observer is not None:
            old = self.pages.read(item)
            self.pages.write(item, value, lsn)
            self.observer.on_fragment_write(self.site, item, old, value)
        else:
            self.pages.write(item, value, lsn)

    def redo_write(self, item: str, value: Any, lsn: int) -> bool:
        """Idempotent redo (guarded by the page LSN)."""
        old = self.pages.read(item) if self.observer is not None else None
        written = self.pages.write_if_newer(item, value, lsn)
        if written and self.observer is not None:
            self.observer.on_fragment_write(self.site, item, old, value)
        return written

    # -- timestamps (volatile, log-reconstructed) ---------------------------

    def timestamp(self, item: str) -> int:
        return self._timestamps[item]

    def stamp(self, item: str, ts: int) -> None:
        self._timestamps[item] = ts

    def stamp_if_newer(self, item: str, ts: int) -> None:
        if ts > self._timestamps[item]:
            self._timestamps[item] = ts

    def reset_timestamps(self) -> None:
        """Crash: volatile timestamps vanish (rebuilt by recovery)."""
        for item in self._timestamps:
            self._timestamps[item] = 0
        if _TEST_LEAK == "crash":
            for item in sorted(self._domains):
                value = self.pages.read(item)
                if isinstance(value, int) and value > 0:
                    # Planted bug: the crash tears the page, and the
                    # same-LSN stamp means redo can never restore it.
                    self.write(item, value - 1, self.pages.page_lsn(item))
                    break

    def non_zero_items(self) -> list[str]:
        """Items whose local fragment currently carries value — what a
        decommission drain (repro.core.migration) still has to move."""
        return [item for item, domain in self._domains.items()
                if not domain.is_zero(self.pages.read(item))]

    def snapshot(self) -> dict[str, Any]:
        """Item → value view, used by audits and checkpoints."""
        return {item: self.pages.read(item) for item in self._domains}
