"""Per-site fragment store.

A fragment is the local element of Π⁻¹(d): the stable page holds its
value (see :mod:`repro.storage.pages`); this store adds the volatile
metadata — the fragment timestamp TS(d_i) used by Conc1 — and the
domain registry mapping each item to its (Γ, Π).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.domain import Domain
from repro.storage.pages import PageStore


class FragmentStore:
    """Domain-aware view over a site's stable pages."""

    def __init__(self, site: str, pages: PageStore) -> None:
        self.site = site
        self.pages = pages
        self._domains: dict[str, Domain] = {}
        self._timestamps: dict[str, int] = {}

    # -- registration -----------------------------------------------------

    def register(self, item: str, domain: Domain, initial: Any) -> None:
        """Install *item*'s local fragment with its *initial* quota."""
        domain.validate(initial)
        self._domains[item] = domain
        self.pages.create(item, initial)
        self._timestamps[item] = 0

    def knows(self, item: str) -> bool:
        return item in self._domains

    def items(self) -> Iterator[str]:
        yield from self._domains

    def domain(self, item: str) -> Domain:
        return self._domains[item]

    # -- values (stable) ----------------------------------------------------

    def value(self, item: str) -> Any:
        return self.pages.read(item)

    def write(self, item: str, value: Any, lsn: int) -> None:
        self._domains[item].validate(value)
        self.pages.write(item, value, lsn)

    def redo_write(self, item: str, value: Any, lsn: int) -> bool:
        """Idempotent redo (guarded by the page LSN)."""
        return self.pages.write_if_newer(item, value, lsn)

    # -- timestamps (volatile, log-reconstructed) ---------------------------

    def timestamp(self, item: str) -> int:
        return self._timestamps[item]

    def stamp(self, item: str, ts: int) -> None:
        self._timestamps[item] = ts

    def stamp_if_newer(self, item: str, ts: int) -> None:
        if ts > self._timestamps[item]:
            self._timestamps[item] = ts

    def reset_timestamps(self) -> None:
        """Crash: volatile timestamps vanish (rebuilt by recovery)."""
        for item in self._timestamps:
            self._timestamps[item] = 0

    def snapshot(self) -> dict[str, Any]:
        """Item → value view, used by audits and checkpoints."""
        return {item: self.pages.read(item) for item in self._domains}
