"""Transaction processing (Section 5).

Every transaction executes at exactly one site, in the paper's two
phases: *redistribution* (gather enough value locally; nothing changes
value) then *local commit* (force one log record; apply; release). A
timeout during redistribution aborts the transaction — and because
nothing changed value before the commit record, an aborted transaction
is just a redistribution (Rds) transaction: there are no rollbacks and
no distributed cleanup, which is precisely what makes the protocol
non-blocking.

Operations are expressed with partitionable operators only;
:class:`ReadFullOp` implements the expensive "read in the traditional
sense" (drain every fragment and every Vm to the reading site).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.messages import READ_MODE, TRANSFER_MODE, DataRequest
from repro.core.operators import BoundedDecrement, PartitionableOperator
from repro.obs.events import (
    TxnAbort,
    TxnCommit,
    TxnLocksGranted,
    TxnLockWait,
    TxnRedistribute,
    TxnSubmit,
)
from repro.sim.timers import Timer
from repro.storage.records import CommitRecord, SetFragment, VmEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.site import DvPSite


class UnsupportedSpec(ValueError):
    """A submit target refused a spec whose *shape* it cannot serve.

    Baselines with narrower scope than DvP (single-item quorum,
    increment/decrement-only 2PC, ...) raise this instead of a bare
    ValueError/TypeError so workload drivers can tell "this target
    doesn't serve that shape" (the customer walks away) apart from a
    genuine programming error, which must propagate.
    """


class Outcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


class _State(enum.Enum):
    NEW = "new"
    WAITING_LOCKS = "waiting-locks"
    GATHERING = "gathering"
    COMPUTING = "computing"
    FINISHED = "finished"


# -- operations --------------------------------------------------------------

@dataclass(frozen=True)
class IncrementOp:
    """Add *amount* to *item* (cancel seats, deposit money, restock)."""

    item: str
    amount: Any


@dataclass(frozen=True)
class DecrementOp:
    """Remove *amount* from *item* if possible (reserve, withdraw, sell)."""

    item: str
    amount: Any


@dataclass(frozen=True)
class TransferOp:
    """Move *amount* from one item to another (change flight A -> B)."""

    src_item: str
    dst_item: str
    amount: Any


@dataclass(frozen=True)
class ApplyOp:
    """Apply an arbitrary partitionable operator to *item*."""

    item: str
    operator: PartitionableOperator


@dataclass(frozen=True)
class ReadFullOp:
    """Read the item's full value N = Π(Π⁻¹(d)) — requires draining
    every remote fragment (and all in-flight Vm) to this site."""

    item: str


@dataclass(frozen=True)
class ReadLocalOp:
    """Read only the local fragment (the site's own quota).

    Free of network traffic. In ordinary DvP operation this is a lower
    bound on the item's value; when an item has been consolidated to
    this site (see repro.hybrid) the fragment IS the value, so this is
    the cheap exact read centralized mode buys."""

    item: str


@dataclass(frozen=True)
class ReadViewOp:
    """Read the item's value from a materialized Π(b) view, accepting
    up to *bound* of staleness (docs/READS.md).

    O(1) messages when the site's view cache holds an entry whose
    staleness certificate satisfies the bound; otherwise the read
    escalates to the classic :class:`ReadFullOp` fan-out (and the
    fallback's result warms the cache read-through). ``bound=None``
    accepts any entry within the cache TTL. With views disabled
    system-wide, every view read is a fan-out — the op shape is always
    safe to submit.
    """

    item: str
    bound: float | None = None


Op = (IncrementOp | DecrementOp | TransferOp | ApplyOp | ReadFullOp
      | ReadLocalOp | ReadViewOp)


@dataclass(frozen=True)
class TransactionSpec:
    """What a transaction does; ops execute in order at commit.

    ``work`` models the local computation of Section 5 step 4 ("the
    requisite computation is done"): virtual time spent holding the
    locks between sufficiency and the commit record. It is what makes
    lock contention measurable in the hot-spot experiments.
    """

    ops: tuple[Op, ...]
    label: str = ""
    work: float = 0.0

    def __post_init__(self) -> None:
        overlap = self.read_items() & self.update_items()
        if overlap:
            raise ValueError(
                f"items {sorted(overlap)} are both read (full or view) "
                "and updated; split into two transactions")

    def items(self) -> set[str]:
        """A(t): every item the transaction accesses."""
        return self.read_items() | self.update_items()

    def read_items(self) -> set[str]:
        return self.full_read_items() | set(self.view_bounds())

    def full_read_items(self) -> set[str]:
        """Items read exactly (the fan-out protocol, no views)."""
        return {op.item for op in self.ops if isinstance(op, ReadFullOp)}

    def view_bounds(self) -> dict[str, float | None]:
        """Item → tightest staleness bound among its ReadViewOps.

        Items also read with :class:`ReadFullOp` are excluded — the
        exact read dominates and serves both ops' values.
        """
        full = self.full_read_items()
        bounds: dict[str, float | None] = {}
        for op in self.ops:
            if not isinstance(op, ReadViewOp) or op.item in full:
                continue
            prior = bounds.get(op.item)
            if op.item not in bounds:
                bounds[op.item] = op.bound
            elif op.bound is not None and (prior is None
                                           or op.bound < prior):
                bounds[op.item] = op.bound
        return bounds

    def update_items(self) -> set[str]:
        found: set[str] = set()
        for op in self.ops:
            if isinstance(op, (IncrementOp, DecrementOp, ApplyOp,
                               ReadLocalOp)):
                found.add(op.item)
            elif isinstance(op, TransferOp):
                found.add(op.src_item)
                found.add(op.dst_item)
        return found

    def needs(self, domain_of) -> dict[str, Any]:
        """Per-item value the local fragment must cover before commit."""
        needed: dict[str, Any] = {}

        def add(item: str, amount: Any) -> None:
            domain = domain_of(item)
            needed[item] = domain.combine(needed.get(item, domain.zero()),
                                          amount)

        for op in self.ops:
            if isinstance(op, DecrementOp):
                add(op.item, op.amount)
            elif isinstance(op, TransferOp):
                add(op.src_item, op.amount)
            elif isinstance(op, ApplyOp):
                try:
                    sign, magnitude = op.operator.delta(domain_of(op.item))
                except NotImplementedError:
                    continue
                if sign < 0:
                    add(op.item, magnitude)
        return needed


@dataclass
class TxnResult:
    """Reported to the submitter's callback when the transaction ends."""

    txn_id: str
    label: str
    outcome: Outcome
    reason: str
    site: str
    submitted_at: float
    finished_at: float
    read_values: dict[str, Any] = field(default_factory=dict)
    semantic_deltas: list[tuple[str, int, Any]] = field(default_factory=list)
    requests_sent: int = 0
    #: Value of each read item that was inside live Vm at the commit
    #: instant (sampled by the system's god's-eye auditor). The paper's
    #: read protocol can miss exactly this much: a committed read
    #: returns Π(everything) minus what was still in transmission
    #: (Section 3's N_M term) — see harness.serial for the check.
    inflight_at_commit: dict[str, Any] = field(default_factory=dict)
    #: Item → ViewCertificate for every view-served read (docs/READS.md).
    #: The chaos ViewOracle replays the committed timeline against each
    #: certificate: its value must be the item's exact logical value at
    #: ``as_of`` and its accepted staleness must respect its bound.
    view_reads: dict[str, Any] = field(default_factory=dict)
    #: View items whose certificate could not be produced — served by
    #: the classic fan-out instead (the read-through tier repairs the
    #: cache from these, see DvPSystem._record_result).
    view_fallbacks: tuple[str, ...] = ()

    @property
    def committed(self) -> bool:
        return self.outcome is Outcome.COMMITTED

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


class Transaction:
    """Runtime state machine for one transaction at its home site."""

    def __init__(self, site: "DvPSite", spec: TransactionSpec,
                 on_done: Callable[[TxnResult], None] | None,
                 timeout: float) -> None:
        self.site = site
        self.spec = spec
        self.on_done = on_done
        self.timeout = timeout
        self.id = site.next_txn_id()
        self.ts = site.clock.next()
        #: Directory epoch this transaction resolved placement against.
        #: The migration controller's fence waits for transactions with
        #: older epochs to drain before moving fragments.
        self.epoch = site.current_epoch()
        self.state = _State.NEW
        self.submitted_at = site.sim.now
        self.requests_sent = 0
        self._timer = Timer(site.sim, self._on_timeout,
                            label=f"txn-timeout:{self.id}")
        self._read_responders: dict[str, set[str]] = {
            item: set() for item in spec.full_read_items()}
        #: View items still on the O(1) path (item → staleness bound).
        #: Escalation moves an item from here into _read_responders.
        self._view_pending: dict[str, float | None] = dict(
            spec.view_bounds())
        self._view_certs: dict[str, Any] = {}
        self._view_fallbacks: list[str] = []
        self._needs = spec.needs(site.fragments.domain)
        self.result: TxnResult | None = None
        # Section 5's variation: "the requests could be re-tried a few
        # more times". The timeout budget is split into equal rounds.
        self._rounds_left = site.config.request_retries
        self._round_length = timeout / (site.config.request_retries + 1)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Step 1: obtain local locks atomically (per the CC scheme)."""
        obs = self.site._obs
        if obs.enabled:
            obs.emit(TxnSubmit(t=self.site.sim.now, site=self.site.name,
                               txn=self.id, label=self.spec.label))
        if self._try_view_fast_path():
            return
        self._timer.start(self._round_length)
        if self.site.cc.broadcast_at_init:
            # Conc2: all requests broadcast together at initiation.
            self._send_requests(estimate_without_locks=True)
        items = self.spec.items()
        if self.site.cc.waits_for_locks:
            self.state = _State.WAITING_LOCKS
            granted = self.site.locks.acquire_all_or_wait(
                self.id, items, self._locks_granted)
            if granted:
                self._locks_granted()
            elif obs.enabled:
                obs.emit(TxnLockWait(t=self.site.sim.now,
                                     site=self.site.name, txn=self.id))
            return
        if not self.site.cc.may_lock_local(self.site, self.ts, items):
            self._abort("timestamp-refused")
            return
        if not self.site.locks.try_acquire_all(self.id, items):
            self._abort("locked")
            return
        self.site.cc.on_lock_granted(self.site, self.ts, items)
        self._locks_granted()

    def _try_view_fast_path(self) -> bool:
        """Certificate-first admission for pure-view transactions.

        A spec that only view-reads, whose every item certifies from
        the cache *right now*, commits immediately: no locks, no timer,
        no messages. The certificate IS the read — the local fragment
        contributes nothing to a view-served value, so taking its lock
        would only couple the O(1) path to unrelated contention (a
        concurrent fallback's read-freeze on a hot item would poison
        every cached read of it for the whole freeze window).

        Partial certification keeps the certificates it minted (the
        classic path revalidates them at commit) and falls through to
        the ordinary lock-first protocol for the missed items.
        """
        if self.spec.work > 0:
            # Computation holds the locks by definition (step 4);
            # that path cannot skip acquisition.
            return False
        if not self._view_pending or self._needs or self._read_responders \
                or self.spec.update_items():
            return False
        cache = self.site.views
        if cache is None:
            return False
        for item in sorted(self._view_pending):
            cert = cache.serve(item, self._view_pending[item], txn=self.id)
            if cert is None:
                # Keep what certified: _resolve_views only retries the
                # still-pending items, so no hit is counted twice.
                return False
            self._view_certs[item] = cert
            del self._view_pending[item]
        self.state = _State.GATHERING
        self._commit()
        return True

    def _locks_granted(self) -> None:
        if self.state is _State.FINISHED:
            # Timed out while waiting in the lock queue; locks were
            # granted after cancellation — give them straight back.
            self.site.locks.release_all(self.id)
            self.site.after_lock_release()
            return
        if self.site.cc.waits_for_locks:
            self.site.cc.on_lock_granted(self.site, self.ts,
                                         self.spec.items())
        if self.site._obs.enabled:
            self.site._obs.emit(TxnLocksGranted(
                t=self.site.sim.now, site=self.site.name, txn=self.id))
        self.state = _State.GATHERING
        # Views first: an escalated view item joins the fan-out set so
        # the request wave below (or an explicit fan for Conc2, whose
        # wave already left at initiation) covers it.
        self._resolve_views(fan=self.site.cc.broadcast_at_init)
        if not self.site.cc.broadcast_at_init:
            self._send_requests(estimate_without_locks=False)
        self._try_commit()
        if self.state is not _State.GATHERING:
            return
        # Still gathering: if there is a deficit but nobody was (or can
        # be) asked, the transaction can never become sufficient — the
        # pessimistic rule aborts it immediately rather than at timeout.
        if self.requests_sent == 0 and not self.site.peers():
            self._abort("insufficient-no-peers")

    # -- redistribution phase -------------------------------------------------

    def _send_requests(self, estimate_without_locks: bool) -> None:
        """Step 2: request value for every inadequate item."""
        sent_before = self.requests_sent
        peers = self.site.peers()
        for item in sorted(self._read_responders):
            for peer in peers:
                self.site.send_request(peer, DataRequest(
                    txn_id=self.id, origin=self.site.name, item=item,
                    mode=READ_MODE, need=None, ts=self.ts))
                self.requests_sent += 1
        for item, need in sorted(self._needs.items()):
            domain = self.site.fragments.domain(item)
            value = self.site.fragments.value(item)
            deficit = domain.deficit(value, need)
            if domain.is_zero(deficit):
                continue
            # Feed the rebalance planner: this site's clients want more
            # of *item* than its fragment holds (local pressure).
            self.site.demand.note_shortfall(item, deficit)
            rng = self.site.sim.rng.stream(f"policy:{self.site.name}")
            # Transfer requests target the item's directory owners
            # (identical to *peers* under the "all" partitioner); reads
            # above always fan to everyone, since any site may hold
            # stray value.
            targets = self.site.peers_for(item, self.epoch)
            for peer, ask in self.site.policy.targets(
                    self.site.name, targets, deficit, domain, rng):
                self.site.send_request(peer, DataRequest(
                    txn_id=self.id, origin=self.site.name, item=item,
                    mode=TRANSFER_MODE, need=ask, ts=self.ts))
                self.requests_sent += 1
        if self.site._obs.enabled and self.requests_sent > sent_before:
            self.site._obs.emit(TxnRedistribute(
                t=self.site.sim.now, site=self.site.name, txn=self.id,
                requests=self.requests_sent - sent_before))

    def on_vm_absorbed(self, entry: VmEntry, src: str) -> None:
        """A Vm was accepted into a fragment this transaction holds."""
        if self.state is not _State.GATHERING:
            return
        if entry.kind == "read-drain" and entry.txn_id == self.id \
                and entry.item in self._read_responders:
            # Only drains answering THIS transaction's requests count: a
            # stale drain addressed to an earlier (aborted) read is
            # still absorbed as value, but proves nothing about the
            # responder's CURRENT fragment.
            self._read_responders[entry.item].add(src)
        self._try_commit()

    def recheck(self) -> None:
        """Re-evaluate sufficiency (e.g. an outgoing Vm got acked)."""
        if self.state is _State.GATHERING:
            self._try_commit()

    # -- bounded-staleness view reads (docs/READS.md) ------------------------

    def _resolve_views(self, fan: bool) -> None:
        """Try to certify each view item from the site's cache.

        A miss escalates the item to the classic fan-out; *fan* sends
        its READ requests immediately (used when the normal request
        wave has already departed).
        """
        cache = self.site.views
        for item in sorted(self._view_pending):
            bound = self._view_pending[item]
            cert = (cache.serve(item, bound, txn=self.id)
                    if cache is not None else None)
            if cert is not None:
                self._view_certs[item] = cert
            else:
                self._escalate_view(item, fan=fan)

    def _escalate_view(self, item: str, fan: bool) -> None:
        self._view_pending.pop(item, None)
        self._view_certs.pop(item, None)
        if item in self._read_responders:
            return
        self._read_responders[item] = set()
        self._view_fallbacks.append(item)
        if fan:
            self._fan_read(item)

    def _fan_read(self, item: str) -> None:
        """Fan READ requests for one late-escalated item."""
        sent_before = self.requests_sent
        for peer in self.site.peers():
            self.site.send_request(peer, DataRequest(
                txn_id=self.id, origin=self.site.name, item=item,
                mode=READ_MODE, need=None, ts=self.ts))
            self.requests_sent += 1
        if self.site._obs.enabled and self.requests_sent > sent_before:
            self.site._obs.emit(TxnRedistribute(
                t=self.site.sim.now, site=self.site.name, txn=self.id,
                requests=self.requests_sent - sent_before))

    def _revalidate_views(self) -> None:
        """Certificates admit at the commit attempt, not the first
        serve: time spent gathering other items ages them, and a
        reshard invalidates their epoch. A failed re-check retries the
        cache once (a fresher refresh may have landed), then escalates."""
        if not self._view_certs:
            return
        now = self.site.sim.now
        epoch = self.site.current_epoch()
        cache = self.site.views
        for item in sorted(self._view_certs):
            cert = self._view_certs[item]
            aged = cert.bound is not None and now - cert.as_of > cert.bound
            if not aged and cert.epoch == epoch:
                continue
            bound = self._view_pending.get(item)
            fresh = (cache.serve(item, bound, txn=self.id)
                     if cache is not None else None)
            if fresh is not None:
                self._view_certs[item] = fresh
            else:
                self._escalate_view(item, fan=True)

    def _sufficient(self) -> bool:
        for item, need in self._needs.items():
            domain = self.site.fragments.domain(item)
            if not domain.covers(self.site.fragments.value(item), need):
                return False
        peers = set(self.site.peers())
        for item, responders in self._read_responders.items():
            if not peers <= responders:
                return False
            # The reading site itself must owe nothing: an outstanding
            # outgoing Vm is value missing from Π of what it can see.
            if self.site.vm.has_outstanding(item):
                return False
        return True

    # -- commit phase -----------------------------------------------------------

    def _try_commit(self) -> None:
        if self.state is not _State.GATHERING:
            return
        self._revalidate_views()
        if not self._sufficient():
            return
        if self.spec.work > 0:
            # Redistribution is complete; computation cannot time out
            # (it is bounded local work), so the timer is disarmed.
            self.state = _State.COMPUTING
            self._timer.cancel()
            self.site.sim.after(self.spec.work, self._commit,
                                label=f"txn-work:{self.id}")
            return
        self._commit()

    def _commit(self) -> None:
        """Steps 4-7: compute, force the commit record, apply, release."""
        if self.state not in (_State.GATHERING, _State.COMPUTING):
            return
        if not self.site.alive or self.id not in self.site.active:
            # The site crashed while the computation was scheduled (and
            # possibly recovered since); the transaction never reached
            # its commit record, so it simply never happened.
            return
        working: dict[str, Any] = {}
        read_values: dict[str, Any] = {}
        deltas: list[tuple[str, int, Any]] = []

        def current(item: str) -> Any:
            if item not in working:
                working[item] = self.site.fragments.value(item)
            return working[item]

        for op in self.spec.ops:
            if isinstance(op, IncrementOp):
                domain = self.site.fragments.domain(op.item)
                working[op.item] = domain.combine(current(op.item), op.amount)
                deltas.append((op.item, +1, op.amount))
            elif isinstance(op, DecrementOp):
                if not self._apply_decrement(op.item, op.amount, working,
                                             current):
                    return
                deltas.append((op.item, -1, op.amount))
            elif isinstance(op, TransferOp):
                if not self._apply_decrement(op.src_item, op.amount, working,
                                             current):
                    return
                domain = self.site.fragments.domain(op.dst_item)
                working[op.dst_item] = domain.combine(current(op.dst_item),
                                                      op.amount)
                deltas.append((op.src_item, -1, op.amount))
                deltas.append((op.dst_item, +1, op.amount))
            elif isinstance(op, ApplyOp):
                domain = self.site.fragments.domain(op.item)
                application = op.operator.apply(domain, current(op.item))
                if not application.effective:
                    self._abort("ineffective-operator")
                    return
                working[op.item] = application.value
                try:
                    sign, magnitude = op.operator.delta(domain)
                    deltas.append((op.item, sign, magnitude))
                except NotImplementedError:
                    pass
            elif isinstance(op, ReadViewOp):
                cert = self._view_certs.get(op.item)
                if cert is not None:
                    read_values[op.item] = cert.value
                else:
                    # Escalated (or shadowed by a ReadFullOp): the
                    # drained fragment holds the exact value.
                    read_values[op.item] = current(op.item)
            elif isinstance(op, (ReadFullOp, ReadLocalOp)):
                read_values[op.item] = current(op.item)

        changed = {item: value for item, value in working.items()
                   if value != self.site.fragments.value(item)}
        actions = tuple(SetFragment(item, value, ts=self.ts)
                        for item, value in sorted(changed.items()))
        if actions:
            # Step 5: the forced commit record IS the commit point.
            lsn = self.site.log_append(CommitRecord(self.id, actions))
            # Step 6: make the changes and record that they were made.
            self.site.apply_actions(actions, lsn)
        self._finish(Outcome.COMMITTED, "ok", read_values, deltas)

    def _apply_decrement(self, item: str, amount: Any,
                         working: dict[str, Any], current) -> bool:
        domain = self.site.fragments.domain(item)
        application = BoundedDecrement(amount).apply(domain, current(item))
        if not application.effective:
            self._abort("ineffective-decrement")
            return False
        working[item] = application.value
        return True

    # -- abort paths -------------------------------------------------------------

    def skew_timeout(self) -> None:
        """Clock-skew hook: the armed timeout fires now instead of later.

        Legal because a timeout is a purely local, pessimistic decision
        — nothing in the protocol depends on how long it actually
        waited. No-op when the timer is disarmed (committing)."""
        if self._timer.armed:
            self._timer.cancel()
            self._on_timeout()

    def _on_timeout(self) -> None:
        """Step 3's pessimism: a timeout aborts (after optional retries)."""
        if self.state not in (_State.WAITING_LOCKS, _State.GATHERING,
                              _State.NEW):
            return
        if self._rounds_left > 0 and self.state is _State.GATHERING:
            self._rounds_left -= 1
            self._send_requests(estimate_without_locks=False)
            self._timer.start(self._round_length)
            return
        self._abort("timeout")

    def _abort(self, reason: str) -> None:
        if reason in ("timeout", "ineffective-decrement"):
            # A client walked away unserved for lack of local value —
            # the strongest demand signal the planner gets.
            for item in self._needs:
                self.site.demand.note_abort(item)
        self._finish(Outcome.ABORTED, reason, {}, [])

    def _finish(self, outcome: Outcome, reason: str,
                read_values: dict[str, Any],
                deltas: list[tuple[str, int, Any]]) -> None:
        if self.state is _State.FINISHED:
            return
        was_waiting = self.state is _State.WAITING_LOCKS
        self.state = _State.FINISHED
        self._timer.cancel()
        if was_waiting:
            self.site.locks.cancel_waiter(self.id)
        self.site.locks.release_all(self.id)
        self.result = TxnResult(
            txn_id=self.id, label=self.spec.label, outcome=outcome,
            reason=reason, site=self.site.name,
            submitted_at=self.submitted_at, finished_at=self.site.sim.now,
            read_values=read_values, semantic_deltas=deltas,
            requests_sent=self.requests_sent,
            view_reads=(dict(self._view_certs)
                        if outcome is Outcome.COMMITTED else {}),
            view_fallbacks=tuple(self._view_fallbacks))
        self.site.h_decision[outcome].observe(self.result.latency)
        if self.site._obs.enabled:
            if outcome is Outcome.COMMITTED:
                self.site._obs.emit(TxnCommit(
                    t=self.site.sim.now, site=self.site.name, txn=self.id))
            else:
                self.site._obs.emit(TxnAbort(
                    t=self.site.sim.now, site=self.site.name, txn=self.id,
                    reason=reason))
        self.site.transaction_finished(self)
        if self.on_done is not None:
            self.on_done(self.result)
