"""A DvP site: fragment store + stable log + Vm engine + lock table +
concurrency control + transaction executor + remote-request handler.

Everything a site ever does falls into the paper's two conceptual
transaction classes: *real* transactions (submitted by clients, may
change item values) and *Rds* transactions (honoring remote requests,
accepting virtual messages — change only the distribution). The Rds
work is performed inline by the handlers below, under the same locks
and logging discipline as real transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.cc import ConcurrencyControl
from repro.core.fragments import FragmentStore
from repro.core.locks import LockTable
from repro.core.messages import (
    READ_MODE,
    DataRequest,
    TsAdvisory,
    VmAck,
    VmTransfer,
)
from repro.core.policies import RedistributionPolicy
from repro.core.redistribution import DemandTracker
from repro.core.timestamps import LamportClock
from repro.core.transactions import (
    Outcome,
    Transaction,
    TransactionSpec,
    TxnResult,
)
from repro.core.vm import VmManager
from repro.net.message import Envelope
from repro.net.network import Network
from repro.reads.messages import ViewRefresh
from repro.obs.events import LogForce, SiteCrash
from repro.sim.kernel import Simulator
from repro.storage.checkpoint import CheckpointPolicy
from repro.storage.log import StableLog
from repro.storage.pages import PageStore
from repro.storage.records import (
    CheckpointRecord,
    SetFragment,
    VmAcceptRecord,
    VmCreateRecord,
)


@dataclass
class SiteConfig:
    """Per-site protocol knobs."""

    txn_timeout: float = 30.0
    retransmit_period: float = 5.0
    checkpoint_interval: int = 0  # log records between checkpoints; 0 = off
    #: Retry request rounds before the timeout fires (Section 5 mentions
    #: "the requests could be re-tried a few more times" as a variation;
    #: 0 reproduces the paper's pessimistic base protocol).
    request_retries: int = 0
    #: After honoring a read-drain, keep the drained fragment locked for
    #: this long (None = txn_timeout). Reproduction finding: without
    #: this freeze a drained site can be re-funded (local increments,
    #: arriving Vm) before the reader commits, and the committed read
    #: misses that value non-serializably. The freeze realizes the
    #: paper's implicit serial-execution assumption that "all sites
    #: other than the site where the read is performed will have null
    #: values" while the read completes; it is time-bounded, so the
    #: non-blocking property survives.
    read_freeze: float | None = None
    #: Sliding-window cap on in-flight Vm per channel (None = unbounded).
    vm_window: int | None = None
    #: Suppress explicit VmAcks already carried by a same-instant data
    #: message's piggyback field (see VmManager). Off by default; the
    #: system façade turns it on together with transport bundling.
    coalesce_acks: bool = False


class SiteDown(RuntimeError):
    """Submission attempted at a crashed site."""


class DvPSite:
    """One failure-prone site in a DvP system."""

    def __init__(self, name: str, rank: int, sim: Simulator,
                 network: Network, cc: ConcurrencyControl,
                 policy: RedistributionPolicy,
                 config: SiteConfig | None = None,
                 on_result: Callable[[TxnResult], None] | None = None) -> None:
        self.name = name
        self.rank = rank
        self.sim = sim
        self.network = network
        self.cc = cc
        self.policy = policy
        self.config = config or SiteConfig()
        self.on_result = on_result

        # Observability handles (docs/OBSERVABILITY.md): the shared
        # event bus plus this site's decision-latency histograms.
        self._obs = sim.obs
        self.h_decision = {
            outcome: sim.metrics.histogram(
                "txn.decision", site=name, outcome=outcome.value)
            for outcome in (Outcome.COMMITTED, Outcome.ABORTED)
        }

        self.log = StableLog(name)
        self.pages = PageStore(name)
        self.fragments = FragmentStore(name, self.pages)
        #: Accounting observer (the system's conservation auditor). Set
        #: by DvPSystem after construction; the notify methods below
        #: look it up late so VmManagers rebuilt by recovery stay wired.
        self.observer = None
        #: Placement router (repro.core.partition.Router). Set by
        #: DvPSystem after construction; None = static topology (every
        #: peer owns every item — the seed behaviour).
        self.router = None
        #: True once the directory dropped this site (System.remove_site).
        #: The site stays alive and registered until its value drains.
        self.decommissioned = False
        #: Bounded-staleness view cache (repro.reads; docs/READS.md).
        #: Wired by the system's ViewService when views are enabled;
        #: None = the classic fan-out-only read path.
        self.views = None
        self.locks = LockTable()
        self.clock = LamportClock(rank)
        #: Decayed demand/wealth ledger feeding the rebalance planner
        #: (repro.core.redistribution). Volatile, like the lock table.
        self.demand = DemandTracker(sim)
        self.vm = self._new_vm_manager()
        self.checkpoint_policy = CheckpointPolicy(
            self.config.checkpoint_interval)

        self.alive = True
        self.active: dict[str, Transaction] = {}
        self.crash_count = 0
        #: Transactions whose volatile state a crash destroyed — their
        #: clients never hear back. The chaos progress oracle uses this
        #: to prove every undecided submission is attributable to a
        #: crash (and not to a transaction blocking on a dead peer).
        self.txns_wiped = 0
        #: [start, end] virtual-time windows this site spent dead (end
        #: is None while still down). Fault plans and oracles read it.
        self.downtime: list[list[float | None]] = []
        self.recovery_reports: list["RecoveryReport"] = []
        self.requests_honored = 0
        self.requests_ignored = 0
        self._txn_counter = 0
        self._rds_counter = 0
        self._records_since_checkpoint = 0
        self._checkpoint_scheduled = False

        network.register(name, self.deliver)

    def _new_vm_manager(self) -> VmManager:
        return VmManager(
            self.name, self.sim,
            send=lambda dst, payload: self.network.send(self.name, dst,
                                                        payload),
            accept=self._accept_vm,
            clock_ts=self.clock.next,
            retransmit_period=self.config.retransmit_period,
            window=self.config.vm_window,
            on_created=self._notify_vm_created,
            on_accepted=self._notify_vm_accepted,
            coalesce_acks=self.config.coalesce_acks)

    def _notify_vm_created(self, entry) -> None:
        if self.observer is not None:
            self.observer.on_vm_created(self.name, entry)

    def _notify_vm_accepted(self, src: str, entry) -> None:
        # A peer that sends value demonstrably has it — wealth evidence
        # for the pull policy's "richest reachable peer" estimate.
        self.demand.note_supply(src, entry.item, entry.amount)
        if self.observer is not None:
            self.observer.on_vm_accepted(self.name, src, entry)

    # -- topology ---------------------------------------------------------

    def peers(self) -> list[str]:
        """Every other site (all sites hold fragments of all items)."""
        return [site for site in self.network.sites if site != self.name]

    def current_epoch(self) -> int:
        """The directory epoch placement is currently resolved against."""
        if self.router is None:
            return 0
        return self.router.directory.epoch

    def peers_for(self, item: str, epoch_hint: int | None = None
                  ) -> list[str]:
        """Peers worth asking for *item*'s value: its directory owners.

        Falls back to :meth:`peers` with no router (static topology)
        or when this site is the item's only owner — a transaction
        short of value may still find it at a non-owner holding strays
        (reads always fan to everyone, so nothing is unreachable).
        """
        if self.router is None:
            return self.peers()
        owners, _epoch = self.router.route(item, epoch_hint)
        targets = [site for site in owners if site != self.name]
        return targets or self.peers()

    # -- client API -------------------------------------------------------

    def next_txn_id(self) -> str:
        self._txn_counter += 1
        return f"{self.name}#{self._txn_counter}"

    def submit(self, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None
               ) -> Transaction:
        """Initiate a transaction at this site (Section 5's sequence)."""
        if not self.alive:
            raise SiteDown(f"site {self.name} is down")
        txn = Transaction(self, spec, self._wrap_done(on_done),
                          self.config.txn_timeout)
        self.active[txn.id] = txn
        txn.start()
        return txn

    def _wrap_done(self, on_done):
        def done(result: TxnResult) -> None:
            if self.on_result is not None:
                self.on_result(result)
            if on_done is not None:
                on_done(result)
        return done

    def transaction_finished(self, txn: Transaction) -> None:
        """Step 7 aftermath: drop it from the active set, poke waiters."""
        self.active.pop(txn.id, None)
        self.after_lock_release()

    def after_lock_release(self) -> None:
        """Locks freed: pending Vm may now be acceptable."""
        if self.alive:
            self.vm.poke()

    # -- logging ----------------------------------------------------------

    def log_append(self, record: Any) -> int:
        """Force a record; take a checkpoint when the policy says so.

        The checkpoint itself is deferred to a fresh event: callers
        apply a record's actions immediately after appending it, and a
        checkpoint taken in between would let recovery skip a
        committed-but-unapplied action (the checkpoint sits after the
        commit record, so the redo scan would never revisit it).
        """
        lsn = self.log.append(record)
        if self._obs.enabled:
            self._obs.emit(LogForce(t=self.sim.now, site=self.name,
                                    record=type(record).__name__, lsn=lsn))
        self._records_since_checkpoint += 1
        if self.checkpoint_policy.due(self._records_since_checkpoint) \
                and not self._checkpoint_scheduled:
            self._checkpoint_scheduled = True
            self.sim.after(0.0, self._deferred_checkpoint,
                           label=f"checkpoint:{self.name}")
        return lsn

    def _deferred_checkpoint(self) -> None:
        self._checkpoint_scheduled = False
        if self.alive:
            self.write_checkpoint()

    def write_checkpoint(self) -> int:
        """Append a fuzzy checkpoint of fragments and channel state."""
        if __debug__:
            # Periodic drift check: the VmManager's O(1) live-Vm
            # counters must agree with the full channel scan the
            # checkpoint is about to take anyway.
            self.vm.check_accounting()
        snapshot = sorted(self.fragments.snapshot().items(),
                          key=lambda kv: kv[0])
        record = CheckpointRecord(
            fragments=tuple(snapshot),
            fragment_timestamps=tuple(
                (item, self.fragments.timestamp(item))
                for item, _value in snapshot),
            outgoing_unacked=tuple(
                entry for channel in self.vm.outgoing.values()
                for entry in channel.unacked()),
            incoming_cumulative=tuple(
                (src, channel.cumulative_accepted)
                for src, channel in sorted(self.vm.incoming.items())),
            next_channel_seq=tuple(
                (dst, channel.next_seq)
                for dst, channel in sorted(self.vm.outgoing.items())),
            extra=(("clock", self.clock.counter),))
        lsn = self.log.append(record)
        self._records_since_checkpoint = 0
        return lsn

    def apply_actions(self, actions: Iterable[SetFragment],
                      lsn: int) -> None:
        """Write logged actions through to the stable pages."""
        for action in actions:
            self.fragments.write(action.item, action.value, lsn)
            self.fragments.stamp_if_newer(action.item, action.ts)

    # -- message plumbing ---------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        """Network delivery handler; a dead site hears nothing."""
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, DataRequest):
            self.clock.observe(payload.ts)
            self.handle_request(payload)
        elif isinstance(payload, VmTransfer):
            self.clock.observe(payload.ts)
            self.vm.on_transfer(payload)
            self._recheck_active()
        elif isinstance(payload, VmAck):
            self.clock.observe(payload.ts)
            self.vm.on_ack(payload)
            self._recheck_active()
        elif isinstance(payload, TsAdvisory):
            self.clock.observe(payload.ts)
        elif isinstance(payload, ViewRefresh):
            # No Lamport coupling: refreshes carry barrier snapshots,
            # not protocol state — a viewless site just drops them.
            if self.views is not None:
                self.views.absorb(payload)

    def send_request(self, dst: str, request: DataRequest) -> None:
        """Fire-and-forget: requests carry no delivery guarantee."""
        self.network.send(self.name, dst, request)

    def _recheck_active(self) -> None:
        for txn in list(self.active.values()):
            txn.recheck()

    # -- remote request handling (Rds transactions) --------------------------

    def handle_request(self, request: DataRequest) -> None:
        """Decide whether to honor a remote request (Section 5).

        Any reason suffices to ignore a request — the requester relies
        only on its timeout. Honoring runs as an Rds transaction under
        the site's own locks and logging.
        """
        if not self.fragments.knows(request.item):
            self.requests_ignored += 1
            return
        if request.mode != READ_MODE and request.need is not None:
            # Whatever we decide below, the request itself is a demand
            # signal: *origin* wants value of this item. The rebalance
            # planner pushes toward recently-demanding peers.
            self.demand.note_remote_demand(request.origin, request.item,
                                           request.need)
        self._rds_counter += 1
        owner = f"rds:{self.name}:{self._rds_counter}"
        if self.cc.waits_for_locks:
            granted = self.locks.acquire_all_or_wait(
                owner, {request.item},
                lambda: self._honor_locked(owner, request))
            if granted:
                self._honor_locked(owner, request)
            return
        if not self.locks.is_free(request.item):
            self.requests_ignored += 1
            return
        if not self.cc.may_honor(self, request.ts, request.item):
            self.requests_ignored += 1
            self.network.send(self.name, request.origin, TsAdvisory(
                self.fragments.timestamp(request.item)))
            return
        if not self.locks.try_acquire_all(owner, {request.item}):
            self.requests_ignored += 1
            return
        self._honor_locked(owner, request)

    def _honor_locked(self, owner: str, request: DataRequest) -> None:
        """Create and dispatch the response Vm while holding the lock.

        Transfer grants release the lock immediately. Read drains keep
        the fragment locked for the configured freeze window so the
        reading transaction observes a stable "all other fragments are
        null" state (see SiteConfig.read_freeze).
        """
        freeze = False
        try:
            item = request.item
            domain = self.fragments.domain(item)
            available = self.fragments.value(item)
            if request.mode == READ_MODE:
                # A site still owing value elsewhere cannot claim its
                # fragment is complete — refuse (Section 5's rule).
                if self.vm.has_outstanding(item):
                    self.requests_ignored += 1
                    return
                granted, remainder = available, domain.zero()
                kind = "read-drain"
                freeze = True
            else:
                granted = self.policy.grant(domain, available, request.need)
                if domain.is_zero(granted):
                    self.requests_ignored += 1
                    return
                remainder = domain.subtract(available, granted)
                kind = "transfer"
            stamp_ts = self.cc.stamp_for_rds(self, request.ts, item)
            entry = self.vm.allocate_entry(request.origin, item, granted,
                                           kind, request.txn_id)
            lsn = self.log_append(VmCreateRecord(
                txn_id=owner,
                actions=(SetFragment(item, remainder, ts=stamp_ts),),
                messages=(entry,)))
            self.apply_actions(
                (SetFragment(item, remainder, ts=stamp_ts),), lsn)
            self.fragments.stamp_if_newer(item, stamp_ts)
            self.vm.register_created([entry])
            self.requests_honored += 1
        finally:
            if freeze:
                window = (self.config.read_freeze
                          if self.config.read_freeze is not None
                          else self.config.txn_timeout)
                self.sim.after(window,
                               lambda: self._release_freeze(owner),
                               label=f"read-freeze:{owner}")
            else:
                self.locks.release_all(owner)
                self.after_lock_release()

    def _release_freeze(self, owner: str) -> None:
        if not self.alive:
            return
        self.locks.release_all(owner)
        self.after_lock_release()

    # -- Vm acceptance (Rds transactions) ------------------------------------

    def _accept_vm(self, entry, src: str) -> bool:
        """Complete a Vm's lifespan: log [database-actions], absorb.

        Returns False (leave pending) only when the fragment is locked
        by an owner that is not an active transaction of this site —
        i.e. a transient Rds lock; active transactions always absorb
        into their own locked fragments (Section 5's refinement).
        """
        item = entry.item
        if not self.fragments.knows(item):
            return False
        domain = self.fragments.domain(item)
        new_value = domain.combine(self.fragments.value(item), entry.amount)
        holder = self.locks.holder(item)
        if holder is None:
            ts = self.clock.next()
            lsn = self.log_append(VmAcceptRecord(
                src=src, channel_seq=entry.channel_seq,
                actions=(SetFragment(item, new_value, ts=ts),),
                txn_id=entry.txn_id))
            self.apply_actions((SetFragment(item, new_value, ts=ts),), lsn)
            return True
        txn = self.active.get(holder)
        if txn is None:
            return False
        lsn = self.log_append(VmAcceptRecord(
            src=src, channel_seq=entry.channel_seq,
            actions=(SetFragment(item, new_value, ts=txn.ts),),
            txn_id=entry.txn_id))
        self.apply_actions((SetFragment(item, new_value, ts=txn.ts),), lsn)
        txn.on_vm_absorbed(entry, src)
        return True

    # -- failure injection -----------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: all volatile state vanishes; stable storage stays.

        In-flight transactions silently disappear (their clients learn
        nothing — exactly the scenario remote requesters' timeouts are
        for). The stale pre-crash VmManager object is retained until
        recovery so the god's-eye auditor can still read channel state.
        """
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        if self._obs.enabled:
            self._obs.emit(SiteCrash(t=self.sim.now, site=self.name,
                                     txns_wiped=len(self.active)))
        self.txns_wiped += len(self.active)
        self.downtime.append([self.sim.now, None])
        self.vm.stop()
        for txn in list(self.active.values()):
            txn._timer.cancel()
        self.active.clear()
        self.locks.clear()
        self.fragments.reset_timestamps()
        self.clock.reset()
        self.demand.reset()
        if self.views is not None:
            # The cache is volatile: recover cold, warm from refreshes.
            self.views.clear()
        self.network.note_down(self.name)

    def recover(self) -> "RecoveryReport":
        """Independent recovery (Section 7): local log only."""
        from repro.core.recovery import recover_site
        report = recover_site(self)
        self.alive = True
        self.network.note_up(self.name)
        if self.downtime and self.downtime[-1][1] is None:
            self.downtime[-1][1] = self.sim.now
        self.recovery_reports.append(report)
        self.vm.start()
        return report

    def skew_fire_timers(self) -> None:
        """Model a clock-skew jump: every armed local timer fires NOW.

        The protocol's safety cannot depend on how long a timeout
        actually waits — timeouts are purely local decisions. Firing
        the Vm retransmission tick early just re-sends live Vm
        (receivers deduplicate); firing a transaction's timeout early
        is a legal pessimistic abort (or a legal early retry round).
        Chaos plans use this to explore skewed-clock schedules.
        """
        if not self.alive:
            return
        self.vm.tick_now()
        for txn in list(self.active.values()):
            txn.skew_timeout()
