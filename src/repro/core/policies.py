"""Redistribution policies.

The paper leaves open "the best ways to distribute the data ... and to
reduce the message traffic" (Section 9). A policy answers the two
questions the protocol needs answered:

* requester side — *whom* to ask and *how much* to ask each site for,
  given a deficit;
* responder side — *how much* of the local fragment to grant a request
  (grant everything? keep a reserve so local customers aren't starved?).

Experiment E8 ablates the implementations below.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.core.domain import Domain


class RedistributionPolicy(ABC):
    """Strategy consulted when value must move between sites."""

    name: str = "policy"

    @abstractmethod
    def targets(self, origin: str, peers: list[str], deficit: Any,
                domain: Domain, rng) -> list[tuple[str, Any]]:
        """Which peers to ask, and for how much each."""

    @abstractmethod
    def grant(self, domain: Domain, available: Any, requested: Any) -> Any:
        """How much of *available* to give a request for *requested*."""


class AskAllPolicy(RedistributionPolicy):
    """Broadcast the full deficit to every peer; grant all you have.

    Maximizes the chance of success and minimizes latency, at the cost
    of message traffic and over-transfer (several sites may each send
    the full deficit).
    """

    name = "ask-all"

    def targets(self, origin: str, peers: list[str], deficit: Any,
                domain: Domain, rng) -> list[tuple[str, Any]]:
        return [(peer, deficit) for peer in peers]

    def grant(self, domain: Domain, available: Any, requested: Any) -> Any:
        granted, _remainder = domain.split(available, requested)
        return granted


class AskFewPolicy(RedistributionPolicy):
    """Ask *fanout* randomly chosen peers for the full deficit each.

    The paper's example ("a request for at least three seats is sent by
    site X to one or more sites"): thrifty with messages, but a poor
    draw of peers aborts the transaction.
    """

    name = "ask-few"

    def __init__(self, fanout: int = 1) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout
        self.name = f"ask-few({fanout})"

    def targets(self, origin: str, peers: list[str], deficit: Any,
                domain: Domain, rng) -> list[tuple[str, Any]]:
        if not peers:
            return []
        chosen = rng.sample(peers, min(self.fanout, len(peers)))
        return [(peer, deficit) for peer in chosen]

    def grant(self, domain: Domain, available: Any, requested: Any) -> Any:
        granted, _remainder = domain.split(available, requested)
        return granted


class ReservingPolicy(RedistributionPolicy):
    """Ask everyone, but responders keep a reserve fraction at home.

    Granting everything leaves the responder unable to serve its own
    next customer; holding back ``reserve_fraction`` of the fragment
    trades some requester aborts for responder-side availability.
    Only meaningful for numeric (counter-like) domains.
    """

    name = "reserving"

    def __init__(self, reserve_fraction: float = 0.5) -> None:
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self.reserve_fraction = reserve_fraction
        self.name = f"reserving({reserve_fraction:g})"

    def targets(self, origin: str, peers: list[str], deficit: Any,
                domain: Domain, rng) -> list[tuple[str, Any]]:
        return [(peer, deficit) for peer in peers]

    def grant(self, domain: Domain, available: Any, requested: Any) -> Any:
        if not isinstance(available, int):
            granted, _remainder = domain.split(available, requested)
            return granted
        givable = available - int(available * self.reserve_fraction)
        granted, _remainder = domain.split(givable, requested)
        return granted


def make_policy(name: str, **kwargs) -> RedistributionPolicy:
    """Factory by short name: ask-all | ask-few | reserving."""
    if name == "ask-all":
        return AskAllPolicy()
    if name == "ask-few":
        return AskFewPolicy(**kwargs)
    if name == "reserving":
        return ReservingPolicy(**kwargs)
    raise ValueError(f"unknown policy {name!r}")
