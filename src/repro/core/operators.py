"""Partitionable operators (Section 4.1).

An operator ``f`` is *partitionable* for (Γ, Π) when an effective
application to one fragment of ``Π⁻¹(d)`` changes the logical value the
same way applying it to ``d`` directly would: ``f(Π(b)) = Π(b')``.
Applications can be *ineffective* — "for reasons particular to the
argument, the result is equivalent to a no-operation" — the canonical
example being *decrement by m if the result does not fall below 0*.

Operators report effectiveness explicitly so transaction code can
distinguish "applied" from "no-op" (an ineffective bounded decrement on
an insufficient fragment is what triggers redistribution requests).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from repro.core.domain import Domain

V = TypeVar("V")


@dataclass(frozen=True)
class Application(Generic[V]):
    """Result of applying an operator to one fragment."""

    value: V
    effective: bool


class PartitionableOperator(ABC, Generic[V]):
    """An operator applicable to any accessible fragment of an item."""

    @abstractmethod
    def apply(self, domain: Domain[V], value: V) -> Application[V]:
        """Apply to a fragment; ineffective applications return the
        fragment unchanged with ``effective=False``."""

    def delta(self, domain: Domain[V]) -> Any:
        """Signed change to the logical value when effective.

        Returns ``(sign, magnitude)`` where sign is +1/-1; used by the
        conservation auditor to track the expected total.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Increment(PartitionableOperator[V]):
    """'Increment the argument by m' — always effective."""

    amount: Any

    def apply(self, domain: Domain[V], value: V) -> Application[V]:
        domain.validate(self.amount)
        return Application(domain.combine(value, self.amount), True)

    def delta(self, domain: Domain[V]) -> Any:
        return (+1, self.amount)


@dataclass(frozen=True)
class BoundedDecrement(PartitionableOperator[V]):
    """'Decrement by m if the result does not fall below 0'.

    Effective only when the fragment covers the amount; otherwise a
    no-op (and the transaction machinery goes shopping for value).
    """

    amount: Any

    def apply(self, domain: Domain[V], value: V) -> Application[V]:
        domain.validate(self.amount)
        if not domain.covers(value, self.amount):
            return Application(value, False)
        taken, remainder = domain.split(value, self.amount)
        if taken != self.amount:
            return Application(value, False)
        return Application(remainder, True)

    def delta(self, domain: Domain[V]) -> Any:
        return (-1, self.amount)


@dataclass(frozen=True)
class SetToZero(PartitionableOperator[V]):
    """'Set to zero' — drains the fragment it is applied to.

    Note this is partitionable only fragment-wise (it zeroes the
    fragment, subtracting that fragment's value from the item); it is
    the building block of read-drains and always effective.
    """

    def apply(self, domain: Domain[V], value: V) -> Application[V]:
        return Application(domain.zero(), True)


def commute(domain: Domain[V], first: PartitionableOperator[V],
            second: PartitionableOperator[V], value: V) -> bool:
    """Check g(h(v)) == h(g(v)) counting effectiveness.

    Section 4.1 claims partitionable operators commute when applied to
    separate portions; on a single fragment bounded decrements may
    differ in *which* application is effective, so this helper is used
    by tests to map out exactly where commutation holds.
    """
    a = second.apply(domain, first.apply(domain, value).value).value
    b = first.apply(domain, second.apply(domain, value).value).value
    return a == b
