"""The Virtual Message protocol (Section 4.2).

A Vm *comes into existence* when the sender forces a log record
``[database-actions, message-sequence]`` and *ceases to exist* when the
receiver forces ``[database-actions]`` recording its acceptance. In
between, any number of real messages may carry it; the channel machinery
here (per-pair FIFO sequence numbers, cumulative acknowledgements —
piggybacked and explicit — periodic retransmission, duplicate discard,
in-order buffering) guarantees the value is never lost and never
absorbed twice, whatever the links do.

The manager is deliberately ignorant of transactions and locks: the
owning site supplies an ``accept`` callback that either absorbs a Vm
(forcing the accept record) or refuses it because the target fragment is
locked by an unrelated transaction — in which case the Vm simply stays
pending and is retried on the next poke or retransmission, exactly the
paper's "if it is locked, the message can be ignored; it will eventually
be sent again anyway".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core.messages import VmAck, VmTransfer
from repro.obs.events import (
    VmAccept,
    VmAckSent,
    VmCreate,
    VmDuplicateDiscard,
    VmRetransmit,
    VmTransmit,
)
from repro.sim.timers import PeriodicTimer
from repro.storage.records import VmEntry

#: Shared empty result for no-progress acks (avoids one allocation per
#: piggybacked ack repeat).
_NO_ENTRIES: tuple = ()


@dataclass
class OutgoingChannel:
    """Sender-side state of the FIFO channel to one destination."""

    dst: str
    next_seq: int = 1
    cumulative_acked: int = 0
    entries: dict[int, VmEntry] = field(default_factory=dict)
    retransmissions: int = 0
    highest_sent: int = 0

    def allocate(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def unacked(self) -> list[VmEntry]:
        return [entry for seq, entry in sorted(self.entries.items())
                if seq > self.cumulative_acked]

    def ack(self, cumulative: int) -> Sequence[VmEntry]:
        """Advance the cumulative ack; returns entries newly confirmed.

        Progress immediately prunes confirmed entries so channel memory
        (and every ``unacked()`` scan) stays proportional to the
        *in-flight* Vm count, not to everything ever sent. The pruned
        entries come back so the owning manager can keep its O(1)
        live-Vm counters exact without rescanning. No-progress acks
        (piggyback repeats) are the common case, hence the shared empty
        result.
        """
        if cumulative <= self.cumulative_acked:
            return _NO_ENTRIES
        self.cumulative_acked = cumulative
        return self.prune()

    def prune(self) -> list[VmEntry]:
        """Drop (and return) entries whose acceptance is confirmed."""
        pruned = [entry for seq, entry in self.entries.items()
                  if seq <= self.cumulative_acked]
        for entry in pruned:
            del self.entries[entry.channel_seq]
        return pruned


@dataclass
class IncomingChannel:
    """Receiver-side state of the FIFO channel from one source."""

    src: str
    cumulative_accepted: int = 0
    pending: dict[int, VmEntry] = field(default_factory=dict)
    duplicates_discarded: int = 0


class VmManager:
    """Per-site engine driving every virtual message's lifespan."""

    def __init__(self, site: str, sim, send: Callable[[str, object], None],
                 accept: Callable[[VmEntry, str], bool],
                 clock_ts: Callable[[], int],
                 retransmit_period: float = 5.0,
                 window: int | None = None,
                 on_created: Callable[[VmEntry], None] | None = None,
                 on_accepted: Callable[[str, VmEntry], None] | None = None,
                 coalesce_acks: bool = False) -> None:
        """*window* caps in-flight (sent-but-unacked) messages per
        channel — the classic sliding window of the "common schemes
        (e.g. 'window' protocols)" Section 4.2 leans on. None means
        unbounded. Entries beyond the window stay live Vm (logged,
        conserved) and transmit as acks open the window.

        *coalesce_acks* defers explicit acks to the end of the current
        kernel event and suppresses them entirely when a data message to
        the same peer already left this instant carrying the same (or a
        newer) cumulative value in its piggyback field — the paper's
        "piggybacked onto regular messages" discipline taken literally.
        Correctness is unaffected either way: acks are idempotent
        hints, and the retransmission timer covers any that are elided
        or lost."""
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None)")
        self.site = site
        self.sim = sim
        self.window = window
        self._send = send
        self._accept = accept
        self._clock_ts = clock_ts
        #: Lifecycle hooks for the incremental conservation accounting:
        #: fired exactly once per Vm — at the create-record instant and
        #: at the accept-record instant. Recovery rebuilds channel state
        #: directly (the Vm already existed), so it fires neither.
        self.on_created = on_created
        self.on_accepted = on_accepted
        self.outgoing: dict[str, OutgoingChannel] = {}
        self.incoming: dict[str, IncomingChannel] = {}
        # Observability (docs/OBSERVABILITY.md): typed trace events go
        # through the simulation's bus; counters live in its metrics
        # registry (acks_sent / accepts below are views over them).
        self._obs = sim.obs
        metrics = sim.metrics
        self._metrics = metrics
        self._c_created = metrics.counter("vm.created", site=site)
        self._c_accepted = metrics.counter("vm.accepted", site=site)
        self._c_acks = metrics.counter("vm.acks", site=site)
        self._c_suppressed = metrics.counter("vm.acks_suppressed",
                                             site=site)
        self._c_retx: dict[str, object] = {}
        self._c_dup: dict[str, object] = {}
        self._h_delivery: dict[str, object] = {}
        self._timer = PeriodicTimer(sim, retransmit_period,
                                    self._retransmit_tick,
                                    label=f"vm-retx:{site}")
        # Accepting a Vm can complete a transaction, whose lock release
        # pokes the channels again from inside the accept callback; the
        # work queue below makes drain re-entrancy safe (a nested call
        # only enqueues, the outer loop does the absorbing). A deque:
        # chaos runs push hundreds of channels through one drain, and a
        # list-head pop(0) is O(queue) each time.
        self._drain_queue: deque[str] = deque()
        self._draining = False
        # O(1) live-Vm accounting. Invariant: every OutgoingChannel's
        # ``entries`` dict holds exactly its live (unacked) entries —
        # ack() prunes confirmed ones on the spot, and recovery rebuilds
        # channels from cumulative_acked=0 — so these counters mirror
        # the old O(live Vm) unacked() scans exactly. check_accounting()
        # cross-checks the two under __debug__.
        self._live_total = 0
        self._live_by_item: dict[str, int] = {}
        # Ack coalescing state (see __init__ docstring): peers owed an
        # explicit ack this instant, and the (time, cumulative) of the
        # last piggyback that left toward each peer.
        self._coalesce = coalesce_acks
        self._ack_due: dict[str, None] = {}
        self._piggyback_sent: dict[str, tuple[float, int]] = {}
        # Instrumentation for the delivery-latency experiment (E3):
        # when each outgoing Vm was created / each incoming accepted.
        self.created_times: dict[tuple[str, int], float] = {}
        self.accept_times: dict[tuple[str, int], float] = {}

    # -- metrics views -------------------------------------------------------

    @property
    def acks_sent(self) -> int:
        """Explicit acks sent by this site (registry-backed, survives
        VmManager rebuilds across recovery)."""
        return self._c_acks.value

    @property
    def accepts(self) -> int:
        """Vm accept records forced at this site (registry-backed)."""
        return self._c_accepted.value

    # -- channel access -----------------------------------------------------

    def out_channel(self, dst: str) -> OutgoingChannel:
        if dst not in self.outgoing:
            self.outgoing[dst] = OutgoingChannel(dst)
            self._c_retx[dst] = self._metrics.counter(
                "vm.retransmissions", site=self.site, peer=dst)
        return self.outgoing[dst]

    def in_channel(self, src: str) -> IncomingChannel:
        if src not in self.incoming:
            self.incoming[src] = IncomingChannel(src)
            self._c_dup[src] = self._metrics.counter(
                "vm.duplicates", site=self.site, peer=src)
            self._h_delivery[src] = self._metrics.histogram(
                "vm.delivery", src=src, dst=self.site)
        return self.incoming[src]

    # -- sender side ----------------------------------------------------------

    def allocate_entry(self, dst: str, item: str, amount, kind: str,
                       txn_id: str) -> VmEntry:
        """Reserve the next channel sequence number for a new Vm.

        The entry is not live until the caller logs it (the Vm exists
        from the moment the create record hits stable storage) and then
        calls :meth:`register_created`.
        """
        channel = self.out_channel(dst)
        return VmEntry(dst=dst, item=item, amount=amount,
                       channel_seq=channel.allocate(), kind=kind,
                       txn_id=txn_id)

    def register_created(self, entries: Iterator[VmEntry] | list[VmEntry],
                         transmit: bool = True) -> None:
        """Track logged entries as live and (optionally) transmit them."""
        now = self.sim.now
        for entry in entries:
            channel = self.out_channel(entry.dst)
            channel.entries[entry.channel_seq] = entry
            self._note_live(entry)
            self.created_times.setdefault((entry.dst, entry.channel_seq),
                                          now)
            self._c_created.value += 1
            self._metrics.mark(("vm", self.site, entry.dst,
                                entry.channel_seq), now)
            if self._obs.enabled:
                self._obs.emit(VmCreate(
                    t=now, site=self.site, dst=entry.dst,
                    item=entry.item, seq=entry.channel_seq,
                    amount=entry.amount, vm_kind=entry.kind,
                    txn=entry.txn_id))
            if self.on_created is not None:
                self.on_created(entry)
            if transmit and self._in_window(channel, entry.channel_seq):
                self._transmit(entry)
                channel.highest_sent = max(channel.highest_sent,
                                           entry.channel_seq)
        self._ensure_timer()

    def _in_window(self, channel: OutgoingChannel, seq: int) -> bool:
        if self.window is None:
            return True
        return seq <= channel.cumulative_acked + self.window

    def has_outstanding(self, item: str) -> bool:
        """Any live (unaccepted) outgoing Vm for *item*? O(1).

        This is the guard on honoring read requests: a full read must
        observe every fragment, so a site that still owes value
        elsewhere cannot claim its fragment is the whole local story.
        """
        return self._live_by_item.get(item, 0) > 0

    def unacked_count(self) -> int:
        """Live (unacked) outgoing Vm across all channels. O(1)."""
        return self._live_total

    def _note_live(self, entry: VmEntry) -> None:
        self._live_total += 1
        self._live_by_item[entry.item] = \
            self._live_by_item.get(entry.item, 0) + 1

    def _note_dead(self, entry: VmEntry) -> None:
        self._live_total -= 1
        remaining = self._live_by_item[entry.item] - 1
        if remaining:
            self._live_by_item[entry.item] = remaining
        else:
            del self._live_by_item[entry.item]

    def restore_entry(self, entry: VmEntry) -> None:
        """Re-insert a live entry during recovery (no create record —
        the Vm already exists). Duplicate sequence numbers are ignored:
        a checkpointed entry and its create record describe the same
        Vm."""
        channel = self.out_channel(entry.dst)
        if entry.channel_seq in channel.entries:
            return
        channel.entries[entry.channel_seq] = entry
        self._note_live(entry)

    def check_accounting(self) -> bool:
        """Cross-check the O(1) counters against the full channel scan.

        Called from tests and (under ``__debug__``) at checkpoint time;
        raises AssertionError on any drift.
        """
        total = sum(len(channel.unacked())
                    for channel in self.outgoing.values())
        assert total == self._live_total, \
            f"live total drifted: scan={total} counter={self._live_total}"
        by_item: dict[str, int] = {}
        for channel in self.outgoing.values():
            for entry in channel.unacked():
                by_item[entry.item] = by_item.get(entry.item, 0) + 1
        assert by_item == self._live_by_item, \
            f"per-item drifted: scan={by_item} counter={self._live_by_item}"
        return True

    def _transmit(self, entry: VmEntry, retransmit: bool = False) -> None:
        if self._obs.enabled:
            event_type = VmRetransmit if retransmit else VmTransmit
            self._obs.emit(event_type(t=self.sim.now, site=self.site,
                                      dst=entry.dst,
                                      seq=entry.channel_seq))
        piggyback = self.in_channel(entry.dst).cumulative_accepted
        self._piggyback_sent[entry.dst] = (self.sim.now, piggyback)
        self._send(entry.dst, VmTransfer(src=self.site, entry=entry,
                                         piggyback_ack=piggyback,
                                         ts=self._clock_ts()))

    def _retransmit_tick(self) -> None:
        live = 0
        for channel in self.outgoing.values():
            for entry in channel.unacked():
                if not self._in_window(channel, entry.channel_seq):
                    live += 1  # still live, just outside the window
                    continue
                retransmit = entry.channel_seq <= channel.highest_sent
                if retransmit:
                    channel.retransmissions += 1
                    self._c_retx[channel.dst].inc()
                channel.highest_sent = max(channel.highest_sent,
                                           entry.channel_seq)
                live += 1
                self._transmit(entry, retransmit=retransmit)
        if live == 0:
            self._timer.stop()

    def _ensure_timer(self) -> None:
        if self._live_total > 0:
            self._timer.start()

    def tick_now(self) -> None:
        """Fire the retransmission tick immediately (clock-skew hook).

        Equivalent to the periodic timer having fired early: every
        in-window live Vm is re-sent right now. The periodic schedule
        itself is untouched.
        """
        self._retransmit_tick()
        self._ensure_timer()

    def start(self) -> None:
        """(Re)arm retransmission after construction or recovery."""
        self._ensure_timer()

    def stop(self) -> None:
        self._timer.stop()

    # -- receiver side --------------------------------------------------------

    def on_transfer(self, transfer: VmTransfer) -> None:
        """Handle a real message: ack bookkeeping, dedup, in-order accept."""
        self.on_ack(VmAck(src=transfer.src,
                          cumulative=transfer.piggyback_ack,
                          ts=transfer.ts))
        channel = self.in_channel(transfer.src)
        seq = transfer.entry.channel_seq
        if seq <= channel.cumulative_accepted:
            # Duplicate (retransmission of something already absorbed):
            # discard, but re-ack so the sender can stop retransmitting.
            channel.duplicates_discarded += 1
            self._c_dup[transfer.src].inc()
            if self._obs.enabled:
                self._obs.emit(VmDuplicateDiscard(
                    t=self.sim.now, site=self.site, src=transfer.src,
                    seq=seq))
            self._send_ack(transfer.src)
            return
        channel.pending[seq] = transfer.entry
        self.drain(transfer.src)

    def drain(self, src: str) -> None:
        """Absorb buffered messages strictly in sequence order."""
        self._drain_queue.append(src)
        if self._draining:
            return
        self._draining = True
        try:
            while self._drain_queue:
                self._drain_one(self._drain_queue.popleft())
        finally:
            self._draining = False

    def _drain_one(self, src: str) -> None:
        channel = self.in_channel(src)
        progressed = False
        while True:
            next_seq = channel.cumulative_accepted + 1
            entry = channel.pending.get(next_seq)
            if entry is None:
                break
            # Claim the sequence number BEFORE the accept callback runs:
            # acceptance may re-enter drain (commit -> release -> poke)
            # and must never see this entry as pending again.
            del channel.pending[next_seq]
            channel.cumulative_accepted = next_seq
            if not self._accept(entry, src):
                # Target fragment locked by an unrelated transaction;
                # put the message back (head-of-line wait).
                channel.pending[next_seq] = entry
                channel.cumulative_accepted = next_seq - 1
                break
            now = self.sim.now
            self._c_accepted.value += 1
            self.accept_times[(src, next_seq)] = now
            elapsed = self._metrics.elapsed_since_mark(
                ("vm", src, self.site, next_seq), now)
            if elapsed is not None:
                self._h_delivery[src].observe(elapsed)
            if self._obs.enabled:
                self._obs.emit(VmAccept(t=now, site=self.site,
                                        src=src, item=entry.item,
                                        seq=next_seq))
            if self.on_accepted is not None:
                self.on_accepted(src, entry)
            progressed = True
        if progressed:
            self._send_ack(src)

    def poke(self) -> None:
        """Retry pending heads on every channel (called on lock release).

        Channels with nothing buffered are skipped: draining them is a
        no-op (no accept, no ack), and lock releases are frequent
        enough that the empty drains dominated the poke cost.
        """
        for src in list(self.incoming):
            if self.incoming[src].pending:
                self.drain(src)

    def on_ack(self, ack: VmAck) -> None:
        channel = self.outgoing.get(ack.src)
        if channel is None:
            # An ack for a channel this site (per its stable state)
            # never sent on — e.g. a stale duplicate from before a peer
            # was rebuilt. Fabricating the channel here would leave
            # cumulative_acked ahead of next_seq, so the first real
            # sends would look already-acked and silently fall out of
            # retransmission. Ignore it; acks carry no value.
            return
        for entry in channel.ack(ack.cumulative):
            self._note_dead(entry)
        # The window may have slid open: transmit newly admitted
        # entries right away instead of waiting for the next tick.
        if self.window is not None:
            for seq in sorted(channel.entries):
                if seq > channel.highest_sent and \
                        self._in_window(channel, seq):
                    self._transmit(channel.entries[seq])
                    channel.highest_sent = seq

    def _send_ack(self, dst: str) -> None:
        """Send — or, with coalescing on, schedule — an explicit ack.

        Coalescing defers the send to the end of the current kernel
        event so it can see every message the event produced: if a data
        message to *dst* already left this instant with an up-to-date
        piggyback, the explicit ack is redundant and suppressed.
        Outside event execution (defer unavailable) the ack goes out
        immediately, exactly as without coalescing.
        """
        if self._coalesce:
            if self._ack_due:
                # A flush for this instant is already queued.
                self._ack_due[dst] = None
                return
            if self.sim.defer_to_event_end(self._flush_acks):
                self._ack_due[dst] = None
                return
        self._send_ack_now(dst)

    def _flush_acks(self) -> None:
        due = list(self._ack_due)
        self._ack_due.clear()
        now = self.sim.now
        for dst in due:
            record = self._piggyback_sent.get(dst)
            if record is not None and record[0] == now and \
                    record[1] >= self.in_channel(dst).cumulative_accepted:
                self._c_suppressed.inc()
                continue
            self._send_ack_now(dst)

    def _send_ack_now(self, dst: str) -> None:
        self._c_acks.inc()
        cumulative = self.in_channel(dst).cumulative_accepted
        if self._obs.enabled:
            self._obs.emit(VmAckSent(t=self.sim.now, site=self.site,
                                     dst=dst, cumulative=cumulative))
        self._send(dst, VmAck(src=self.site, cumulative=cumulative,
                              ts=self._clock_ts()))
