"""Partitionable value domains — the formal objects of Section 4.1.

A data item ``d`` is drawn from a domain Γ. It is stored as a multiset
``b ∈ Γ⁺`` of *fragments* with a surjective map ``Π : Γ⁺ → Γ``
recovering the logical value, and Π must be *partitionable*: applying Π
to any partition of ``b`` and then to the results gives the same value
(associativity/commutativity of the combine step).

A :class:`Domain` packages Γ's representation with:

* ``zero()``        — Π of the empty multiset (the identity);
* ``combine(a, b)`` — the binary step of Π;
* ``split(v, want)``— carve a piece out of a fragment (the primitive
  behind every redistribution operator): returns ``(granted,
  remainder)`` with ``combine(granted, remainder) == v``;
* ``covers(v, need)`` — can a transaction needing *need* execute on a
  fragment holding *v*?

The three concrete domains are the paper's motivating applications:
counters (airline seats, inventory units), money, and a token multiset
domain demonstrating that Γ need not be numeric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Any, Generic, Iterable, TypeVar

V = TypeVar("V")


class DomainError(ValueError):
    """A value outside Γ, or an ill-formed split."""


class Domain(ABC, Generic[V]):
    """Abstract partitionable domain (Γ, Π)."""

    name: str = "domain"

    @abstractmethod
    def zero(self) -> V:
        """Identity of Π: the value of an empty fragment."""

    @abstractmethod
    def combine(self, a: V, b: V) -> V:
        """Binary step of Π; must be associative and commutative."""

    @abstractmethod
    def validate(self, value: V) -> V:
        """Return *value* if it lies in Γ, else raise DomainError."""

    @abstractmethod
    def split(self, value: V, want: V) -> tuple[V, V]:
        """Carve up to *want* out of *value* → (granted, remainder).

        ``combine(granted, remainder) == value`` always holds; granted
        is maximal but never exceeds *want* (the "effective" clause of
        partitionable operators: a fragment can only give what it has).
        """

    @abstractmethod
    def covers(self, value: V, need: V) -> bool:
        """True if a fragment holding *value* satisfies *need*."""

    @abstractmethod
    def subtract(self, a: V, b: V) -> V:
        """Inverse of combine where defined: a - b (b must fit in a).

        Used by the conservation auditor to maintain expected totals;
        raises DomainError when b does not fit.
        """

    @abstractmethod
    def deficit(self, value: V, need: V) -> V:
        """What is still missing from *value* to cover *need*."""

    def is_zero(self, value: V) -> bool:
        return value == self.zero()

    def pi(self, fragments: Iterable[V]) -> V:
        """Π itself: fold combine over a multiset of fragments."""
        total = self.zero()
        for fragment in fragments:
            total = self.combine(total, fragment)
        return total

    def describe(self, value: V) -> str:
        """Human-readable rendering used by examples and tables."""
        return str(value)


class CounterDomain(Domain[int]):
    """Non-negative integers under addition.

    The paper's running example: seats on a flight, units in stock.
    """

    name = "counter"

    def zero(self) -> int:
        return 0

    def combine(self, a: int, b: int) -> int:
        return a + b

    def validate(self, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise DomainError(f"counter values must be int, got {value!r}")
        if value < 0:
            raise DomainError(f"counter values must be >= 0, got {value}")
        return value

    def split(self, value: int, want: int) -> tuple[int, int]:
        self.validate(value)
        self.validate(want)
        granted = min(value, want)
        return granted, value - granted

    def covers(self, value: int, need: int) -> bool:
        return value >= need

    def subtract(self, a: int, b: int) -> int:
        if b > a:
            raise DomainError(f"cannot subtract {b} from {a}")
        return a - b

    def deficit(self, value: int, need: int) -> int:
        return max(0, need - value)


class MoneyDomain(CounterDomain):
    """Non-negative amounts of money in integral cents.

    Identical algebra to the counter; the subclass exists so bank
    balances render as currency and so applications can't accidentally
    mix seats with dollars when items carry their domain.
    """

    name = "money"

    def describe(self, value: int) -> str:
        return f"${value / 100:,.2f}"


class TokenSetDomain(Domain[Counter]):
    """Multisets of hashable tokens under multiset union.

    Demonstrates the paper's generality claim ("extend the methods to
    handle more data types"): Γ here is itself a multiset domain — think
    distinguishable coupons or serialized gift cards pooled across
    branches. Splitting grants whichever requested tokens are present.
    """

    name = "tokens"

    def zero(self) -> Counter:
        return Counter()

    def combine(self, a: Counter, b: Counter) -> Counter:
        result = Counter(a)
        result.update(b)
        return result

    def validate(self, value: Counter) -> Counter:
        if not isinstance(value, Counter):
            raise DomainError(f"token values must be Counter, got {value!r}")
        for token, count in value.items():
            if count < 0:
                raise DomainError(
                    f"negative multiplicity {count} for token {token!r}")
        return value

    def split(self, value: Counter, want: Counter) -> tuple[Counter, Counter]:
        self.validate(value)
        self.validate(want)
        granted: Counter = Counter()
        for token, count in want.items():
            available = value.get(token, 0)
            if available:
                granted[token] = min(count, available)
        remainder = Counter(value)
        remainder.subtract(granted)
        remainder = +remainder  # drop zero entries
        return granted, remainder

    def covers(self, value: Counter, need: Counter) -> bool:
        return all(value.get(token, 0) >= count
                   for token, count in need.items())

    def subtract(self, a: Counter, b: Counter) -> Counter:
        if not self.covers(a, b):
            raise DomainError(f"cannot subtract {b!r} from {a!r}")
        result = Counter(a)
        result.subtract(b)
        return +result

    def deficit(self, value: Counter, need: Counter) -> Counter:
        missing: Counter = Counter()
        for token, count in need.items():
            short = count - value.get(token, 0)
            if short > 0:
                missing[token] = short
        return missing

    def is_zero(self, value: Counter) -> bool:
        return not +Counter(value)

    def describe(self, value: Counter) -> str:
        if not value:
            return "{}"
        inner = ", ".join(f"{token}×{count}"
                          for token, count in sorted(value.items()))
        return "{" + inner + "}"


def check_partitionable(domain: Domain, fragments: list[Any],
                        groupings: list[list[list[Any]]]) -> bool:
    """Verify the partitionable property of Π on concrete data.

    For each grouping of *fragments* into sub-multisets b_1..b_m, check
    Π({Π(b_1)..Π(b_m)}) == Π(b). Used by the property-based tests.
    """
    expected = domain.pi(fragments)
    for grouping in groupings:
        collapsed = [domain.pi(group) for group in grouping]
        if domain.pi(collapsed) != expected:
            return False
    return True
