"""Data-value partition directory: pluggable placement + epochs.

The seed system placed every item at every site ("all sites hold
fragments of all items" — the paper's simplest reading of Π). This
module makes placement a first-class, *dynamic* mapping:

* a :class:`Partitioner` decides which sites own fragments of an item
  given the current site list (hash, range, consistent-hash, or the
  seed-compatible "all" placement);
* a :class:`Directory` wraps a partitioner with a *versioned epoch*
  that bumps on every topology change (site join/leave, replica-count
  reshard), so routers can detect staleness;
* a :class:`Router` resolves item → owner sites and flags requests
  made against an old epoch (:class:`StaleEpoch`), forcing the caller
  to re-resolve against the new directory version.

Placement is a *planning* overlay: the conservation invariant
N = Σ fragments + Σ live Vm never depends on it. A site outside an
item's owner set simply holds the zero fragment (a combine identity),
so directory changes are conservation-neutral by construction — which
is exactly what lets the migration controller move value with ordinary
transfer-mode Vm and get auditing for free (docs/PARTITIONING.md).

All hashing goes through :func:`stable_hash` (BLAKE2b over the key
bytes), never Python's ``hash``: placement must be identical across
``PYTHONHASHSEED`` values and process boundaries (the sharded kernel's
forked workers re-derive it independently).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, ClassVar


def stable_hash(key: str, salt: str = "") -> int:
    """Deterministic 64-bit hash, independent of PYTHONHASHSEED."""
    digest = hashlib.blake2b(f"{salt}\x1f{key}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Partitioner:
    """Maps an item onto an ordered tuple of owner sites."""

    name: ClassVar[str] = ""

    def owners(self, item: str, sites: tuple[str, ...],
               replicas: int) -> tuple[str, ...]:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name}


class AllPartitioner(Partitioner):
    """Every site owns every item — the seed behaviour, byte-for-byte.

    ``replicas`` is ignored: the owner set is always the full site
    list, in directory order, so routing through this partitioner is
    indistinguishable from the static ``site.peers()`` topology.
    """

    name = "all"

    def owners(self, item: str, sites: tuple[str, ...],
               replicas: int) -> tuple[str, ...]:
        return sites


class HashPartitioner(Partitioner):
    """k consecutive sites starting at ``stable_hash(item) mod N``."""

    name = "hash"

    def owners(self, item: str, sites: tuple[str, ...],
               replicas: int) -> tuple[str, ...]:
        n = len(sites)
        start = stable_hash(item) % n
        return tuple(sites[(start + offset) % n]
                     for offset in range(min(replicas, n)))


class RangePartitioner(Partitioner):
    """Order-preserving byte-fraction ranges over the site list.

    The item name's leading bytes are read as a fraction in [0, 1)
    (``Σ b[i] / 256^(i+1)``) and mapped onto N equal ranges, so
    lexicographically adjacent items land on adjacent sites — the
    classic range-partition locality property. No hashing at all, so
    seed-independence is trivial.
    """

    name = "range"

    @staticmethod
    def _fraction(item: str) -> float:
        x = 0.0
        for index, byte in enumerate(item.encode()[:6]):
            x += byte / (256 ** (index + 1))
        return x

    def owners(self, item: str, sites: tuple[str, ...],
               replicas: int) -> tuple[str, ...]:
        n = len(sites)
        start = min(int(self._fraction(item) * n), n - 1)
        return tuple(sites[(start + offset) % n]
                     for offset in range(min(replicas, n)))


class ConsistentHashPartitioner(Partitioner):
    """Virtual-node hash ring with the minimal-movement property.

    Each site contributes ``vnodes`` points at
    ``stable_hash(f"{site}#{v}")``; an item's owners are the next k
    *distinct* sites clockwise from ``stable_hash(item)``. A joining
    site only claims the ring arcs its own vnodes cut, so an N→N+1
    join moves ~1/(N+1) of the items and a leave moves only the
    leaver's items — property-tested in
    ``tests/test_partition_properties.py``.
    """

    name = "consistent"

    def __init__(self, vnodes: int = 64) -> None:
        self.vnodes = vnodes
        self._ring_for: tuple[str, ...] | None = None
        self._points: list[int] = []
        self._point_site: list[str] = []

    def _ring(self, sites: tuple[str, ...]
              ) -> tuple[list[int], list[str]]:
        if sites != self._ring_for:
            pairs = sorted(
                (stable_hash(f"{site}#{vnode}"), site)
                for site in sites for vnode in range(self.vnodes))
            self._ring_for = sites
            self._points = [point for point, _site in pairs]
            self._point_site = [site for _point, site in pairs]
        return self._points, self._point_site

    def owners(self, item: str, sites: tuple[str, ...],
               replicas: int) -> tuple[str, ...]:
        points, point_site = self._ring(sites)
        want = min(replicas, len(sites))
        index = bisect.bisect_right(points, stable_hash(item))
        picked: list[str] = []
        for offset in range(len(points)):
            site = point_site[(index + offset) % len(points)]
            if site not in picked:
                picked.append(site)
                if len(picked) == want:
                    break
        return tuple(picked)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "vnodes": self.vnodes}


PARTITIONERS: dict[str, type[Partitioner]] = {
    cls.name: cls for cls in (AllPartitioner, HashPartitioner,
                              RangePartitioner,
                              ConsistentHashPartitioner)
}


def make_partitioner(name: str, **kwargs: Any) -> Partitioner:
    try:
        cls = PARTITIONERS[name]
    except KeyError:
        raise ValueError(f"unknown partitioner {name!r}; "
                         f"choose from {sorted(PARTITIONERS)}") from None
    return cls(**kwargs)


class Directory:
    """Versioned item → owner-sites mapping.

    Every topology change (:meth:`add_site`, :meth:`remove_site`,
    :meth:`set_replicas`) bumps :attr:`epoch`. Routers carry the epoch
    they resolved against; a mismatch means their placement may be
    stale and must be re-resolved (see :class:`Router`).
    """

    FORMAT = "dvp-directory/1"

    def __init__(self, partitioner: Partitioner,
                 sites: list[str] | tuple[str, ...],
                 replicas: int | None = None, epoch: int = 0) -> None:
        if len(set(sites)) != len(sites):
            raise ValueError("directory site names must be unique")
        if not sites:
            raise ValueError("directory needs at least one site")
        self.partitioner = partitioner
        self.sites: tuple[str, ...] = tuple(sites)
        self.replicas = replicas
        self.epoch = epoch

    def _k(self) -> int:
        if self.replicas is None:
            return len(self.sites)
        return max(1, min(self.replicas, len(self.sites)))

    def owners(self, item: str) -> tuple[str, ...]:
        return self.partitioner.owners(item, self.sites, self._k())

    # -- topology changes (each bumps the epoch) --------------------------

    def add_site(self, name: str) -> int:
        if name in self.sites:
            raise ValueError(f"site {name!r} already in directory")
        self.sites = self.sites + (name,)
        self.epoch += 1
        return self.epoch

    def remove_site(self, name: str) -> int:
        if name not in self.sites:
            raise KeyError(f"site {name!r} not in directory")
        if len(self.sites) == 1:
            raise ValueError("cannot remove the last directory site")
        self.sites = tuple(site for site in self.sites if site != name)
        self.epoch += 1
        return self.epoch

    def set_replicas(self, replicas: int | None) -> int:
        if replicas is not None and replicas < 1:
            raise ValueError("replicas must be >= 1 (or None for all)")
        self.replicas = replicas
        self.epoch += 1
        return self.epoch

    # -- wire form --------------------------------------------------------

    def encode(self) -> dict[str, Any]:
        return {"format": self.FORMAT,
                "partitioner": self.partitioner.to_dict(),
                "sites": list(self.sites),
                "replicas": self.replicas,
                "epoch": self.epoch}

    @classmethod
    def decode(cls, data: dict[str, Any]) -> "Directory":
        if data.get("format") != cls.FORMAT:
            raise ValueError(f"not a {cls.FORMAT} payload: "
                             f"{data.get('format')!r}")
        spec = dict(data["partitioner"])
        partitioner = make_partitioner(spec.pop("name"), **spec)
        return cls(partitioner, data["sites"],
                   replicas=data["replicas"], epoch=data["epoch"])


class StaleEpoch(RuntimeError):
    """A placement resolved against a superseded directory epoch."""


class Router:
    """Resolves placement through the directory, detecting staleness."""

    def __init__(self, directory: Directory) -> None:
        self.directory = directory
        #: How many times a stale epoch hint forced a re-resolve.
        self.stale_retries = 0

    def resolve(self, item: str, epoch: int) -> tuple[str, ...]:
        """Owners of *item* — but only if *epoch* is still current."""
        if epoch != self.directory.epoch:
            raise StaleEpoch(
                f"epoch {epoch} is stale (directory is at "
                f"{self.directory.epoch})")
        return self.directory.owners(item)

    def route(self, item: str, epoch_hint: int | None = None
              ) -> tuple[tuple[str, ...], int]:
        """Owners + current epoch; a stale hint retries transparently."""
        if epoch_hint is not None and epoch_hint != self.directory.epoch:
            self.stale_retries += 1
        return self.directory.owners(item), self.directory.epoch


__all__ = [
    "stable_hash", "Partitioner", "AllPartitioner", "HashPartitioner",
    "RangePartitioner", "ConsistentHashPartitioner", "PARTITIONERS",
    "make_partitioner", "Directory", "Router", "StaleEpoch",
]
