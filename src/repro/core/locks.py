"""Exclusive lock table with atomic multi-item acquisition.

Section 5 step 1: a transaction's local locks "are obtained
atomically". Conc1 never waits (a lock that cannot be granted
immediately fails the request); Conc2 uses strict two-phase locking, so
the table also supports FIFO waiting on the whole lock *set* — a waiter
is granted only when every item it wants is free, in arrival order,
which cannot deadlock locally because no waiter ever holds a partial
set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class _Waiter:
    owner: str
    items: frozenset[str]
    on_granted: Callable[[], None]
    cancelled: bool = False


@dataclass
class LockTable:
    """Per-site exclusive locks keyed by item name."""

    holders: dict[str, str] = field(default_factory=dict)
    _waiters: list[_Waiter] = field(default_factory=list)

    def holder(self, item: str) -> str | None:
        return self.holders.get(item)

    def held_by(self, owner: str) -> set[str]:
        return {item for item, holder in self.holders.items()
                if holder == owner}

    def is_free(self, item: str) -> bool:
        return item not in self.holders

    def try_acquire_all(self, owner: str, items: set[str]) -> bool:
        """Atomically lock *items* for *owner*; all-or-nothing, no wait."""
        if any(item in self.holders for item in items):
            return False
        for item in items:
            self.holders[item] = owner
        return True

    def acquire_all_or_wait(self, owner: str, items: set[str],
                            on_granted: Callable[[], None]) -> bool:
        """Lock *items* now if possible, else join the FIFO wait queue.

        Returns True if granted immediately. ``on_granted`` is invoked
        (synchronously, from a later release) when a queued request is
        eventually granted. FIFO fairness: a request never overtakes an
        earlier-queued request that it conflicts with.
        """
        wanted = frozenset(items)
        if self._conflicts_with_queue(wanted) is False and \
                self.try_acquire_all(owner, items):
            return True
        self._waiters.append(_Waiter(owner, wanted, on_granted))
        return False

    def cancel_waiter(self, owner: str) -> None:
        """Withdraw all queued requests by *owner* (e.g. txn timed out)."""
        for waiter in self._waiters:
            if waiter.owner == owner:
                waiter.cancelled = True

    def release_all(self, owner: str) -> list[str]:
        """Release every lock held by *owner*, then promote waiters."""
        released = [item for item, holder in self.holders.items()
                    if holder == owner]
        for item in released:
            del self.holders[item]
        self._promote()
        return released

    def clear(self) -> None:
        """Drop all locks and waiters (crash: lock state is volatile)."""
        self.holders.clear()
        self._waiters.clear()

    def _conflicts_with_queue(self, items: frozenset[str]) -> bool:
        """Would granting *items* now overtake a queued conflicting waiter?"""
        for waiter in self._waiters:
            if not waiter.cancelled and waiter.items & items:
                return True
        return False

    def _promote(self) -> None:
        """Grant queued requests whose full set is now free, in order."""
        granted: list[_Waiter] = []
        still_blocked_items: set[str] = set()
        remaining: list[_Waiter] = []
        for waiter in self._waiters:
            if waiter.cancelled:
                continue
            can_grant = (
                not (waiter.items & still_blocked_items)
                and all(item not in self.holders for item in waiter.items))
            if can_grant:
                for item in waiter.items:
                    self.holders[item] = waiter.owner
                granted.append(waiter)
            else:
                remaining.append(waiter)
                still_blocked_items |= waiter.items
        self._waiters = remaining
        for waiter in granted:
            waiter.on_granted()
