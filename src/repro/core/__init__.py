"""The paper's primary contribution: DvP data model, Vm protocol,
single-site transaction processing, Conc1/Conc2 concurrency control and
independent recovery.

Public entry points:

* :class:`~repro.core.system.DvPSystem` — build a multi-site system.
* :mod:`~repro.core.domain` — partitionable value domains (Γ, Π).
* :mod:`~repro.core.transactions` — transaction specs (reserve,
  cancel, transfer, read-full, write-only, redistribution).
"""

from repro.core.domain import (
    CounterDomain,
    Domain,
    MoneyDomain,
    TokenSetDomain,
)
from repro.core.migration import MigrationController, ReshardInProgress
from repro.core.operators import (
    BoundedDecrement,
    Increment,
    PartitionableOperator,
    SetToZero,
)
from repro.core.partition import (
    PARTITIONERS,
    Directory,
    Router,
    StaleEpoch,
    make_partitioner,
)
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    ApplyOp,
    DecrementOp,
    IncrementOp,
    Outcome,
    ReadFullOp,
    ReadLocalOp,
    ReadViewOp,
    TransactionSpec,
    TransferOp,
)

__all__ = [
    "ApplyOp",
    "BoundedDecrement",
    "CounterDomain",
    "DecrementOp",
    "Directory",
    "Domain",
    "DvPSystem",
    "MigrationController",
    "PARTITIONERS",
    "ReshardInProgress",
    "Router",
    "StaleEpoch",
    "make_partitioner",
    "Increment",
    "IncrementOp",
    "MoneyDomain",
    "Outcome",
    "PartitionableOperator",
    "ReadFullOp",
    "ReadLocalOp",
    "ReadViewOp",
    "SetToZero",
    "SystemConfig",
    "TokenSetDomain",
    "TransactionSpec",
    "TransferOp",
]
