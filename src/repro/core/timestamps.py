"""Unique timestamps: Lamport counter with the site id in the low bits.

Section 7: "all local timestamps would be unique (by attaching the site
identifier in the low order bits of a timestamp — a common scheme)" and
"the reception of any messages... would 'bump-up' the counter".

Timestamps are plain ints so comparisons are total and cheap; encode /
decode helpers expose the (counter, site_rank) structure.
"""

from __future__ import annotations

MAX_SITES = 1 << 16


def encode(counter: int, site_rank: int) -> int:
    if not 0 <= site_rank < MAX_SITES:
        raise ValueError(f"site_rank {site_rank} out of range")
    return counter * MAX_SITES + site_rank


def decode(timestamp: int) -> tuple[int, int]:
    return divmod(timestamp, MAX_SITES)


class LamportClock:
    """Per-site logical clock issuing unique, totally ordered stamps."""

    def __init__(self, site_rank: int) -> None:
        if not 0 <= site_rank < MAX_SITES:
            raise ValueError(f"site_rank {site_rank} out of range")
        self.site_rank = site_rank
        self._counter = 0

    @property
    def counter(self) -> int:
        return self._counter

    def next(self) -> int:
        """Issue a fresh timestamp, greater than any issued or observed."""
        self._counter += 1
        return encode(self._counter, self.site_rank)

    def observe(self, timestamp: int) -> None:
        """Bump the counter past a timestamp seen on an incoming message."""
        counter, _rank = decode(timestamp)
        if counter > self._counter:
            self._counter = counter

    def reset(self) -> None:
        """Crash: the volatile counter is lost (Section 7's stale-clock
        scenario — deliberately reproducible)."""
        self._counter = 0
