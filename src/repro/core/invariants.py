"""Global conservation auditing.

The scheme's central safety property (Section 3):

    N >= N_W + N_X + N_Y + N_Z   at all times, and
    N  = Σ fragments + Σ value carried by live Vm.

The auditor is a god's-eye observer: it maintains the *expected*
logical value of every item from committed semantic deltas and checks
the conservation equation. It never influences execution — it exists so
tests and experiments can assert that no failure scenario ever created
or destroyed value.

Accounting is *incremental*: sites notify the auditor on every fragment
mutation (:class:`~repro.core.fragments.FragmentStore` observer), Vm
creation, and Vm acceptance (:class:`~repro.core.vm.VmManager` hooks),
so :meth:`fragments_total`, :meth:`live_vm_total`, and :meth:`check`
are dictionary lookups — O(1) in the number of sites, channels, and
retained entries. A Vm is live from the instant its create record is
forced until the instant its accept record is forced; crashes and
recoveries rebuild channel *representations* but never create or
destroy Vm, so the hook stream is exactly the logical lifespan.

The original brute-force channel walk survives as
:meth:`fragments_total_scan` / :meth:`live_vm_total_scan`, and
:meth:`verify_full` cross-checks the incremental books against a fresh
scan — tests run it after every failure scenario; a mismatch raises
:class:`IncrementalDivergence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.domain import Domain
from repro.core.transactions import TxnResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import DvPSystem


@dataclass
class AuditReport:
    """Conservation check result for one item."""

    item: str
    expected: Any
    fragments_total: Any
    live_vm_total: Any
    observed: Any
    ok: bool
    per_site: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "OK" if self.ok else "VIOLATION"
        return (f"[{status}] {self.item}: expected={self.expected} "
                f"fragments={self.fragments_total} in-flight="
                f"{self.live_vm_total}")


class IncrementalDivergence(AssertionError):
    """The incremental books disagree with a full channel/page scan."""


class ConservationAuditor:
    """Tracks expected totals and verifies Σ fragments + Σ Vm = d."""

    def __init__(self, system: "DvPSystem") -> None:
        self.system = system
        self._expected: dict[str, Any] = {}
        self._domains: dict[str, Domain] = {}
        self.commits_seen = 0
        # Incremental books: Σ fragment values and Σ live-Vm value per
        # item, plus the live-entry index keyed by (sender, receiver,
        # channel seq) so each acceptance retires exactly one creation.
        self._frag_total: dict[str, Any] = {}
        self._live_total: dict[str, Any] = {}
        self._live_entries: dict[tuple[str, str, int], tuple[str, Any]] = {}
        self.attach()

    def attach(self) -> None:
        """Hook into every site's fragment store and Vm lifecycle."""
        for site in self.system.sites.values():
            site.observer = self
            site.fragments.observer = self

    def register_item(self, item: str, domain: Domain, total: Any) -> None:
        self._domains[item] = domain
        self._expected[item] = total

    def expected(self, item: str) -> Any:
        return self._expected[item]

    def on_result(self, result: TxnResult) -> None:
        """Fold a committed transaction's semantic deltas into totals."""
        if not result.committed:
            return
        self.commits_seen += 1
        for item, sign, amount in result.semantic_deltas:
            domain = self._domains[item]
            if sign > 0:
                self._expected[item] = domain.combine(self._expected[item],
                                                      amount)
            else:
                self._expected[item] = domain.subtract(self._expected[item],
                                                       amount)

    # -- incremental bookkeeping (site-driven notifications) ----------------

    def on_fragment_register(self, site: str, item: str, domain: Domain,
                             value: Any) -> None:
        self._domains.setdefault(item, domain)
        self._frag_total[item] = domain.combine(
            self._frag_total.get(item, domain.zero()), value)

    def on_fragment_write(self, site: str, item: str, old: Any,
                          new: Any) -> None:
        domain = self._domains.get(item)
        if domain is None:  # pragma: no cover - item never registered
            return
        # The running total always contains *old* as a summand, so the
        # combine-then-subtract order keeps intermediate values in Γ.
        self._frag_total[item] = domain.subtract(
            domain.combine(self._frag_total[item], new), old)

    def on_vm_created(self, sender: str, entry) -> None:
        domain = self._domains.get(entry.item)
        if domain is None:  # pragma: no cover - item never registered
            return
        key = (sender, entry.dst, entry.channel_seq)
        if key in self._live_entries:  # pragma: no cover - defensive
            return
        self._live_entries[key] = (entry.item, entry.amount)
        self._live_total[entry.item] = domain.combine(
            self._live_total.get(entry.item, domain.zero()), entry.amount)

    def on_vm_accepted(self, receiver: str, src: str, entry) -> None:
        info = self._live_entries.pop((src, receiver, entry.channel_seq),
                                      None)
        if info is None:  # pragma: no cover - unobserved creation
            return
        item, amount = info
        self._live_total[item] = self._domains[item].subtract(
            self._live_total[item], amount)

    # -- measurement (O(1) incremental reads) -------------------------------

    def fragments_total(self, item: str) -> Any:
        return self._frag_total.get(item, self._domains[item].zero())

    def live_vm_total(self, item: str) -> Any:
        """Σ value of Vm created but not yet accepted (incremental)."""
        return self._live_total.get(item, self._domains[item].zero())

    def live_vm_entries(self) -> int:
        """How many Vm are live right now, across all channels."""
        return len(self._live_entries)

    def check(self, item: str) -> AuditReport:
        domain = self._domains[item]
        fragments = self.fragments_total(item)
        in_flight = self.live_vm_total(item)
        observed = domain.combine(fragments, in_flight)
        per_site = {site.name: site.fragments.value(item)
                    for site in self.system.sites.values()
                    if site.fragments.knows(item)}
        return AuditReport(
            item=item, expected=self._expected[item],
            fragments_total=fragments, live_vm_total=in_flight,
            observed=observed, ok=observed == self._expected[item],
            per_site=per_site)

    def check_all(self) -> list[AuditReport]:
        return [self.check(item) for item in sorted(self._expected)]

    def all_ok(self) -> bool:
        return all(report.ok for report in self.check_all())

    def assert_ok(self) -> None:
        """Raise with full detail on the first violated item."""
        for report in self.check_all():
            if not report.ok:
                raise AssertionError(
                    f"conservation violated: {report} per_site="
                    f"{report.per_site}")

    # -- full-scan cross-check ----------------------------------------------

    def fragments_total_scan(self, item: str) -> Any:
        """Σ fragments by walking every site's stable pages."""
        domain = self._domains[item]
        values = [site.fragments.value(item)
                  for site in self.system.sites.values()
                  if site.fragments.knows(item)]
        return domain.pi(values)

    def live_vm_total_scan(self, item: str) -> Any:
        """Σ live Vm by walking every sender × receiver channel.

        A Vm is live iff its sequence number exceeds the *receiver's*
        accepted-up-to counter — sender-side ack state may lag (a lost
        ack leaves the sender retransmitting an already-absorbed Vm,
        which must not be double counted).
        """
        domain = self._domains[item]
        total = domain.zero()
        for sender in self.system.sites.values():
            for dst, channel in sender.vm.outgoing.items():
                receiver = self.system.sites[dst]
                accepted = receiver.vm.in_channel(sender.name) \
                    .cumulative_accepted
                for seq, entry in channel.entries.items():
                    if seq > accepted and entry.item == item:
                        total = domain.combine(total, entry.amount)
        return total

    def check_scan(self, item: str) -> AuditReport:
        """The original brute-force conservation check for one item."""
        domain = self._domains[item]
        fragments = self.fragments_total_scan(item)
        in_flight = self.live_vm_total_scan(item)
        observed = domain.combine(fragments, in_flight)
        per_site = {site.name: site.fragments.value(item)
                    for site in self.system.sites.values()
                    if site.fragments.knows(item)}
        return AuditReport(
            item=item, expected=self._expected[item],
            fragments_total=fragments, live_vm_total=in_flight,
            observed=observed, ok=observed == self._expected[item],
            per_site=per_site)

    def verify_full(self) -> list[AuditReport]:
        """Full-scan every item and cross-check the incremental books.

        Returns the scan-based reports; raises
        :class:`IncrementalDivergence` if any incremental total
        disagrees with its scan — the event-driven bookkeeping missed
        or double-counted a mutation somewhere.
        """
        reports = []
        for item in sorted(self._expected):
            report = self.check_scan(item)
            if report.fragments_total != self.fragments_total(item):
                raise IncrementalDivergence(
                    f"{item}: incremental fragments total "
                    f"{self.fragments_total(item)!r} != scanned "
                    f"{report.fragments_total!r}")
            if report.live_vm_total != self.live_vm_total(item):
                raise IncrementalDivergence(
                    f"{item}: incremental live-Vm total "
                    f"{self.live_vm_total(item)!r} != scanned "
                    f"{report.live_vm_total!r}")
            reports.append(report)
        return reports
