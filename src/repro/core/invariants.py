"""Global conservation auditing.

The scheme's central safety property (Section 3):

    N >= N_W + N_X + N_Y + N_Z   at all times, and
    N  = Σ fragments + Σ value carried by live Vm.

The auditor is a god's-eye observer: it reads every site's stable pages
and channel state directly (never through the network), maintains the
*expected* logical value of every item from committed semantic deltas,
and checks the conservation equation. It never influences execution —
it exists so tests and experiments can assert that no failure scenario
ever created or destroyed value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.domain import Domain
from repro.core.transactions import TxnResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import DvPSystem


@dataclass
class AuditReport:
    """Conservation check result for one item."""

    item: str
    expected: Any
    fragments_total: Any
    live_vm_total: Any
    observed: Any
    ok: bool
    per_site: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "OK" if self.ok else "VIOLATION"
        return (f"[{status}] {self.item}: expected={self.expected} "
                f"fragments={self.fragments_total} in-flight="
                f"{self.live_vm_total}")


class ConservationAuditor:
    """Tracks expected totals and verifies Σ fragments + Σ Vm = d."""

    def __init__(self, system: "DvPSystem") -> None:
        self.system = system
        self._expected: dict[str, Any] = {}
        self._domains: dict[str, Domain] = {}
        self.commits_seen = 0

    def register_item(self, item: str, domain: Domain, total: Any) -> None:
        self._domains[item] = domain
        self._expected[item] = total

    def expected(self, item: str) -> Any:
        return self._expected[item]

    def on_result(self, result: TxnResult) -> None:
        """Fold a committed transaction's semantic deltas into totals."""
        if not result.committed:
            return
        self.commits_seen += 1
        for item, sign, amount in result.semantic_deltas:
            domain = self._domains[item]
            if sign > 0:
                self._expected[item] = domain.combine(self._expected[item],
                                                      amount)
            else:
                self._expected[item] = domain.subtract(self._expected[item],
                                                       amount)

    # -- measurement ------------------------------------------------------

    def fragments_total(self, item: str) -> Any:
        domain = self._domains[item]
        values = [site.fragments.value(item)
                  for site in self.system.sites.values()
                  if site.fragments.knows(item)]
        return domain.pi(values)

    def live_vm_total(self, item: str) -> Any:
        """Σ value of Vm created but not yet accepted, per channel.

        A Vm is live iff its sequence number exceeds the *receiver's*
        accepted-up-to counter — sender-side ack state may lag (a lost
        ack leaves the sender retransmitting an already-absorbed Vm,
        which must not be double counted).
        """
        domain = self._domains[item]
        total = domain.zero()
        for sender in self.system.sites.values():
            for dst, channel in sender.vm.outgoing.items():
                receiver = self.system.sites[dst]
                accepted = receiver.vm.in_channel(sender.name) \
                    .cumulative_accepted
                for seq, entry in channel.entries.items():
                    if seq > accepted and entry.item == item:
                        total = domain.combine(total, entry.amount)
        return total

    def check(self, item: str) -> AuditReport:
        domain = self._domains[item]
        fragments = self.fragments_total(item)
        in_flight = self.live_vm_total(item)
        observed = domain.combine(fragments, in_flight)
        per_site = {site.name: site.fragments.value(item)
                    for site in self.system.sites.values()
                    if site.fragments.knows(item)}
        return AuditReport(
            item=item, expected=self._expected[item],
            fragments_total=fragments, live_vm_total=in_flight,
            observed=observed, ok=observed == self._expected[item],
            per_site=per_site)

    def check_all(self) -> list[AuditReport]:
        return [self.check(item) for item in sorted(self._expected)]

    def all_ok(self) -> bool:
        return all(report.ok for report in self.check_all())

    def assert_ok(self) -> None:
        """Raise with full detail on the first violated item."""
        for report in self.check_all():
            if not report.ok:
                raise AssertionError(
                    f"conservation violated: {report} per_site="
                    f"{report.per_site}")
