"""Demand-aware redistribution planning (Section 9's open question).

The paper leaves "the best ways to distribute the data" open. The base
protocol is purely reactive — value moves only when a transaction is
already short — and the proactive daemon (:mod:`repro.core.rebalance`)
needs an answer to *where should surplus go?* and *when should a short
site fetch ahead of demand?*. This module supplies both halves:

* :class:`DemandTracker` — a per-site, volatile, exponentially-decayed
  ledger of demand signals the protocol already generates for free:
  local shortfalls (a transaction needed more than the fragment held),
  local aborts, remote ``DataRequest`` traffic (peers asking *us* for
  value are demand we can push toward), and received Vm (peers sending
  us value are wealthy — candidates to pull from). Nothing here adds
  messages; it only listens.

* A pluggable :class:`RebalancePolicy` registry deciding, per item,
  which peer a surplus push targets and which peer a deficit pull asks:

  - ``static-rr``       — today's behaviour: rotate over live peers;
  - ``demand-weighted`` — push toward the peer whose recent requests
    show the most unmet demand (round-robin when nobody is asking);
  - ``pull``            — no pushes; a site below its low watermark
    requests value from its apparently richest reachable peer, as an
    ordinary Rds transaction.

Everything is deterministic: scores decay by virtual time only, peers
are considered in the site's stable peer order, and ties break toward
the earliest candidate — so traces replay bit-identically.
"""

from __future__ import annotations

from typing import Any, ClassVar

#: Scores below this are treated as "nobody is asking" (pure decay
#: never reaches zero; the epsilon keeps fallback behaviour reachable).
SCORE_EPSILON = 1e-6


def _magnitude(amount: Any) -> float:
    """Collapse a domain amount to a comparable non-negative weight.

    Counter-like domains yield their numeric size; structured domains
    (sets, tuples) their cardinality; anything else counts as one
    event. Only relative order matters to the policies.
    """
    if isinstance(amount, bool) or amount is None:
        return 1.0
    if isinstance(amount, (int, float)):
        return float(abs(amount))
    try:
        return float(len(amount))
    except TypeError:
        return 1.0


class _DecayedScore:
    """A number that halves every ``half_life`` of virtual time."""

    __slots__ = ("value", "stamp")

    def __init__(self) -> None:
        self.value = 0.0
        self.stamp = 0.0

    def add(self, amount: float, now: float, half_life: float) -> None:
        self.value = self.read(now, half_life) + amount
        self.stamp = now

    def read(self, now: float, half_life: float) -> float:
        if self.value == 0.0:
            return 0.0
        elapsed = now - self.stamp
        if elapsed <= 0.0:
            return self.value
        return self.value * 0.5 ** (elapsed / half_life)


class DemandTracker:
    """Volatile per-site demand/wealth ledger (decays over virtual time).

    Fed by hooks on the protocol's own transitions (transaction
    shortfall and abort, incoming requests, accepted Vm); read by the
    rebalance policies. Like the lock table it does not survive a
    crash — :meth:`reset` is called from ``DvPSite.crash``.
    """

    #: A local abort carries this much pressure (shortfall signals are
    #: weighted by their actual deficit; an abort is one lost client).
    ABORT_WEIGHT = 1.0

    def __init__(self, sim, half_life: float = 60.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.sim = sim
        self.half_life = half_life
        self._local: dict[str, _DecayedScore] = {}
        self._remote: dict[tuple[str, str], _DecayedScore] = {}
        self._wealth: dict[tuple[str, str], _DecayedScore] = {}

    # -- feeding hooks ----------------------------------------------------

    def note_shortfall(self, item: str, deficit: Any) -> None:
        """A local transaction found the fragment *deficit* short."""
        self._bump(self._local, item, _magnitude(deficit))

    def note_abort(self, item: str) -> None:
        """A local transaction gave up while needing *item*."""
        self._bump(self._local, item, self.ABORT_WEIGHT)

    def note_remote_demand(self, peer: str, item: str, need: Any) -> None:
        """*peer* asked us for *need* of *item* — demand we can push at."""
        self._bump(self._remote, (peer, item), _magnitude(need))

    def note_supply(self, peer: str, item: str, amount: Any) -> None:
        """*peer* sent us *amount* of *item* — evidence it is rich."""
        self._bump(self._wealth, (peer, item), _magnitude(amount))

    def _bump(self, table: dict, key, amount: float) -> None:
        score = table.get(key)
        if score is None:
            score = table[key] = _DecayedScore()
        score.add(amount, self.sim.now, self.half_life)

    # -- reading ----------------------------------------------------------

    def local_pressure(self, item: str) -> float:
        """How starved this site's own clients have recently been."""
        return self._read(self._local, item)

    def remote_demand(self, item: str, peer: str) -> float:
        """How hard *peer* has recently been asking us for *item*."""
        return self._read(self._remote, (peer, item))

    def wealth(self, item: str, peer: str) -> float:
        """How much of *item* *peer* has recently been able to send."""
        return self._read(self._wealth, (peer, item))

    def _read(self, table: dict, key) -> float:
        score = table.get(key)
        if score is None:
            return 0.0
        return score.read(self.sim.now, self.half_life)

    def forget_peer(self, peer: str) -> None:
        """*peer* left the topology: drop its demand/wealth evidence so
        the planner stops pushing toward (or pulling from) it."""
        for table in (self._remote, self._wealth):
            for key in [key for key in table if key[0] == peer]:
                del table[key]

    def reset(self) -> None:
        """Crash: the ledger is volatile state and does not survive."""
        self._local.clear()
        self._remote.clear()
        self._wealth.clear()


# -- policies ----------------------------------------------------------------

class RebalancePolicy:
    """Where a daemon's pushes go and pulls come from.

    Policies are stateful per daemon (the round-robin cursor);
    :func:`make_rebalance_policy` builds a fresh instance per site.
    Candidate lists arrive pre-filtered to live, reachable peers in the
    site's stable peer order; selection must be a pure peek — cursors
    advance only through :meth:`on_shipped` / :meth:`on_pulled`, which
    the daemon calls after the movement actually happened (a failed
    lock acquisition must not burn a peer's turn).
    """

    name: ClassVar[str] = "policy"
    pushes: ClassVar[bool] = True
    pulls: ClassVar[bool] = False

    def push_target(self, demand: DemandTracker, item: str,
                    candidates: list[str]) -> str | None:
        raise NotImplementedError

    def pull_source(self, demand: DemandTracker, item: str,
                    candidates: list[str]) -> str | None:
        return None

    def on_shipped(self, peer: str) -> None:
        """A push to *peer* committed (create record forced)."""

    def on_pulled(self, peer: str) -> None:
        """A pull request was sent to *peer*."""


class _RoundRobinCursor:
    """Shared rotation helper: peek without advancing."""

    def __init__(self) -> None:
        self._cursor = 0

    def peek(self, candidates: list[str]) -> str | None:
        if not candidates:
            return None
        return candidates[self._cursor % len(candidates)]

    def advance(self) -> None:
        self._cursor += 1


class StaticRoundRobinPolicy(RebalancePolicy):
    """Today's behaviour: rotate surplus over the live peers."""

    name = "static-rr"

    def __init__(self) -> None:
        self._rr = _RoundRobinCursor()

    def push_target(self, demand: DemandTracker, item: str,
                    candidates: list[str]) -> str | None:
        return self._rr.peek(candidates)

    def on_shipped(self, peer: str) -> None:
        self._rr.advance()


class DemandWeightedPolicy(RebalancePolicy):
    """Push toward the peer with the most recently-observed demand.

    Demand is what the tracker heard in the peers' own ``DataRequest``
    traffic. When no candidate shows demand above the epsilon the
    policy degrades to round-robin — it is never worse-informed than
    ``static-rr``. Ties break toward the earliest candidate, so the
    choice is deterministic.
    """

    name = "demand-weighted"

    def __init__(self) -> None:
        self._rr = _RoundRobinCursor()

    def push_target(self, demand: DemandTracker, item: str,
                    candidates: list[str]) -> str | None:
        best, best_score = None, SCORE_EPSILON
        for peer in candidates:
            score = demand.remote_demand(item, peer)
            if score > best_score:
                best, best_score = peer, score
        if best is not None:
            return best
        return self._rr.peek(candidates)

    def on_shipped(self, peer: str) -> None:
        self._rr.advance()


class PullPolicy(RebalancePolicy):
    """Deficit-driven: never push; a short site asks the richest peer.

    Wealth is estimated from received Vm (a peer that keeps granting
    value demonstrably has it). With no evidence yet the policy probes
    peers round-robin — each unanswered pull rotates to the next
    candidate, so a poor or dead-quiet peer cannot absorb every probe.
    """

    name = "pull"
    pushes = False
    pulls = True

    def __init__(self) -> None:
        self._rr = _RoundRobinCursor()

    def push_target(self, demand: DemandTracker, item: str,
                    candidates: list[str]) -> str | None:
        return None

    def pull_source(self, demand: DemandTracker, item: str,
                    candidates: list[str]) -> str | None:
        best, best_score = None, SCORE_EPSILON
        for peer in candidates:
            score = demand.wealth(item, peer)
            if score > best_score:
                best, best_score = peer, score
        if best is not None:
            return best
        return self._rr.peek(candidates)

    def on_pulled(self, peer: str) -> None:
        self._rr.advance()


REBALANCE_POLICIES: dict[str, type[RebalancePolicy]] = {
    cls.name: cls for cls in (
        StaticRoundRobinPolicy, DemandWeightedPolicy, PullPolicy)
}


def make_rebalance_policy(name: str) -> RebalancePolicy:
    """Instantiate a registered policy (one instance per daemon)."""
    try:
        cls = REBALANCE_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown rebalance policy {name!r}; "
            f"choose from {sorted(REBALANCE_POLICIES)}") from None
    return cls()


__all__ = [
    "DemandTracker",
    "RebalancePolicy",
    "StaticRoundRobinPolicy",
    "DemandWeightedPolicy",
    "PullPolicy",
    "REBALANCE_POLICIES",
    "make_rebalance_policy",
    "SCORE_EPSILON",
]
