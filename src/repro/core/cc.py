"""Concurrency control schemes Conc1 and Conc2 (Section 6).

Both schemes enforce the paper's correctness notion: *serializability
subject to redistribution* — the values of data items behave as if the
real transactions ran one at a time; only the distribution of fragments
(the work of the conceptual Rds transactions) may differ.

* **Conc1** (timestamp ordering, Section 6.1): transaction ``t`` may
  lock fragment ``d_j`` — locally or via a remote request — only if
  ``TS(t) > TS(d_j)``; granting stamps the fragment with ``TS(t)``.
  Nothing ever waits: a refused lock aborts (locally) or silently
  ignores (remotely, the request will simply go unanswered).

* **Conc2** (strict two-phase locking, Section 6.2): no timestamp
  checks; lock requests queue FIFO and the whole scheme is sound only on
  a network with message-order synchronicity and atomic ordered
  broadcast (see :mod:`repro.net.sync`). Transactions broadcast all
  their remote requests together at initiation, in initiation order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.site import DvPSite


class ConcurrencyControl(ABC):
    """Strategy object consulted by sites and transactions."""

    name: str = "cc"
    #: May local lock acquisition wait (strict 2PL) or must it decide now?
    waits_for_locks: bool = False
    #: Are remote requests broadcast at initiation (Conc2's requirement)?
    broadcast_at_init: bool = False

    @abstractmethod
    def may_lock_local(self, site: "DvPSite", ts: int,
                       items: set[str]) -> bool:
        """May a transaction with timestamp *ts* lock *items* here?"""

    @abstractmethod
    def on_lock_granted(self, site: "DvPSite", ts: int,
                        items: set[str]) -> None:
        """Bookkeeping once the locks are actually taken."""

    @abstractmethod
    def may_honor(self, site: "DvPSite", ts: int, item: str) -> bool:
        """May this site honor a remote request with timestamp *ts*?"""

    def stamp_for_rds(self, site: "DvPSite", request_ts: int,
                      item: str) -> int:
        """Timestamp recorded when a remote request is honored."""
        return request_ts


class Conc1(ConcurrencyControl):
    """Timestamp-ordering scheme of Section 6.1."""

    name = "conc1"
    waits_for_locks = False
    broadcast_at_init = False

    def may_lock_local(self, site: "DvPSite", ts: int,
                       items: set[str]) -> bool:
        return all(ts > site.fragments.timestamp(item) for item in items)

    def on_lock_granted(self, site: "DvPSite", ts: int,
                        items: set[str]) -> None:
        for item in items:
            site.fragments.stamp(item, ts)

    def may_honor(self, site: "DvPSite", ts: int, item: str) -> bool:
        return ts > site.fragments.timestamp(item)


class Conc2(ConcurrencyControl):
    """Strict-2PL scheme of Section 6.2 (synchronous network required)."""

    name = "conc2"
    waits_for_locks = True
    broadcast_at_init = True

    def may_lock_local(self, site: "DvPSite", ts: int,
                       items: set[str]) -> bool:
        # 2PL has no timestamp admission test; the lock queue is the law.
        return True

    def on_lock_granted(self, site: "DvPSite", ts: int,
                        items: set[str]) -> None:
        # Keep fragment stamps monotone for observability; Conc2's
        # correctness does not depend on them (its hypothetical
        # timestamps are the partial order induced by the broadcasts).
        for item in items:
            site.fragments.stamp_if_newer(item, ts)

    def may_honor(self, site: "DvPSite", ts: int, item: str) -> bool:
        return True


def make_cc(name: str) -> ConcurrencyControl:
    """Factory: 'conc1' or 'conc2'."""
    schemes = {"conc1": Conc1, "conc2": Conc2}
    if name not in schemes:
        raise ValueError(f"unknown concurrency control {name!r}; "
                         f"expected one of {sorted(schemes)}")
    return schemes[name]()
