"""Proactive background redistribution.

The base protocol redistributes *on demand*: a site asks for value only
when a transaction is short (Section 3: "requests other sites ... in
the case of being unable to proceed with what is available"). The paper
leaves "the best ways to distribute the data" open (Section 9); this
module implements the natural proactive complement: a per-site daemon
that periodically ships surplus above a target level to peers,
round-robin, as ordinary Rds transactions (a Vm per shipment).

Rebalancing never changes any item's value — it only moves fragments —
so it composes with every other mechanism: the conservation auditor,
recovery, and both CC schemes see nothing unusual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.timers import PeriodicTimer
from repro.storage.records import SetFragment, VmCreateRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.site import DvPSite


@dataclass(frozen=True)
class RebalanceConfig:
    """When and how much to ship.

    A site holding more than ``high_watermark × target`` of an item
    ships the excess above ``target`` to the next peer in round-robin
    order. ``target`` defaults to the site's initial quota (captured at
    daemon start). Only integer-valued (counter-like) domains are
    rebalanced; other domains are skipped.
    """

    period: float = 20.0
    high_watermark: float = 2.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.high_watermark < 1.0:
            raise ValueError("high_watermark must be >= 1")


class RebalanceDaemon:
    """Periodic surplus shipper for one site."""

    def __init__(self, site: "DvPSite",
                 config: RebalanceConfig | None = None) -> None:
        self.site = site
        self.config = config or RebalanceConfig()
        self.targets: dict[str, int] = {}
        self.shipments = 0
        self._round_robin = 0
        self._timer = PeriodicTimer(site.sim, self.config.period,
                                    self.tick,
                                    label=f"rebalance:{site.name}")

    def start(self) -> None:
        """Capture current fragments as targets and begin ticking."""
        for item in self.site.fragments.items():
            value = self.site.fragments.value(item)
            if isinstance(value, int):
                self.targets[item] = value
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    @property
    def running(self) -> bool:
        return self._timer.running

    def tick(self) -> None:
        """One pass: ship surplus of every over-target item."""
        if not self.site.alive:
            return
        for item, target in self.targets.items():
            self._maybe_ship(item, target)

    def _maybe_ship(self, item: str, target: int) -> None:
        site = self.site
        if not site.locks.is_free(item):
            return
        value = site.fragments.value(item)
        if not isinstance(value, int):
            return
        threshold = max(target, 1) * self.config.high_watermark
        if value <= threshold:
            return
        surplus = value - target
        peers = site.peers()
        if not peers:
            return
        peer = peers[self._round_robin % len(peers)]
        self._round_robin += 1
        # Ship as an Rds transaction: lock, log [actions, messages],
        # apply, send, release — identical discipline to honoring a
        # request.
        owner = f"rebalance:{site.name}:{self.shipments}"
        if not site.locks.try_acquire_all(owner, {item}):
            return
        try:
            ts = site.clock.next()
            remainder = value - surplus
            entry = site.vm.allocate_entry(peer, item, surplus,
                                           "transfer", owner)
            lsn = site.log_append(VmCreateRecord(
                txn_id=owner,
                actions=(SetFragment(item, remainder, ts=ts),),
                messages=(entry,)))
            site.apply_actions((SetFragment(item, remainder, ts=ts),),
                               lsn)
            site.vm.register_created([entry])
            self.shipments += 1
        finally:
            site.locks.release_all(owner)
            site.after_lock_release()


def install_rebalancing(system, config: RebalanceConfig | None = None
                        ) -> dict[str, RebalanceDaemon]:
    """Attach and start a daemon at every site of a DvPSystem."""
    daemons = {}
    for name, site in system.sites.items():
        daemon = RebalanceDaemon(site, config)
        daemon.start()
        daemons[name] = daemon
    return daemons
