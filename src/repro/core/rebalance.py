"""Proactive background redistribution.

The base protocol redistributes *on demand*: a site asks for value only
when a transaction is short (Section 3: "requests other sites ... in
the case of being unable to proceed with what is available"). The paper
leaves "the best ways to distribute the data" open (Section 9); this
module implements the proactive complement: a per-site daemon that
periodically moves value toward where it is wanted, as ordinary Rds
transactions (a Vm per push, a ``DataRequest`` per pull).

Two movement modes, selected by the policy
(:mod:`repro.core.redistribution`):

* **push** — a site holding more than ``high_watermark × target`` of an
  item ships surplus above ``target`` to a live, reachable peer chosen
  by the policy (round-robin or demand-weighted);
* **pull** — a site below ``low_watermark × target`` requests the
  deficit from the peer the policy believes richest, exactly as a
  short transaction would (the responder's normal Rds honor path
  answers it; no new message kinds exist).

Rebalancing never changes any item's value — it only moves fragments —
so it composes with every other mechanism: the conservation auditor,
recovery, and both CC schemes see nothing unusual. Every push is a
locked, logged ``[actions, messages]`` force; every pull lands as a
peer's ordinary ``VmCreateRecord``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.messages import TRANSFER_MODE, DataRequest
from repro.core.redistribution import (
    REBALANCE_POLICIES,
    make_rebalance_policy,
)
from repro.obs.events import RebalPull, RebalShip
from repro.sim.timers import PeriodicTimer
from repro.storage.records import SetFragment, VmCreateRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.site import DvPSite


@dataclass(frozen=True)
class RebalanceConfig:
    """When and how much to move.

    ``target`` defaults to a site's fragment value when the daemon
    first sees the item (the initial quota for items present at start;
    see :meth:`RebalanceDaemon.set_target` for explicit plans). Only
    integer-valued (counter-like) domains are rebalanced; other domains
    are skipped.

    ``max_ship`` caps a single push (None: ship the whole surplus —
    the historical behaviour); with a cap, every policy spends the same
    worst-case shipment budget per period, which is what makes policy
    comparisons fair. ``cooldown`` is extra per-item quiet time after a
    push or pull, on top of the period itself (hysteresis against
    ping-ponging a fragment that hovers at a watermark).
    """

    period: float = 20.0
    high_watermark: float = 2.0
    low_watermark: float = 0.5
    policy: str = "static-rr"
    max_ship: int | None = None
    cooldown: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.high_watermark < 1.0:
            raise ValueError("high_watermark must be >= 1")
        if not 0.0 <= self.low_watermark < 1.0:
            raise ValueError("low_watermark must be in [0, 1)")
        if self.policy not in REBALANCE_POLICIES:
            raise ValueError(
                f"unknown rebalance policy {self.policy!r}; "
                f"choose from {sorted(REBALANCE_POLICIES)}")
        if self.max_ship is not None and self.max_ship < 1:
            raise ValueError("max_ship must be >= 1 (or None)")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")


class RebalanceDaemon:
    """Periodic redistribution planner for one site."""

    def __init__(self, site: "DvPSite",
                 config: RebalanceConfig | None = None) -> None:
        self.site = site
        self.config = config or RebalanceConfig()
        self.policy = make_rebalance_policy(self.config.policy)
        self.targets: dict[str, int] = {}
        self.shipments = 0
        self.pulls = 0
        self.skipped_locked = 0
        self._quiet_until: dict[str, float] = {}
        self._timer = PeriodicTimer(site.sim, self.config.period,
                                    self.tick,
                                    label=f"rebalance:{site.name}")
        self._obs = site.sim.obs
        self._c_ship = site.sim.metrics.counter("rebal.shipments",
                                                site=site.name)
        self._c_pull = site.sim.metrics.counter("rebal.pulls",
                                                site=site.name)

    def start(self) -> None:
        """Capture current fragments as targets and begin ticking."""
        for item in self.site.fragments.items():
            value = self.site.fragments.value(item)
            if isinstance(value, int):
                self.targets[item] = value
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    @property
    def running(self) -> bool:
        return self._timer.running

    def set_target(self, item: str, target: int) -> None:
        """Install an explicit per-item target level (a quota plan)."""
        if target < 0:
            raise ValueError("target must be >= 0")
        self.targets[item] = target

    def tick(self) -> None:
        """One pass over every known item: push surplus, pull deficit.

        Items registered after the daemon started are adopted here,
        with their first-seen value as the default target — a snapshot
        taken once at start would silently exempt them forever.
        """
        if not self.site.alive or self.site.decommissioned:
            # A decommissioned site's value is being drained by the
            # migration controller; planning against it would fight it.
            return
        for item in list(self.site.fragments.items()):
            value = self.site.fragments.value(item)
            if not isinstance(value, int):
                continue
            target = self.targets.get(item)
            if target is None:
                target = value
                self.targets[item] = target
            if self.site.sim.now < self._quiet_until.get(item, 0.0):
                continue
            if self.policy.pushes:
                self._maybe_ship(item, target)
            if self.policy.pulls:
                self._maybe_pull(item, target)

    # -- live-topology view ----------------------------------------------

    def _live_peers(self, item: str) -> list[str]:
        """Peers worth planning toward: the item's directory owners
        that are up and reachable right now.

        Shipping to a crashed or partitioned-away peer is legal but
        useless — the Vm strands in flight while the local fragment has
        already been drained. The liveness registry is planning-only
        input (the transport still never reports failures). Placement
        comes from the site's router (``peers_for``), so under a
        non-"all" partitioner the planner moves value only among the
        item's owners; under "all" this is exactly the old full peer
        list.
        """
        site = self.site
        return [peer for peer in site.peers_for(item)
                if site.network.is_up(peer)
                and site.network.reachable(site.name, peer)]

    # -- push -------------------------------------------------------------

    def _maybe_ship(self, item: str, target: int) -> None:
        site = self.site
        value = site.fragments.value(item)
        threshold = max(target, 1) * self.config.high_watermark
        if value <= threshold:
            return
        surplus = value - target
        if self.config.max_ship is not None:
            surplus = min(surplus, self.config.max_ship)
        candidates = self._live_peers(item)
        if not candidates:
            return
        peer = self.policy.push_target(site.demand, item, candidates)
        if peer is None:
            return
        # Ship as an Rds transaction: lock, log [actions, messages],
        # apply, send, release — identical discipline to honoring a
        # request. Peer selection above was a pure peek: the cursor
        # advances only via on_shipped, after the create record is
        # forced, so a failed acquisition cannot burn a peer's turn.
        owner = f"rebalance:{site.name}:{self.shipments}"
        if not site.locks.try_acquire_all(owner, {item}):
            self.skipped_locked += 1
            return
        try:
            ts = site.clock.next()
            remainder = value - surplus
            entry = site.vm.allocate_entry(peer, item, surplus,
                                           "transfer", owner)
            lsn = site.log_append(VmCreateRecord(
                txn_id=owner,
                actions=(SetFragment(item, remainder, ts=ts),),
                messages=(entry,)))
            site.apply_actions((SetFragment(item, remainder, ts=ts),),
                               lsn)
            site.vm.register_created([entry])
            self.shipments += 1
            self._c_ship.value += 1
            self._quiet_until[item] = site.sim.now + self.config.cooldown
            self.policy.on_shipped(peer)
            if self._obs.enabled:
                self._obs.emit(RebalShip(
                    t=site.sim.now, site=site.name, dst=peer, item=item,
                    amount=surplus, policy=self.policy.name))
        finally:
            site.locks.release_all(owner)
            site.after_lock_release()

    # -- pull -------------------------------------------------------------

    def _maybe_pull(self, item: str, target: int) -> None:
        site = self.site
        if target < 1:
            return
        value = site.fragments.value(item)
        if value >= self.config.low_watermark * target:
            return
        need = target - value
        if need <= 0:
            return
        candidates = self._live_peers(item)
        if not candidates:
            return
        peer = self.policy.pull_source(site.demand, item, candidates)
        if peer is None:
            return
        # An ordinary fire-and-forget DataRequest: the peer's normal
        # Rds honor path (lock, [actions, messages] force, Vm) answers
        # it, so conservation and recovery see nothing new. No reply is
        # guaranteed — the next tick re-evaluates from scratch.
        self.pulls += 1
        self._c_pull.value += 1
        request = DataRequest(
            txn_id=f"rebalance-pull:{site.name}:{self.pulls}",
            origin=site.name, item=item, mode=TRANSFER_MODE,
            need=need, ts=site.clock.next())
        site.send_request(peer, request)
        self._quiet_until[item] = site.sim.now + self.config.cooldown
        self.policy.on_pulled(peer)
        if self._obs.enabled:
            self._obs.emit(RebalPull(
                t=site.sim.now, site=site.name, src=peer, item=item,
                amount=need, policy=self.policy.name))


def install_rebalancing(system, config: RebalanceConfig | None = None
                        ) -> dict[str, RebalanceDaemon]:
    """Attach and start a daemon at every site of a DvPSystem.

    Each daemon is built and armed in its site's scheduling context so
    its periodic tick lives on the site's shard when the simulation is
    sharded (a no-op on the single-queue kernel).
    """
    daemons = {}
    for name, site in system.sites.items():
        def build(site=site):
            daemon = RebalanceDaemon(site, config)
            daemon.start()
            return daemon
        daemons[name] = system.sim.call_in_site(name, build)
    return daemons
