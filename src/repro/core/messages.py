"""Protocol payloads exchanged between DvP sites.

Three payload kinds exist (Sections 4.2 and 5):

* :class:`DataRequest` — "send me value for item d"; *not* critical
  data, so requests are fire-and-forget (no unique ids, no
  retransmission — the paper notes request delivery is not critical).
* :class:`VmTransfer` — a real message carrying a virtual message's
  value; retransmitted until acknowledged.
* :class:`VmAck` — cumulative acknowledgement for a Vm channel (also
  piggybacked on every VmTransfer in the reverse direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.storage.records import VmEntry

READ_MODE = "read"
TRANSFER_MODE = "transfer"


@dataclass(frozen=True)
class DataRequest:
    """Ask *origin*'s transaction for value of *item* held remotely.

    ``mode == TRANSFER_MODE``: send up to *need* (a partial drain is
    useful). ``mode == READ_MODE``: send the *entire* fragment, and only
    if the responder has no outstanding Vm for the item — the condition
    Section 3 places on evaluating N.
    """

    txn_id: str
    origin: str
    item: str
    mode: str
    need: Any
    ts: int


@dataclass(frozen=True)
class VmTransfer:
    """A real message carrying one virtual message.

    ``piggyback_ack`` acknowledges the reverse channel (dst → src) up to
    that sequence number, as Section 4.2 requires of every message.
    ``ts`` carries the sender's logical clock for bump-on-receive.
    """

    src: str
    entry: VmEntry
    piggyback_ack: int
    ts: int


@dataclass(frozen=True)
class TsAdvisory:
    """Clock gossip: a request was refused because its timestamp lost
    to the fragment's. Receiving this bumps the requester's Lamport
    clock past the winning stamp so a *fresh* transaction can succeed —
    the paper's stale-clock recovery ("the reception of any messages
    ... would 'bump-up' the counter") made proactive. Fire-and-forget;
    purely an optimization, never required for safety."""

    ts: int


@dataclass(frozen=True)
class VmAck:
    """Cumulative ack: all of *src*'s messages up to *cumulative* were
    received "and processed safely" (accept records forced)."""

    src: str
    cumulative: int
    ts: int
