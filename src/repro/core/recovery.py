"""Independent recovery (Section 7).

The recovering site consults nothing but its own stable log and pages:

1. locks do not survive (the lock table is volatile — the paper argues
   releasing all of them is always safe);
2. committed-but-unapplied database actions are redone, idempotently
   (guarded by page LSNs), starting from the last checkpoint;
3. Vm channel state is rebuilt: outgoing entries from create records
   (re-sent — receivers deduplicate and re-acknowledge), incoming
   cumulative-accepted counters from accept records (so nothing is
   absorbed twice);
4. fragment timestamps are rebuilt from the committed records — aborted
   lockers' stamps are forgotten, which Section 7 shows is safe;
5. the Lamport counter restarts from the largest timestamp in the log
   (still possibly stale; incoming messages bump it further).

No messages are sent or awaited before normal processing resumes: the
recovery really is *independent*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.timestamps import encode
from repro.obs.events import SiteRecover
from repro.storage.records import (
    CheckpointRecord,
    CommitRecord,
    VmAcceptRecord,
    VmCreateRecord,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.site import DvPSite


@dataclass
class RecoveryReport:
    """What recovery did — consumed by tests and experiment E5."""

    site: str
    scanned_records: int = 0
    redo_applied: int = 0
    redo_skipped: int = 0
    vm_rebuilt: int = 0
    incoming_channels: int = 0
    from_checkpoint: bool = False
    start_lsn: int = 0
    messages_needed: int = 0  # always 0: the headline property
    details: dict = field(default_factory=dict)


def recover_site(site: "DvPSite") -> RecoveryReport:
    """Run the Section 7 algorithm over *site*'s stable state."""
    report = RecoveryReport(site=site.name)

    # Step 1: all locks released (the volatile table is already empty
    # after a crash; clear defensively for direct invocations).
    site.locks.clear()
    site.active.clear()

    vm = site._new_vm_manager()
    max_ts_seen = 0

    # Locate the most recent checkpoint and restore channel baselines.
    checkpoint_env = site.log.last_matching(
        lambda record: isinstance(record, CheckpointRecord))
    start_lsn = 0
    if checkpoint_env is not None:
        checkpoint: CheckpointRecord = checkpoint_env.record
        start_lsn = checkpoint_env.lsn + 1
        report.from_checkpoint = True
        for item, ts in checkpoint.fragment_timestamps:
            if site.fragments.knows(item):
                site.fragments.stamp_if_newer(item, ts)
                max_ts_seen = max(max_ts_seen, ts)
        for src, cumulative in checkpoint.incoming_cumulative:
            channel = vm.in_channel(src)
            channel.cumulative_accepted = max(channel.cumulative_accepted,
                                              cumulative)
        for dst, next_seq in checkpoint.next_channel_seq:
            channel = vm.out_channel(dst)
            channel.next_seq = max(channel.next_seq, next_seq)
        for entry in checkpoint.outgoing_unacked:
            vm.restore_entry(entry)
            report.vm_rebuilt += 1
        for key, value in checkpoint.extra:
            if key == "clock":
                # The checkpoint stores the bare Lamport *counter*, but
                # observe() takes an encoded timestamp and decodes the
                # counter back out (counter = ts // MAX_SITES). Re-wrap
                # it with rank 0 — the smallest timestamp carrying this
                # counter — so the restored counter is exactly the
                # checkpointed one, never off by the field shift.
                site.clock.observe(encode(value, 0))

    report.start_lsn = start_lsn

    # Step 2: redo scan.
    for envelope in site.log.scan(start_lsn):
        record = envelope.record
        report.scanned_records += 1
        if isinstance(record, (CommitRecord, VmCreateRecord,
                               VmAcceptRecord)):
            for action in record.actions:
                if not site.fragments.knows(action.item):
                    continue
                if site.fragments.redo_write(action.item, action.value,
                                             envelope.lsn):
                    report.redo_applied += 1
                else:
                    report.redo_skipped += 1
                site.fragments.stamp_if_newer(action.item, action.ts)
                max_ts_seen = max(max_ts_seen, action.ts)
        if isinstance(record, VmCreateRecord):
            for entry in record.messages:
                vm.restore_entry(entry)
                channel = vm.out_channel(entry.dst)
                channel.next_seq = max(channel.next_seq,
                                       entry.channel_seq + 1)
                report.vm_rebuilt += 1
        elif isinstance(record, VmAcceptRecord):
            channel = vm.in_channel(record.src)
            channel.cumulative_accepted = max(channel.cumulative_accepted,
                                              record.channel_seq)

    report.incoming_channels = len(vm.incoming)

    # Step 5: bump the clock past every committed timestamp we saw.
    if max_ts_seen:
        site.clock.observe(max_ts_seen)

    # Chaos-engine observability: stamp the outage window this recovery
    # closes (crash injection records it; direct recover() calls on a
    # never-crashed site leave it absent).
    if site.downtime and site.downtime[-1][1] is None:
        report.details["crashed_at"] = site.downtime[-1][0]
        report.details["recovered_at"] = site.sim.now

    site.vm = vm
    if site._obs.enabled:
        site._obs.emit(SiteRecover(
            t=site.sim.now, site=site.name,
            redo_applied=report.redo_applied,
            vm_rebuilt=report.vm_rebuilt,
            from_checkpoint=report.from_checkpoint))
    return report


def derive_incoming_cumulative(site: "DvPSite") -> dict[str, int]:
    """Log-derived accepted-up-to per source (for audits of dead sites)."""
    cumulative: dict[str, int] = {}
    checkpoint_env = site.log.last_matching(
        lambda record: isinstance(record, CheckpointRecord))
    start_lsn = 0
    if checkpoint_env is not None:
        start_lsn = checkpoint_env.lsn + 1
        for src, value in checkpoint_env.record.incoming_cumulative:
            cumulative[src] = max(cumulative.get(src, 0), value)
    for envelope in site.log.scan(start_lsn):
        record = envelope.record
        if isinstance(record, VmAcceptRecord):
            cumulative[record.src] = max(cumulative.get(record.src, 0),
                                         record.channel_seq)
    return cumulative
