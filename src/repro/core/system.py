"""The DvPSystem façade: build sites, register partitioned items, run.

This is the library's main entry point::

    from repro.core import DvPSystem, SystemConfig, CounterDomain
    from repro.core import TransactionSpec, DecrementOp

    system = DvPSystem(SystemConfig(sites=["W", "X", "Y", "Z"]))
    system.add_item("flightA", CounterDomain(), split={"W": 25, "X": 25,
                                                       "Y": 25, "Z": 25})
    system.submit("W", TransactionSpec(ops=(DecrementOp("flightA", 3),)))
    system.run_for(100)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.cc import make_cc
from repro.core.domain import Domain
from repro.core.invariants import AuditReport, ConservationAuditor
from repro.core.policies import make_policy
from repro.core.recovery import RecoveryReport
from repro.core.site import DvPSite, SiteConfig
from repro.core.transactions import Transaction, TransactionSpec, TxnResult
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.net.outbox import BundlingConfig
from repro.net.sync import SynchronousNetwork
from repro.sim.kernel import Simulator
from repro.sim.shard import ShardPlan, ShardedSimulator


@dataclass
class SystemConfig:
    """Everything needed to build a DvP system."""

    sites: list[str] = field(default_factory=lambda: ["W", "X", "Y", "Z"])
    seed: int = 0
    cc: str = "conc1"
    policy: str = "ask-all"
    policy_kwargs: dict = field(default_factory=dict)
    txn_timeout: float = 30.0
    retransmit_period: float = 5.0
    checkpoint_interval: int = 0
    request_retries: int = 0
    read_freeze: float | None = None
    vm_window: int | None = None
    link: LinkConfig = field(default_factory=LinkConfig)
    #: Conc2 requires the order-synchronous network; None = follow cc.
    synchronous: bool | None = None
    sync_delay: float = 1.0
    #: Transport bundling (repro.net.outbox): None = off, the seed
    #: behaviour. The synchronous network ignores it (it models a
    #: lossless ordered broadcast, there is nothing to coalesce).
    bundling: BundlingConfig | None = None
    #: Suppress explicit acks covered by same-instant piggybacks; None
    #: follows ``bundling`` (on when bundling is on).
    coalesce_acks: bool | None = None
    #: Execute the simulation as this many site-group shards under
    #: conservative lookahead (repro.sim.shard; docs/PARALLEL.md).
    #: 1 = the classic single-queue kernel, byte-for-byte the seed
    #: behaviour. Requires a positive link delay lower bound.
    shards: int = 1
    #: Worker-lane count for the sharded kernel's deterministic
    #: schedule (shard i -> worker i % shard_workers). Any value yields
    #: the same trace fingerprint; it exists so tests can prove that.
    shard_workers: int = 1

    def __post_init__(self) -> None:
        if len(set(self.sites)) != len(self.sites):
            raise ValueError("site names must be unique")
        if not self.sites:
            raise ValueError("at least one site required")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")


class DvPSystem:
    """A complete data-value-partitioned distributed database."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        use_sync = (self.config.synchronous
                    if self.config.synchronous is not None
                    else self.config.cc == "conc2")
        if self.config.shards > 1:
            # Lookahead = the least delay any cross-site message can
            # have. Injecting a link fault (or reconfiguring a link)
            # with a smaller base delay later raises LookaheadError at
            # the offending send — loud, never silently acausal.
            lookahead = (self.config.sync_delay if use_sync
                         else self.config.link.delay_lower_bound)
            if lookahead <= 0:
                raise ValueError(
                    "shards > 1 requires a positive link delay lower "
                    "bound (LinkConfig.base_delay) to derive the "
                    "conservative lookahead")
            plan = ShardPlan.round_robin(
                self.config.sites, self.config.shards, lookahead)
            self.sim: Simulator = ShardedSimulator(
                plan, self.config.seed,
                workers=self.config.shard_workers)
        else:
            self.sim = Simulator(self.config.seed)
        if use_sync:
            self.network: Network = SynchronousNetwork(
                self.sim, delay=self.config.sync_delay)
        else:
            self.network = Network(self.sim, self.config.link,
                                   bundling=self.config.bundling)
        self.cc = make_cc(self.config.cc)
        self.policy = make_policy(self.config.policy,
                                  **self.config.policy_kwargs)
        self.results: list[TxnResult] = []
        self._result_hooks: list[Callable[[TxnResult], None]] = []
        site_config = SiteConfig(
            txn_timeout=self.config.txn_timeout,
            retransmit_period=self.config.retransmit_period,
            checkpoint_interval=self.config.checkpoint_interval,
            request_retries=self.config.request_retries,
            read_freeze=self.config.read_freeze,
            vm_window=self.config.vm_window,
            coalesce_acks=(self.config.coalesce_acks
                           if self.config.coalesce_acks is not None
                           else self.config.bundling is not None))
        self.sites: dict[str, DvPSite] = {}
        for rank, name in enumerate(self.config.sites):
            # Built in the site's own scheduling context so anything a
            # site arms at construction lands on its shard (a no-op on
            # the single-queue kernel).
            self.sites[name] = self.sim.call_in_site(
                name,
                lambda name=name, rank=rank: DvPSite(
                    name, rank, self.sim, self.network, self.cc,
                    self.policy, site_config,
                    on_result=self._record_result))
        # The auditor hooks into the sites' fragment stores and Vm
        # lifecycles (incremental accounting), so it attaches after
        # the sites exist.
        self.auditor = ConservationAuditor(self)

    # -- item registration --------------------------------------------------

    def add_item(self, item: str, domain: Domain,
                 split: dict[str, Any] | None = None,
                 total: Any = None) -> None:
        """Register a partitioned item with its initial quotas.

        Either give an explicit *split* (site -> initial fragment) or a
        *total* to divide as evenly as the domain allows (counters
        only). Sites absent from the split start with the zero value.
        """
        if split is None:
            if total is None:
                raise ValueError("provide either split or total")
            split = self._even_split(domain, total)
        for name in split:
            if name not in self.sites:
                raise KeyError(f"unknown site {name!r} in split")
        for name, site in self.sites.items():
            initial = split.get(name, domain.zero())
            site.fragments.register(item, domain, initial)
        self.auditor.register_item(item, domain,
                                   domain.pi(split.values()))

    def _even_split(self, domain: Domain, total: Any) -> dict[str, Any]:
        if not isinstance(total, int):
            raise ValueError("even split requires an integer total")
        names = list(self.sites)
        base, leftover = divmod(total, len(names))
        return {name: base + (1 if index < leftover else 0)
                for index, name in enumerate(names)}

    # -- transactions -------------------------------------------------------

    def submit(self, site: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None
               ) -> Transaction:
        return self.sites[site].submit(spec, on_done)

    def _record_result(self, result: TxnResult) -> None:
        if result.committed and result.read_values:
            # Sample, at the commit instant, how much of each read item
            # was still in transmission: the read protocol's inherent
            # blind spot (Section 3's N_M). The serializability checker
            # uses this as the permitted under-report bound. The
            # auditor's incremental books make this an O(1) lookup per
            # item instead of a full sender × receiver channel scan.
            for item in result.read_values:
                result.inflight_at_commit[item] = \
                    self.auditor.live_vm_total(item)
        self.results.append(result)
        self.auditor.on_result(result)
        for hook in self._result_hooks:
            hook(result)

    def add_result_hook(self, hook: Callable[[TxnResult], None]) -> None:
        """Observe every transaction outcome (used by metrics)."""
        self._result_hooks.append(hook)

    # -- running ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)

    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def drain(self, max_steps: int = 1_000_000) -> None:
        """Run until no events remain (retransmit timers stop when all
        Vm are acknowledged, so quiescent systems do drain)."""
        self.sim.run(max_steps=max_steps)

    # -- failure injection ----------------------------------------------------

    def crash(self, site: str) -> None:
        # call_in_site: crash/recover arm site-owned timers (recovery
        # retransmits, checkpoints), which must land on the site's
        # shard whether this is called from setup code or from an
        # event already running there.
        self.sim.call_in_site(site, self.sites[site].crash)

    def recover(self, site: str) -> RecoveryReport:
        return self.sim.call_in_site(site, self.sites[site].recover)

    # -- observation ------------------------------------------------------------

    def fragment_values(self, item: str) -> dict[str, Any]:
        return {name: site.fragments.value(item)
                for name, site in self.sites.items()
                if site.fragments.knows(item)}

    def audit(self) -> list[AuditReport]:
        return self.auditor.check_all()

    def committed(self) -> list[TxnResult]:
        return [result for result in self.results if result.committed]

    def aborted(self) -> list[TxnResult]:
        return [result for result in self.results if not result.committed]
