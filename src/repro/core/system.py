"""The DvPSystem façade: build sites, register partitioned items, run.

This is the library's main entry point::

    from repro.core import DvPSystem, SystemConfig, CounterDomain
    from repro.core import TransactionSpec, DecrementOp

    system = DvPSystem(SystemConfig(sites=["W", "X", "Y", "Z"]))
    system.add_item("flightA", CounterDomain(), split={"W": 25, "X": 25,
                                                       "Y": 25, "Z": 25})
    system.submit("W", TransactionSpec(ops=(DecrementOp("flightA", 3),)))
    system.run_for(100)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.cc import make_cc
from repro.core.domain import Domain
from repro.core.invariants import AuditReport, ConservationAuditor
from repro.core.migration import (
    MigrationController,
    ReshardInProgress,
    plan_moves,
)
from repro.core.partition import (
    PARTITIONERS,
    Directory,
    Router,
    make_partitioner,
)
from repro.core.policies import make_policy
from repro.core.recovery import RecoveryReport
from repro.core.site import DvPSite, SiteConfig, SiteDown
from repro.core.transactions import Transaction, TransactionSpec, TxnResult
from repro.net.link import LinkConfig
from repro.net.network import Network
from repro.obs.events import DirectoryEpoch, SiteDecommission, SiteJoin
from repro.net.outbox import BundlingConfig
from repro.net.sync import SynchronousNetwork
from repro.reads.views import ViewConfig, ViewService
from repro.sim.kernel import Simulator
from repro.sim.shard import ShardPlan, ShardedSimulator


@dataclass
class SystemConfig:
    """Everything needed to build a DvP system."""

    sites: list[str] = field(default_factory=lambda: ["W", "X", "Y", "Z"])
    seed: int = 0
    cc: str = "conc1"
    policy: str = "ask-all"
    policy_kwargs: dict = field(default_factory=dict)
    txn_timeout: float = 30.0
    retransmit_period: float = 5.0
    checkpoint_interval: int = 0
    request_retries: int = 0
    read_freeze: float | None = None
    vm_window: int | None = None
    link: LinkConfig = field(default_factory=LinkConfig)
    #: Conc2 requires the order-synchronous network; None = follow cc.
    synchronous: bool | None = None
    sync_delay: float = 1.0
    #: Transport bundling (repro.net.outbox): None = off, the seed
    #: behaviour. The synchronous network ignores it (it models a
    #: lossless ordered broadcast, there is nothing to coalesce).
    bundling: BundlingConfig | None = None
    #: Suppress explicit acks covered by same-instant piggybacks; None
    #: follows ``bundling`` (on when bundling is on).
    coalesce_acks: bool | None = None
    #: Execute the simulation as this many site-group shards under
    #: conservative lookahead (repro.sim.shard; docs/PARALLEL.md).
    #: 1 = the classic single-queue kernel, byte-for-byte the seed
    #: behaviour. Requires a positive link delay lower bound.
    shards: int = 1
    #: Worker-lane count for the sharded kernel's deterministic
    #: schedule (shard i -> worker i % shard_workers). Any value yields
    #: the same trace fingerprint; it exists so tests can prove that.
    shard_workers: int = 1
    #: Placement function for the partition directory
    #: (repro.core.partition; docs/PARTITIONING.md). "all" = every site
    #: owns every item, byte-for-byte the seed behaviour.
    partitioner: str = "all"
    #: Owner-set size per item (None = all directory sites). Ignored by
    #: the "all" partitioner.
    replicas: int | None = None
    #: Bounded-staleness Π(b) read views (repro.reads; docs/READS.md).
    #: None = off, the classic fan-out-only read path — byte-for-byte
    #: the seed behaviour (old recorded artifacts carry no key and load
    #: with views off, replaying byte-for-byte).
    views: ViewConfig | None = None

    def __post_init__(self) -> None:
        if len(set(self.sites)) != len(self.sites):
            raise ValueError("site names must be unique")
        if not self.sites:
            raise ValueError("at least one site required")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        if self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; "
                f"choose from {sorted(PARTITIONERS)}")
        if self.replicas is not None and self.replicas < 1:
            raise ValueError("replicas must be >= 1 (or None)")


class DvPSystem:
    """A complete data-value-partitioned distributed database."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        use_sync = (self.config.synchronous
                    if self.config.synchronous is not None
                    else self.config.cc == "conc2")
        if self.config.shards > 1:
            # Lookahead = the least delay any cross-site message can
            # have. Injecting a link fault (or reconfiguring a link)
            # with a smaller base delay later raises LookaheadError at
            # the offending send — loud, never silently acausal.
            lookahead = (self.config.sync_delay if use_sync
                         else self.config.link.delay_lower_bound)
            if lookahead <= 0:
                raise ValueError(
                    "shards > 1 requires a positive link delay lower "
                    "bound (LinkConfig.base_delay) to derive the "
                    "conservative lookahead")
            plan = ShardPlan.round_robin(
                self.config.sites, self.config.shards, lookahead)
            self.sim: Simulator = ShardedSimulator(
                plan, self.config.seed,
                workers=self.config.shard_workers)
        else:
            self.sim = Simulator(self.config.seed)
        if use_sync:
            self.network: Network = SynchronousNetwork(
                self.sim, delay=self.config.sync_delay)
        else:
            self.network = Network(self.sim, self.config.link,
                                   bundling=self.config.bundling)
        self.cc = make_cc(self.config.cc)
        self.policy = make_policy(self.config.policy,
                                  **self.config.policy_kwargs)
        self.results: list[TxnResult] = []
        self._result_hooks: list[Callable[[TxnResult], None]] = []
        self.directory = Directory(
            make_partitioner(self.config.partitioner),
            self.config.sites, replicas=self.config.replicas)
        self.router = Router(self.directory)
        self._items: dict[str, Domain] = {}
        self._migration: MigrationController | None = None
        self.migrations: list[MigrationController] = []
        site_config = SiteConfig(
            txn_timeout=self.config.txn_timeout,
            retransmit_period=self.config.retransmit_period,
            checkpoint_interval=self.config.checkpoint_interval,
            request_retries=self.config.request_retries,
            read_freeze=self.config.read_freeze,
            vm_window=self.config.vm_window,
            coalesce_acks=(self.config.coalesce_acks
                           if self.config.coalesce_acks is not None
                           else self.config.bundling is not None))
        self._site_config = site_config
        self.sites: dict[str, DvPSite] = {}
        for rank, name in enumerate(self.config.sites):
            # Built in the site's own scheduling context so anything a
            # site arms at construction lands on its shard (a no-op on
            # the single-queue kernel).
            self.sites[name] = self.sim.call_in_site(
                name,
                lambda name=name, rank=rank: DvPSite(
                    name, rank, self.sim, self.network, self.cc,
                    self.policy, site_config,
                    on_result=self._record_result))
        self._next_rank = len(self.config.sites)
        # The auditor hooks into the sites' fragment stores and Vm
        # lifecycles (incremental accounting), so it attaches after
        # the sites exist.
        self.auditor = ConservationAuditor(self)
        for site in self.sites.values():
            site.router = self.router
        #: Bounded-staleness view service (docs/READS.md). Attaches
        #: after the auditor: its adopt_site() replaces each site's
        #: observer slot with a fanout keeping the auditor first.
        self.views: ViewService | None = None
        if self.config.views is not None:
            self.views = ViewService(self, self.config.views)

    # -- item registration --------------------------------------------------

    def add_item(self, item: str, domain: Domain,
                 split: dict[str, Any] | None = None,
                 total: Any = None) -> None:
        """Register a partitioned item with its initial quotas.

        Either give an explicit *split* (site -> initial fragment) or a
        *total* to divide as evenly as the domain allows (counters
        only) across the item's directory owners. Sites absent from
        the split start with the zero value — every site registers the
        item (zero fragments are combine identities, so non-owners are
        conservation-neutral and can still absorb stray Vm).
        """
        if split is None:
            if total is None:
                raise ValueError("provide either split or total")
            split = self._even_split(domain, total,
                                     self.directory.owners(item))
        for name in split:
            if name not in self.sites:
                raise KeyError(f"unknown site {name!r} in split")
        for name, site in self.sites.items():
            initial = split.get(name, domain.zero())
            site.fragments.register(item, domain, initial)
        self._items[item] = domain
        self.auditor.register_item(item, domain,
                                   domain.pi(split.values()))

    def _even_split(self, domain: Domain, total: Any,
                    names: "tuple[str, ...] | list[str]"
                    ) -> dict[str, Any]:
        if not isinstance(total, int):
            raise ValueError("even split requires an integer total")
        names = list(names)
        base, leftover = divmod(total, len(names))
        return {name: base + (1 if index < leftover else 0)
                for index, name in enumerate(names)}

    # -- elastic topology (docs/PARTITIONING.md) ----------------------------

    @property
    def reshard_in_progress(self) -> bool:
        return self._migration is not None and not self._migration.done

    def _check_reshardable(self) -> None:
        if self.reshard_in_progress:
            raise ReshardInProgress(
                "a topology change is already migrating; wait for it "
                "to drain before requesting another")

    def _emit_epoch(self, reason: str, site: str = "") -> None:
        if self.sim.obs.enabled:
            self.sim.obs.emit(DirectoryEpoch(
                t=self.sim.now, epoch=self.directory.epoch,
                reason=reason, site=site,
                sites=len(self.directory.sites)))

    def _snapshot_owners(self) -> dict[str, tuple[str, ...]]:
        return {item: self.directory.owners(item) for item in self._items}

    def _start_migration(self, old: dict[str, tuple[str, ...]],
                         drain: str | None = None) -> MigrationController:
        new = self._snapshot_owners()
        controller = MigrationController(
            self, plan_moves(old, new), self.directory.epoch,
            drain=drain)
        self._migration = controller
        self.migrations.append(controller)
        controller.start()
        return controller

    def _migration_finished(self, controller: MigrationController) -> None:
        if self._migration is controller:
            self._migration = None

    def add_site(self, name: str) -> DvPSite:
        """Join *name* to the running topology.

        The new site starts with zero fragments of every known item
        (conservation-neutral), the directory epoch bumps, and a
        migration controller moves whatever value the new placement
        assigns to the joiner — as ordinary transfer Vm, audited like
        any other redistribution. Call from setup code or a global
        (barrier) event.
        """
        if name in self.sites:
            raise ValueError(f"site {name!r} already exists")
        self._check_reshardable()
        self.sim.adopt_site(name)
        rank = self._next_rank
        self._next_rank += 1
        site = self.sim.call_in_site(
            name,
            lambda: DvPSite(name, rank, self.sim, self.network, self.cc,
                            self.policy, self._site_config,
                            on_result=self._record_result))
        self.sites[name] = site
        site.observer = self.auditor
        site.fragments.observer = self.auditor
        site.router = self.router
        if self.views is not None:
            self.views.adopt_site(site)
        for item, domain in self._items.items():
            self.sim.call_in_site(
                name, lambda item=item, domain=domain:
                site.fragments.register(item, domain, domain.zero()))
        old = self._snapshot_owners()
        self.directory.add_site(name)
        if self.sim.obs.enabled:
            self.sim.obs.emit(SiteJoin(t=self.sim.now, site=name,
                                       epoch=self.directory.epoch))
        self._emit_epoch("add-site", name)
        self._start_migration(old)
        return site

    def remove_site(self, name: str) -> MigrationController:
        """Decommission *name*: remove it from the directory and drain
        its fragments to the surviving owners.

        The site object stays alive and network-registered until every
        Vm it ever sent is acknowledged — removal changes *placement*,
        never destroys state. A crashed site cannot be removed (its
        stable log still holds fragment value); recover it first.
        """
        if name not in self.sites:
            raise KeyError(f"unknown site {name!r}")
        site = self.sites[name]
        if not site.alive:
            raise SiteDown(
                f"site {name!r} is down; its stable fragments must be "
                "recovered before they can be migrated away")
        if site.decommissioned:
            raise ValueError(f"site {name!r} is already decommissioned")
        if name not in self.directory.sites:
            raise ValueError(f"site {name!r} is not in the directory")
        self._check_reshardable()
        old = self._snapshot_owners()
        # The leaver drains everything it holds, owner or not —
        # plan_moves treats it as an old owner of every item, and the
        # controller's drain rescan catches value arriving later.
        for item in old:
            if name not in old[item]:
                old[item] = old[item] + (name,)
        self.directory.remove_site(name)
        site.decommissioned = True
        for other in self.sites.values():
            if other is not site:
                other.demand.forget_peer(name)
        if self.sim.obs.enabled:
            self.sim.obs.emit(SiteDecommission(
                t=self.sim.now, site=name, epoch=self.directory.epoch))
        self._emit_epoch("remove-site", name)
        return self._start_migration(old, drain=name)

    def reshard(self, replicas: int | None) -> MigrationController:
        """Change the per-item owner-set size and migrate accordingly."""
        self._check_reshardable()
        old = self._snapshot_owners()
        self.directory.set_replicas(replicas)
        self._emit_epoch("reshard")
        return self._start_migration(old)

    # -- transactions -------------------------------------------------------

    def submit(self, site: str, spec: TransactionSpec,
               on_done: Callable[[TxnResult], None] | None = None
               ) -> Transaction:
        return self.sites[site].submit(spec, on_done)

    def _record_result(self, result: TxnResult) -> None:
        if result.committed and result.read_values:
            # Sample, at the commit instant, how much of each read item
            # was still in transmission: the read protocol's inherent
            # blind spot (Section 3's N_M). The serializability checker
            # uses this as the permitted under-report bound. The
            # auditor's incremental books make this an O(1) lookup per
            # item instead of a full sender × receiver channel scan.
            for item in result.read_values:
                result.inflight_at_commit[item] = \
                    self.auditor.live_vm_total(item)
        if self.views is not None and result.committed \
                and result.view_fallbacks:
            # Read-through: a view miss paid the fan-out; repair the
            # reader's cache from the authority tier so the next
            # bounded-staleness read of these items is O(1).
            self.views.fill_through(result.site, result.view_fallbacks)
        self.results.append(result)
        self.auditor.on_result(result)
        for hook in self._result_hooks:
            hook(result)

    def add_result_hook(self, hook: Callable[[TxnResult], None]) -> None:
        """Observe every transaction outcome (used by metrics)."""
        self._result_hooks.append(hook)

    # -- running ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run_for(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)

    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def drain(self, max_steps: int = 1_000_000) -> None:
        """Run until no events remain (retransmit timers stop when all
        Vm are acknowledged, so quiescent systems do drain).

        Draining is terminal, so the view refresh chain — which would
        otherwise tick forever — is stopped first.
        """
        if self.views is not None:
            self.views.stop()
        self.sim.run(max_steps=max_steps)

    # -- failure injection ----------------------------------------------------

    def crash(self, site: str) -> None:
        # call_in_site: crash/recover arm site-owned timers (recovery
        # retransmits, checkpoints), which must land on the site's
        # shard whether this is called from setup code or from an
        # event already running there.
        self.sim.call_in_site(site, self.sites[site].crash)

    def recover(self, site: str) -> RecoveryReport:
        return self.sim.call_in_site(site, self.sites[site].recover)

    # -- observation ------------------------------------------------------------

    def fragment_values(self, item: str) -> dict[str, Any]:
        return {name: site.fragments.value(item)
                for name, site in self.sites.items()
                if site.fragments.knows(item)}

    def audit(self) -> list[AuditReport]:
        return self.auditor.check_all()

    def committed(self) -> list[TxnResult]:
        return [result for result in self.results if result.committed]

    def aborted(self) -> list[TxnResult]:
        return [result for result in self.results if not result.committed]
