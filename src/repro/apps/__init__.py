"""Application façades over the DvP core.

The paper motivates DvP with three applications (airline reservation,
banking, inventory control). These classes give each a domain-shaped
API over :class:`~repro.core.system.DvPSystem`, so application code
reads like the application, not like the protocol:

    bank = Bank(system)
    bank.open_account("alice", {"downtown": 40_000})
    bank.withdraw("airport", "alice", 5_000, on_done=...)
"""

from repro.apps.airline import ReservationSystem
from repro.apps.bank import Bank
from repro.apps.bounded import BoundedQuantity
from repro.apps.inventory import InventoryControl

__all__ = ["Bank", "BoundedQuantity", "InventoryControl",
           "ReservationSystem"]
