"""Inventory-control façade: quantity-on-hand as aggregate fields.

Section 8's hot-spot application: very frequently updated quantities
whose updates are all increments/decrements. DvP spreads each SKU's
stock across warehouses so sales commit locally.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    ReadViewOp,
    TransactionSpec,
    TxnResult,
)

Done = Callable[[TxnResult], None] | None


class InventoryControl:
    """SKU stock levels partitioned across warehouses.

    *via* redirects submissions through any ``submit(site, spec,
    on_done)`` target (e.g. a serving front-end); default is direct
    submission to the system.
    """

    def __init__(self, system: DvPSystem, via=None) -> None:
        self.system = system
        self._target = via if via is not None else system
        self._skus: set[str] = set()

    @property
    def skus(self) -> set[str]:
        return set(self._skus)

    def add_sku(self, sku: str, units: int,
                stocking: dict[str, int] | None = None) -> None:
        if sku in self._skus:
            raise ValueError(f"sku {sku!r} already exists")
        self.system.add_item(sku, CounterDomain(),
                             split=stocking,
                             total=None if stocking else units)
        self._skus.add(sku)

    def _check(self, sku: str) -> None:
        if sku not in self._skus:
            raise KeyError(f"unknown sku {sku!r}")

    def sell(self, warehouse: str, sku: str, units: int,
             on_done: Done = None, work: float = 0.0) -> None:
        self._check(sku)
        self._target.submit(warehouse, TransactionSpec(
            ops=(DecrementOp(sku, units),), label=f"sell:{sku}",
            work=work), on_done)

    def restock(self, warehouse: str, sku: str, units: int,
                on_done: Done = None, work: float = 0.0) -> None:
        self._check(sku)
        self._target.submit(warehouse, TransactionSpec(
            ops=(IncrementOp(sku, units),), label=f"restock:{sku}",
            work=work), on_done)

    def stock_check(self, warehouse: str, sku: str,
                    on_done: Done = None, work: float = 0.0) -> None:
        """Exact global quantity on hand (the expensive read)."""
        self._check(sku)
        self._target.submit(warehouse, TransactionSpec(
            ops=(ReadFullOp(sku),), label=f"stock-check:{sku}",
            work=work), on_done)

    def stock_estimate(self, warehouse: str, sku: str,
                       bound: float | None = None,
                       on_done: Done = None, work: float = 0.0) -> None:
        """Bounded-staleness quantity on hand — O(1) when the
        warehouse's Π(b) view cache certifies *bound* (docs/READS.md)."""
        self._check(sku)
        self._target.submit(warehouse, TransactionSpec(
            ops=(ReadViewOp(sku, bound=bound),),
            label=f"stock-estimate:{sku}", work=work), on_done)

    def on_hand_locally(self, warehouse: str, sku: str) -> Any:
        self._check(sku)
        return self.system.sites[warehouse].fragments.value(sku)
