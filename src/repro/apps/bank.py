"""Banking façade: value-partitioned account balances.

The paper's banking points, made API: deposits are always safe ("the
person wants to deposit some money without caring about the net
balance"), withdrawals are irreversible and therefore need the strict
protocol, audits are exact global reads.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.domain import MoneyDomain
from repro.core.system import DvPSystem
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    ReadViewOp,
    TransactionSpec,
    TransferOp,
    TxnResult,
)

Done = Callable[[TxnResult], None] | None


class Bank:
    """Accounts whose balances are split across branches.

    *via* redirects submissions through any ``submit(site, spec,
    on_done)`` target — pass a serving front-end to route app-level
    traffic (admission control included); default is direct submission.
    """

    def __init__(self, system: DvPSystem, via=None) -> None:
        self.system = system
        self._target = via if via is not None else system
        self._accounts: set[str] = set()

    @property
    def accounts(self) -> set[str]:
        return set(self._accounts)

    def open_account(self, account: str,
                     branch_balances: dict[str, int]) -> None:
        """Open *account* with initial cents per branch."""
        if account in self._accounts:
            raise ValueError(f"account {account!r} already exists")
        self.system.add_item(account, MoneyDomain(),
                             split=branch_balances)
        self._accounts.add(account)

    def _check(self, account: str) -> None:
        if account not in self._accounts:
            raise KeyError(f"unknown account {account!r}")

    def deposit(self, branch: str, account: str, cents: int,
                on_done: Done = None, work: float = 0.0) -> None:
        """Always-safe: commits locally at any branch, any time."""
        self._check(account)
        self._target.submit(branch, TransactionSpec(
            ops=(IncrementOp(account, cents),),
            label=f"deposit:{account}", work=work), on_done)

    def withdraw(self, branch: str, account: str, cents: int,
                 on_done: Done = None, work: float = 0.0) -> None:
        """Irreversible disbursement: needs funds gathered locally."""
        self._check(account)
        self._target.submit(branch, TransactionSpec(
            ops=(DecrementOp(account, cents),),
            label=f"withdraw:{account}", work=work), on_done)

    def transfer(self, branch: str, payer: str, payee: str, cents: int,
                 on_done: Done = None, work: float = 0.0) -> None:
        """Move money between accounts, atomically, at one branch."""
        self._check(payer)
        self._check(payee)
        self._target.submit(branch, TransactionSpec(
            ops=(TransferOp(payer, payee, cents),),
            label=f"transfer:{payer}->{payee}", work=work), on_done)

    def audit_balance(self, branch: str, account: str,
                      on_done: Done = None, work: float = 0.0) -> None:
        """Exact balance: drains every branch's share to *branch*."""
        self._check(account)
        self._target.submit(branch, TransactionSpec(
            ops=(ReadFullOp(account),), label=f"audit:{account}",
            work=work), on_done)

    def estimate_balance(self, branch: str, account: str,
                         bound: float | None = None,
                         on_done: Done = None, work: float = 0.0) -> None:
        """Bounded-staleness balance (a statement, not a disbursement):
        O(1) when the branch's Π(b) view cache certifies *bound*, exact
        fan-out otherwise — see docs/READS.md."""
        self._check(account)
        self._target.submit(branch, TransactionSpec(
            ops=(ReadViewOp(account, bound=bound),),
            label=f"estimate:{account}", work=work), on_done)

    def branch_share(self, branch: str, account: str) -> Any:
        """The locally held portion of the balance (free to read)."""
        self._check(account)
        return self.system.sites[branch].fragments.value(account)
