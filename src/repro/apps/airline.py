"""Airline reservation façade (the paper's Section 3 system)."""

from __future__ import annotations

from typing import Any, Callable

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    ReadViewOp,
    TransactionSpec,
    TransferOp,
    TxnResult,
)

Done = Callable[[TxnResult], None] | None


class ReservationSystem:
    """Flights as value-partitioned seat counters.

    *via* redirects submissions through any ``submit(site, spec,
    on_done)`` target — pass a
    :class:`~repro.serving.frontend.ServingFrontend` to route app-level
    traffic through the serving tier (admission control included);
    default is direct submission to the system.
    """

    def __init__(self, system: DvPSystem, via=None) -> None:
        self.system = system
        self._target = via if via is not None else system
        self._flights: set[str] = set()

    @property
    def flights(self) -> set[str]:
        return set(self._flights)

    def add_flight(self, flight: str, seats: int,
                   quotas: dict[str, int] | None = None) -> None:
        """Open a flight with *seats* split across the sites."""
        if flight in self._flights:
            raise ValueError(f"flight {flight!r} already exists")
        if quotas is not None and sum(quotas.values()) != seats:
            raise ValueError("quotas must sum to the seat count")
        self.system.add_item(flight, CounterDomain(),
                             split=quotas, total=None if quotas else seats)
        self._flights.add(flight)

    def _check(self, flight: str) -> None:
        if flight not in self._flights:
            raise KeyError(f"unknown flight {flight!r}")

    def reserve(self, site: str, flight: str, seats: int,
                on_done: Done = None, work: float = 0.0) -> None:
        """Sell *seats* on *flight* at *site* (non-blocking: commits
        from the local quota, gathers via Vm, or aborts at timeout)."""
        self._check(flight)
        self._target.submit(site, TransactionSpec(
            ops=(DecrementOp(flight, seats),),
            label=f"reserve:{flight}", work=work), on_done)

    def cancel(self, site: str, flight: str, seats: int,
               on_done: Done = None, work: float = 0.0) -> None:
        """Return seats; always commits (increments need nothing)."""
        self._check(flight)
        self._target.submit(site, TransactionSpec(
            ops=(IncrementOp(flight, seats),),
            label=f"cancel:{flight}", work=work), on_done)

    def change_flight(self, site: str, from_flight: str, to_flight: str,
                      seats: int, on_done: Done = None,
                      work: float = 0.0) -> None:
        """Move a booking between flights (the paper's A -> B case).

        The *to* flight gains availability and the *from* flight loses
        it: the customer gives back from_flight seats and takes
        to_flight seats, so availability moves to_flight -> from_flight.
        """
        self._check(from_flight)
        self._check(to_flight)
        self._target.submit(site, TransactionSpec(
            ops=(TransferOp(to_flight, from_flight, seats),),
            label=f"change:{from_flight}->{to_flight}", work=work),
            on_done)

    def seats_available(self, site: str, flight: str,
                        on_done: Done = None, work: float = 0.0) -> None:
        """The exact N — the expensive global drain (Section 3)."""
        self._check(flight)
        self._target.submit(site, TransactionSpec(
            ops=(ReadFullOp(flight),), label=f"count:{flight}",
            work=work), on_done)

    def seats_estimate(self, site: str, flight: str,
                       bound: float | None = None,
                       on_done: Done = None, work: float = 0.0) -> None:
        """Bounded-staleness availability: O(1) when the site's Π(b)
        view cache can certify *bound* (docs/READS.md), exact fan-out
        otherwise. The answer on the committed result's
        ``view_reads[flight]`` certificate states how stale it is."""
        self._check(flight)
        self._target.submit(site, TransactionSpec(
            ops=(ReadViewOp(flight, bound=bound),),
            label=f"estimate:{flight}", work=work), on_done)

    def local_quota(self, site: str, flight: str) -> Any:
        """This site's fragment — a free lower bound on availability."""
        self._check(flight)
        return self.system.sites[site].fragments.value(flight)
