"""Two-sided bounded quantities via the free/used dual encoding.

O'Neil's escrow method (the paper's Section 8 comparator) supports
aggregates bounded on BOTH sides (a quantity that must stay within
[0, capacity]). Plain DvP counters only bound below: increments are
always effective, so nothing stops a counter exceeding a cap.

The dual encoding closes the gap with zero new protocol machinery:
represent the quantity as two partitioned items, ``<name>.used`` and
``<name>.free``, with the standing invariant

    Π(used) + Π(free) = capacity.

``acquire`` is a local TransferOp free → used: it is bounded below on
*free*, which is exactly "bounded above on *used* by capacity".
``release`` is the reverse transfer. Both are single-site partitionable
transactions — non-blocking, partition-tolerant, auditable — and the
capacity bound can never be violated, even transiently, because a
transfer conserves the pair by construction.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem
from repro.core.transactions import (
    ReadFullOp,
    TransactionSpec,
    TransferOp,
    TxnResult,
)

Done = Callable[[TxnResult], None] | None


class BoundedQuantity:
    """A [0, capacity]-bounded aggregate over a DvP system.

    Think connection slots, rate-limit tokens, or parking spaces:
    ``acquire`` takes capacity (fails if none is reachable), ``release``
    returns it, and the total in use can never exceed *capacity* nor
    drop below zero — enforced by the domain algebra, not by checks.
    """

    def __init__(self, system: DvPSystem, name: str, capacity: int,
                 used_split: dict[str, int] | None = None,
                 via=None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.system = system
        self._target = via if via is not None else system
        self.name = name
        self.capacity = capacity
        self.used_item = f"{name}.used"
        self.free_item = f"{name}.free"
        used_split = used_split or {}
        used_total = sum(used_split.values())
        if used_total > capacity:
            raise ValueError("initial usage exceeds capacity")
        domain = CounterDomain()
        system.add_item(self.used_item, domain, split=dict(used_split))
        # Whatever is not used starts as free, split evenly.
        system.add_item(self.free_item, domain,
                        total=capacity - used_total)

    # -- operations ----------------------------------------------------------

    def acquire(self, site: str, amount: int, on_done: Done = None,
                work: float = 0.0) -> None:
        """Claim *amount* of capacity at *site*; aborts if the free pool
        (reachable from here) cannot cover it."""
        self._target.submit(site, TransactionSpec(
            ops=(TransferOp(self.free_item, self.used_item, amount),),
            label=f"acquire:{self.name}", work=work), on_done)

    def release(self, site: str, amount: int, on_done: Done = None) -> None:
        """Return *amount*; aborts if this site cannot gather that much
        *used* (you cannot release what was never acquired)."""
        self._target.submit(site, TransactionSpec(
            ops=(TransferOp(self.used_item, self.free_item, amount),),
            label=f"release:{self.name}"), on_done)

    def utilization(self, site: str, on_done: Done = None) -> None:
        """Exact global usage: a full read of the *used* item."""
        self._target.submit(site, TransactionSpec(
            ops=(ReadFullOp(self.used_item),),
            label=f"utilization:{self.name}"), on_done)

    # -- observation ------------------------------------------------------------

    def local_free(self, site: str) -> Any:
        return self.system.sites[site].fragments.value(self.free_item)

    def local_used(self, site: str) -> Any:
        return self.system.sites[site].fragments.value(self.used_item)

    def audit(self) -> bool:
        """God's-eye check of the standing invariant."""
        used = self.system.auditor.check(self.used_item)
        free = self.system.auditor.check(self.free_item)
        total = self.system.auditor.expected(self.used_item) + \
            self.system.auditor.expected(self.free_item)
        return used.ok and free.ok and total == self.capacity
