"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The modern PEP 660 editable path needs the `wheel` package to build an
editable wheel; this offline environment lacks it, so setuptools'
classic `develop` command (driven through this file) is the fallback.
Configuration lives in pyproject.toml either way.
"""

from setuptools import setup

setup()
