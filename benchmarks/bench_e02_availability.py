"""Bench E2: regenerate the availability-during-partitions table.

See ``repro.harness.experiments.e02_availability`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e02_availability as experiment_module


def test_e2(experiment):
    table = experiment(experiment_module)
    rows = {(row[0], row[1]): row for row in table.rows}
    groupings = sorted({row[0] for row in table.rows})
    for groups in groupings:
        if groups == 1:
            continue
        # Every DvP group keeps committing; replicated designs starve
        # their worst group entirely.
        assert rows[(groups, "DvP")][3] >= 90.0
        assert rows[(groups, "quorum")][3] == 0.0
        assert rows[(groups, "primary-copy")][3] == 0.0
