"""Bench E3: regenerate the vm-guaranteed-delivery table.

See ``repro.harness.experiments.e03_vm_delivery`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e03_vm_delivery as experiment_module


def test_e3(experiment):
    table = experiment(experiment_module)
    for row in table.rows:
        conserved = row[-1]
        residual = row[-2]
        assert conserved == "yes"
        assert residual == 0
    # Retransmissions per Vm rise with the loss rate.
    retx = table.column("retx/Vm")
    assert retx[-1] >= retx[0]
