"""Commit-protocol showdown bench (PR 9; committed as
``BENCH_pr9.json``).

Three gates, one per claim the PR exists to produce:

1. **Paxos survives the coordinator** — in a 5-site
   crash-between-prepare-and-decide scenario, Paxos Commit's
   participants reach the decision (and release locks) while the
   coordinator is still dark, where 2PC's participant stays in doubt
   holding its lock for the whole outage.
2. **Path-sensitive local commit** — with an item consolidated away
   from the submitting sites, the Soethout fast path commits the
   provably-local subset (increments) without forwarding: local-commit
   counter > 0 and strictly fewer cross-site messages than the same
   workload with the fast path off, with the DvP auditor green and the
   same final value either way.
3. **DvP availability dominates** — on the E15 crash+partition window
   at matched load, DvP's in-window availability (overall and
   worst-group) is >= every coordinated baseline (2PC, Paxos Commit,
   quorum), strictly greater somewhere.

``--smoke`` runs the same gates with the E15 quick preset (10 sites
only) — the CI baselines job.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e15_commit.py [--out FILE]
    PYTHONPATH=src python benchmarks/bench_e15_commit.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import asdict

from repro.baselines.common import BaselineConfig
from repro.baselines.paxoscommit import PaxosCommitSystem
from repro.baselines.twopc import TwoPCSystem
from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    TransactionSpec,
    TransferOp,
)
from repro.harness.experiments.e15_commit import PROTOCOLS, Params, _run_one
from repro.hybrid import HybridSystem
from repro.net.link import LinkConfig

SITES_5 = ["S0", "S1", "S2", "S3", "S4"]

#: Coordinator crash instant: after the participant's prepare landed
#: (t=2 at delay 1) but before its vote reaches the coordinator (t=3).
CRASH_AT = 2.5
OUTAGE_END = 60.0


def _coordinated(cls):
    system = cls(list(SITES_5), seed=11,
                 link=LinkConfig(base_delay=1.0, jitter=0.0),
                 config=BaselineConfig(txn_timeout=8.0, retry_period=3.0))
    system.add_item("acct_0", "S0", 100)
    system.add_item("acct_1", "S1", 100)
    return system


def gate_coordinator_crash() -> tuple[list[str], dict]:
    """Gate 1: paxos decides through the crash; 2PC stays blocked."""
    failures: list[str] = []
    detail: dict = {}
    for name, cls in (("2pc", TwoPCSystem), ("paxos", PaxosCommitSystem)):
        system = _coordinated(cls)
        results = []
        system.sim.at(1.0, lambda s=system: s.submit(
            "S0", TransactionSpec(ops=(TransferOp("acct_0", "acct_1", 5),),
                                  label="xfer"),
            results.append))
        system.sim.at(CRASH_AT, lambda s=system: s.crash("S0"))
        system.sim.run_until(OUTAGE_END)  # S0 stays dark throughout
        blocked_during = list(system.currently_blocked())
        system.recover("S0")
        system.sim.run_until(OUTAGE_END + 120.0)
        detail[name] = {
            "blocked_during_outage": len(blocked_during),
            "blocked_after_recovery": len(system.currently_blocked()),
            "total_after": system.total_value(),
        }
        if name == "paxos":
            if blocked_during:
                failures.append(
                    f"paxos: participants still blocked during the "
                    f"coordinator outage: {blocked_during}")
            committed = any(record.record[0] == "participant-commit"
                            for record in system.sites["S1"].log.scan())
            detail[name]["participant_committed"] = committed
            if not committed:
                failures.append("paxos: S1 never learned the commit "
                                "during the outage")
            if system.currently_blocked():
                failures.append("paxos: still blocked after recovery")
            if system.total_value() != 200:
                failures.append(f"paxos: conservation broke: "
                                f"{system.total_value()} != 200")
        else:
            if not blocked_during:
                failures.append(
                    "2pc: participant was NOT blocked during the "
                    "coordinator outage — the contrast scenario is "
                    "broken")
    return failures, detail


def gate_path_sensitive() -> tuple[list[str], dict]:
    """Gate 2: the fast path commits locally and saves messages."""
    failures: list[str] = []
    observed: dict = {}
    finals = {}
    for path_sensitive in (False, True):
        system = DvPSystem(SystemConfig(
            sites=["S0", "S1", "S2", "S3"], seed=5, txn_timeout=10.0,
            link=LinkConfig(base_delay=1.0, jitter=0.0)))
        system.add_item("acct", CounterDomain(), total=400)
        hybrid = HybridSystem(system, path_sensitive=path_sensitive)
        system.sim.at(1.0, lambda h=hybrid: h.consolidate("acct", "S0"))
        # Start past the consolidation drain: the full read holds the
        # remote fragment locks until its release round, and a local
        # fast-path commit would collide with them where a forwarded
        # one would not — which is workload skew, not the comparison.
        time_at = 25.0
        for _round in range(10):
            for site in ("S1", "S2", "S3"):
                spec = TransactionSpec(ops=(IncrementOp("acct", 2),),
                                       label="inc")
                system.sim.at(time_at, lambda s=site, sp=spec,
                              h=hybrid: h.submit(s, sp, None))
                time_at += 1.0
            spec = TransactionSpec(ops=(DecrementOp("acct", 1),),
                                   label="dec")
            system.sim.at(time_at,
                          lambda sp=spec, h=hybrid: h.submit("S1", sp,
                                                             None))
            time_at += 1.0
        system.run_until(time_at + 60.0)
        system.auditor.assert_ok()
        key = "on" if path_sensitive else "off"
        observed[key] = {
            "local_commits": hybrid.local_commits,
            "forwards": hybrid.forwarded,
            "messages": system.network.total_sent,
        }
        finals[key] = sum(system.fragment_values("acct").values())
    if observed["on"]["local_commits"] <= 0:
        failures.append("fast path never fired: local_commits == 0")
    if not observed["on"]["messages"] < observed["off"]["messages"]:
        failures.append(
            f"no message saving: {observed['on']['messages']} (on) not "
            f"below {observed['off']['messages']} (off)")
    if not observed["on"]["forwards"] < observed["off"]["forwards"]:
        failures.append("fast path did not reduce forwards")
    if finals["on"] != finals["off"]:
        failures.append(f"final values diverge: {finals}")
    return failures, observed


def gate_availability(params: Params) -> tuple[list[str], list[dict]]:
    """Gate 3: DvP >= every coordinated protocol on the E15 window."""
    failures: list[str] = []
    rows: list[dict] = []
    for site_count in params.site_counts:
        stats = {}
        for protocol in PROTOCOLS:
            begin = time.perf_counter()
            stats[protocol] = _run_one(protocol, params, site_count)
            stats[protocol]["wall_s"] = round(
                time.perf_counter() - begin, 2)
            print(f"  n={site_count:3d} {protocol:<10s} "
                  f"avail={100 * stats[protocol]['availability']:5.1f}% "
                  f"worst={100 * stats[protocol]['worst_group']:5.1f}% "
                  f"p99={stats[protocol]['p99']:6.2f}", file=sys.stderr)
        rows.append({"sites": site_count, "stats": stats})
        dvp = stats["dvp"]
        strictly = False
        for rival in ("2pc", "paxos", "quorum"):
            for metric in ("availability", "worst_group"):
                if dvp[metric] < stats[rival][metric]:
                    failures.append(
                        f"n={site_count}: dvp {metric} "
                        f"{dvp[metric]:.3f} below {rival} "
                        f"{stats[rival][metric]:.3f}")
                if dvp[metric] > stats[rival][metric]:
                    strictly = True
        if not strictly:
            failures.append(
                f"n={site_count}: dvp never strictly dominates — the "
                f"fault window is inert")
    return failures, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_e15_commit.json")
    parser.add_argument("--smoke", action="store_true",
                        help="E15 quick preset (10 sites) — the CI "
                             "baselines job")
    args = parser.parse_args(argv)

    params = Params.quick() if args.smoke else Params()
    begin = time.perf_counter()
    print("gate 1: coordinator crash contrast", file=sys.stderr)
    crash_failures, crash_detail = gate_coordinator_crash()
    print("gate 2: path-sensitive local commit", file=sys.stderr)
    ps_failures, ps_detail = gate_path_sensitive()
    print(f"gate 3: E15 availability (sites={params.site_counts})",
          file=sys.stderr)
    avail_failures, avail_rows = gate_availability(params)
    wall = time.perf_counter() - begin

    failures = crash_failures + ps_failures + avail_failures
    payload = {
        "bench": "e15_commit",
        "smoke": args.smoke,
        "params": asdict(params),
        "wall_s": round(wall, 1),
        "coordinator_crash": crash_detail,
        "path_sensitive": ps_detail,
        "availability": avail_rows,
        "gates": [
            "paxos decides through coordinator crash; 2pc blocks",
            "path-sensitive local commits > 0 with fewer messages "
            "than always-forward",
            "dvp availability >= each coordinated baseline "
            "(strictly greater somewhere)",
        ],
        "gate_failures": failures,
    }
    path = pathlib.Path(args.out)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path} ({wall:.0f}s)", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
