"""Bench E6: regenerate the hot-spot-counter table.

See ``repro.harness.experiments.e06_hotspot`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e06_hotspot as experiment_module


def test_e6(experiment):
    table = experiment(experiment_module)
    rows = {(row[0], row[1]): row for row in table.rows}
    counts = sorted({row[0] for row in table.rows})
    largest = counts[-1]
    # The exclusive lock saturates; escrow and DvP keep scaling.
    assert rows[(largest, "escrow")][3] > rows[(largest, "lock")][3]
    assert rows[(largest, "DvP")][3] > rows[(largest, "lock")][3]
    # DvP commits locally: its p95 latency beats the central escrow's.
    assert rows[(largest, "DvP")][5] < rows[(largest, "escrow")][5]
