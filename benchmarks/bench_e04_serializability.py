"""Bench E4: regenerate the serializability table.

See ``repro.harness.experiments.e04_serializability`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e04_serializability as experiment_module


def test_e4(experiment):
    table = experiment(experiment_module)
    for row in table.rows:
        assert row[5] == 0  # read mismatches
        assert row[6] == 0  # negative dips
        assert row[7] == "yes"  # conserved
