"""Bench E1: regenerate the non-blocking-under-partitions table.

See ``repro.harness.experiments.e01_nonblocking`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e01_nonblocking as experiment_module


def test_e1(experiment):
    table = experiment(experiment_module)
    by_system = {}
    for row in table.rows:
        by_system.setdefault(row[1], []).append(row)
    # DvP decisions and lock holds stay bounded by the timeout...
    timeout = 15.0
    for row in by_system["DvP"]:
        assert row[4] <= timeout + 1e-6
        assert row[5] <= timeout + 1e-6
        assert row[6] == 0
    # ...while 2PC's worst lock hold grows with the partition length.
    holds = [row[5] for row in by_system["2PC"]]
    partitions = [row[0] for row in by_system["2PC"]]
    assert holds[-1] > partitions[-1] * 0.8
