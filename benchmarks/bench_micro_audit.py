"""Microbenchmark: conservation-audit cost on a loaded system.

Two measurements, emitted as ``BENCH_micro_audit.json``:

* ``live_vm_total_us`` / ``check_all_ms`` — cost of the auditor's
  per-item in-flight query and the all-items conservation check on a
  system with thousands of live Vm spread over every channel. This is
  the operation ``DvPSystem._record_result`` performs per read item on
  every committed read transaction.
* ``scenario_wall_s`` — wall-clock of a read-heavy inventory scenario
  (every committed stock-check samples the in-flight total), i.e. the
  end-to-end effect of the per-commit audit overhead.

The script runs unmodified against both the full-scan auditor (seed)
and the incremental auditor (``mode`` in the JSON records which one it
measured), so ``BENCH_seed.json`` vs ``BENCH_pr1.json`` is an
apples-to-apples comparison.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_micro_audit.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import random

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadLocalOp,
    TransactionSpec,
)
from repro.harness.runner import run_dvp_scenario
from repro.net.link import LinkConfig
from repro.workloads.base import WorkloadConfig, uniform_amount

SCALE = {
    "sites": 12,
    "items": 6,
    "vms_per_channel": 3,
    "query_rounds": 40,
}

SCENARIO = {
    "sites": 12,
    "items": 6,
    "arrival_rate": 0.5,
    "duration": 600.0,
    "total_per_item": 150,
}


class AuditHeavyWorkload:
    """Local stock-checks (each committed one samples the in-flight
    total per item read) over a pool small enough that sells keep
    requesting remote value, so Vm are genuinely in transit."""

    def __init__(self, items: list[str], config: WorkloadConfig) -> None:
        self.items = items
        self.config = config

    def make_spec(self, rng: random.Random,
                  site: str) -> TransactionSpec:
        roll = rng.random()
        first = rng.choice(self.items)
        if roll < 0.55:
            second = rng.choice(self.items)
            return TransactionSpec(
                ops=(ReadLocalOp(first), ReadLocalOp(second)),
                label="stock-check")
        units = uniform_amount(rng, self.config)
        if roll < 0.85:
            return TransactionSpec(ops=(DecrementOp(first, units),),
                                   label="sell")
        return TransactionSpec(ops=(IncrementOp(first, units),),
                               label="restock")


def build_loaded_system(sites: int, items: int,
                        vms_per_channel: int) -> DvPSystem:
    """A quiescent system with live Vm planted on every channel.

    Each site carves ``vms_per_channel`` one-unit Vm per item for every
    peer out of its own fragment (logged but never transmitted), so the
    channel state — and the conservation equation — matches a heavily
    loaded moment frozen in time.
    """
    names = [f"S{index}" for index in range(sites)]
    system = DvPSystem(SystemConfig(sites=names,
                                    link=LinkConfig(base_delay=1.0)))
    item_names = [f"item{index}" for index in range(items)]
    per_site = (sites - 1) * vms_per_channel + 10
    for item in item_names:
        system.add_item(item, CounterDomain(), total=per_site * sites)
    from repro.storage.records import SetFragment, VmCreateRecord
    for site in system.sites.values():
        for dst in site.peers():
            for item in item_names:
                for _ in range(vms_per_channel):
                    value = site.fragments.value(item)
                    entry = site.vm.allocate_entry(dst, item, 1,
                                                   "transfer", "bench")
                    ts = site.clock.next()
                    lsn = site.log_append(VmCreateRecord(
                        txn_id="bench",
                        actions=(SetFragment(item, value - 1, ts=ts),),
                        messages=(entry,)))
                    site.apply_actions(
                        (SetFragment(item, value - 1, ts=ts),), lsn)
                    site.vm.register_created([entry], transmit=False)
    return system


def bench_queries(system: DvPSystem, rounds: int) -> dict:
    items = sorted(system.auditor._expected)
    start = time.perf_counter()
    for _ in range(rounds):
        for item in items:
            system.auditor.live_vm_total(item)
    elapsed = time.perf_counter() - start
    live_vm_us = 1e6 * elapsed / (rounds * len(items))

    start = time.perf_counter()
    for _ in range(rounds):
        reports = system.auditor.check_all()
    check_all_ms = 1e3 * (time.perf_counter() - start) / rounds
    assert all(report.ok for report in reports), "bench system not conserved"
    return {"live_vm_total_us": round(live_vm_us, 3),
            "check_all_ms": round(check_all_ms, 3)}


def bench_scenario() -> dict:
    config = WorkloadConfig(
        arrival_rate=SCENARIO["arrival_rate"],
        duration=SCENARIO["duration"])
    items = [f"item{index}" for index in range(SCENARIO["items"])]
    start = time.perf_counter()
    result = run_dvp_scenario(
        SystemConfig(sites=[f"S{index}"
                            for index in range(SCENARIO["sites"])],
                     seed=7, link=LinkConfig(base_delay=1.0)),
        {item: (CounterDomain(), SCENARIO["total_per_item"])
         for item in items},
        AuditHeavyWorkload(items, config), config)
    wall = time.perf_counter() - start
    assert result.conservation_ok, "scenario violated conservation"
    reads = sum(1 for r in result.system.committed() if r.read_values)
    return {"scenario_wall_s": round(wall, 3),
            "scenario_committed": len(result.system.committed()),
            "scenario_reads": reads}


def run_bench(scale: dict | None = None) -> dict:
    scale = scale or SCALE
    system = build_loaded_system(scale["sites"], scale["items"],
                                 scale["vms_per_channel"])
    mode = ("incremental"
            if hasattr(system.auditor, "verify_full") else "scan")
    payload = {"bench": "micro_audit", "mode": mode,
               "scale": dict(scale), "scenario": dict(SCENARIO)}
    payload.update(bench_queries(system, scale["query_rounds"]))
    payload.update(bench_scenario())
    return payload


def test_micro_audit_smoke():
    """CI smoke: tiny scale, asserts conservation holds throughout."""
    payload = run_bench({"sites": 4, "items": 2, "vms_per_channel": 1,
                         "query_rounds": 2})
    assert payload["live_vm_total_us"] > 0
    assert payload["scenario_committed"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_micro_audit.json")
    args = parser.parse_args(argv)
    payload = run_bench()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
