"""Microbenchmark: transport bundling + ack coalescing (PR 5).

The bundled transport (``repro.net.outbox``) coalesces every payload a
site emits toward one peer in the same virtual instant — plus a
``flush_delay`` window after it — into a single :class:`BundleEnvelope`
with one fate draw and one delivery event, and the Vm layer suppresses
explicit acks that a same-instant data message already piggybacks. This
bench puts numbers on both sides of that change, emitted as
``BENCH_micro_net.json`` (committed as ``BENCH_pr5.json``):

* ``off`` / ``bundled`` — the same fanned-transfer scenario (4 sites,
  duration 1500, seed 11) with bundling disabled vs. enabled
  (``flush_delay=2.0``): real envelopes sent (``net.sent``), kernel
  events executed, wall time, acks sent/suppressed. The workload is
  conflict-free by construction, so the runs must agree *exactly* on
  decided/committed counts — bundling may only change the transport,
  never the outcome — and every run must end ``verify_full()`` green
  with the O(1) channel accounting matching a full scan.
* ``audit_scenario`` — an unmodified re-run of
  ``bench_micro_audit.bench_scenario`` with bundling off, compared
  against the number recorded in ``BENCH_pr3.json``: the
  zero-cost-when-disabled gate (<= 5%, enforced by ``main``), the same
  rule the obs layer follows.

Every loop is timed best-of-``REPEATS`` after a warmup run: on a noisy
host the minimum is the defensible estimate of the code's cost (GC
scheduling and CPU contention only ever add time).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_micro_net.py [--out FILE]
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import random
import sys
import time

from bench_micro_audit import bench_scenario as audit_scenario

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import TransactionSpec, TransferOp
from repro.metrics.collector import Collector
from repro.net.link import LinkConfig
from repro.net.outbox import BundlingConfig
from repro.workloads.base import WorkloadConfig, WorkloadDriver

SCENARIO = {
    "sites": ["W", "X", "Y", "Z"],
    "arrival_rate": 0.4,
    "duration": 1500.0,
    "settle": 60.0,
    "seed": 11,
    "ops_per_txn": 5,
    "src_items": 64,
    "sink_items": 64,
    "initial_per_peer": 50,
    "flush_delay": 2.0,
    "txn_timeout": 15.0,
    "retransmit_period": 12.0,
}

#: Best-of-N timing; the loops are deterministic so the spread is pure
#: host noise.
REPEATS = 3

#: Acceptance gates (ISSUE 5): bundling-on must cut real envelopes by
#: >= 30% and kernel wall time by >= 15% vs. bundling-off; the
#: bundling-off audit scenario may regress <= 5% vs. BENCH_pr3.
MIN_MESSAGE_CUT = 0.30
MIN_WALL_CUT = 0.15
MAX_DISABLED_OVERHEAD = 0.05


class FannedTransfers:
    """Conflict-free multi-op transfers that fan value across peers.

    Each arrival at site S picks one random peer P and issues
    ``ops_per_txn`` transfers ``acct_S_i -> sink_P_i`` using
    consecutive item indices from a per-site cycling counter. The
    source items hold funds only at S's *peers* (S itself starts at
    zero), so every decrement triggers the ask-all quota protocol and
    real cross-site Vm traffic — the transport-heavy shape bundling is
    for, with several same-instant messages per peer per commit.

    Consecutive indices keep concurrently-running transactions at a
    site on disjoint items, and locks are per-site, so there are no
    lock conflicts *by construction*: decided == committed becomes a
    property of the workload rather than of event timing. That is what
    lets the bench demand bit-identical outcome counts across transport
    modes whose schedules differ.
    """

    def __init__(self, sites: list[str], n_src: int, n_sink: int,
                 ops_per_txn: int) -> None:
        self.sites = sites
        self.n_src = n_src
        self.n_sink = n_sink
        self.ops = ops_per_txn
        self._peers = {site: [peer for peer in sites if peer != site]
                       for site in sites}
        self._next = {site: 0 for site in sites}

    def make_spec(self, rng: random.Random, site: str) -> TransactionSpec:
        other = rng.choice(self._peers[site])
        base = self._next[site]
        self._next[site] = base + self.ops
        ops = tuple(
            TransferOp(f"acct_{site}_{(base + j) % self.n_src}",
                       f"sink_{other}_{(base + j) % self.n_sink}",
                       rng.randint(1, 4))
            for j in range(self.ops))
        return TransactionSpec(ops=ops, label="fanned-transfer")


def run_mode(scenario: dict, bundled: bool) -> dict:
    """One fanned-transfer run; returns wall time and evidence."""
    # Earlier runs leave cyclic garbage (site <-> network <-> sim);
    # collect it now so its collection isn't billed to this run.
    gc.collect()
    sites = list(scenario["sites"])
    bundling = (BundlingConfig(flush_delay=scenario["flush_delay"])
                if bundled else None)
    system = DvPSystem(SystemConfig(
        sites=sites, seed=scenario["seed"],
        txn_timeout=scenario["txn_timeout"],
        retransmit_period=scenario["retransmit_period"],
        link=LinkConfig(base_delay=2.0, jitter=1.0),
        bundling=bundling))
    source = FannedTransfers(sites, scenario["src_items"],
                             scenario["sink_items"],
                             scenario["ops_per_txn"])
    for site in sites:
        peer_split = {peer: scenario["initial_per_peer"]
                      for peer in sites if peer != site}
        for index in range(scenario["src_items"]):
            system.add_item(f"acct_{site}_{index}", CounterDomain(),
                            split=peer_split)
        for index in range(scenario["sink_items"]):
            system.add_item(f"sink_{site}_{index}", CounterDomain(),
                            split={name: 1 for name in sites})
    collector = Collector()
    driver = WorkloadDriver(
        system.sim, system, sites, source,
        WorkloadConfig(arrival_rate=scenario["arrival_rate"],
                       duration=scenario["duration"]), collector)
    driver.install()
    start = time.perf_counter()
    system.run_until(scenario["duration"])
    system.run_for(scenario["settle"])
    wall = time.perf_counter() - start
    reports = system.auditor.verify_full()
    bad = [report for report in reports if not report.ok]
    assert not bad, f"conservation violated: {bad}"
    for site in system.sites.values():
        assert site.vm.check_accounting()
    metrics = system.sim.metrics
    aborted = len(system.aborted())
    assert aborted == 0, f"workload not conflict-free: {aborted} aborts"
    return {
        "wall_s": wall,
        "decided": len(system.results),
        "committed": len(system.committed()),
        "envelopes_sent": metrics.total("net.sent"),
        "envelopes_delivered": metrics.total("net.delivered"),
        "kernel_events": system.sim.steps,
        "retransmissions": metrics.total("vm.retransmissions"),
        "acks_sent": metrics.total("vm.acks"),
        "acks_suppressed": metrics.total("vm.acks_suppressed"),
    }


def bench_transport(scenario: dict, repeats: int) -> dict:
    run_mode(scenario, bundled=False)  # warmup
    runs = {mode: [run_mode(scenario, bundled=mode == "bundled")
                   for _ in range(repeats)]
            for mode in ("off", "bundled")}
    structural = ("decided", "committed", "envelopes_sent",
                  "kernel_events", "acks_sent", "acks_suppressed")
    for mode, results in runs.items():
        for key in structural:
            values = {run[key] for run in results}
            assert len(values) == 1, f"{mode} {key} diverged: {values}"
    off, bundled = runs["off"][0], runs["bundled"][0]
    assert off["decided"] == bundled["decided"], \
        f"decided diverged: {off['decided']} vs {bundled['decided']}"
    assert off["committed"] == bundled["committed"], \
        f"committed diverged: {off['committed']} vs {bundled['committed']}"
    assert off["acks_suppressed"] == 0
    payload = {}
    for mode, results in runs.items():
        summary = dict(results[0])
        summary["wall_s"] = round(min(run["wall_s"] for run in results), 3)
        payload[mode] = summary
    payload["message_cut"] = round(
        1.0 - bundled["envelopes_sent"] / off["envelopes_sent"], 3)
    payload["kernel_event_cut"] = round(
        1.0 - bundled["kernel_events"] / off["kernel_events"], 3)
    payload["wall_cut"] = round(
        1.0 - payload["bundled"]["wall_s"] / payload["off"]["wall_s"], 3)
    return payload


def run_bench(scenario: dict | None = None,
              repeats: int = REPEATS) -> dict:
    scenario = scenario or SCENARIO
    payload = {"bench": "micro_net", "scenario": dict(scenario),
               "repeats": repeats}
    payload.update(bench_transport(scenario, repeats))
    audits = []
    for _ in range(repeats):
        gc.collect()  # see run_mode: keep transport garbage off this clock
        audits.append(audit_scenario())
    best = min(audits, key=lambda run: run["scenario_wall_s"])
    payload["audit_scenario"] = best
    return payload


def check_against_baselines(payload: dict, pr3_path: str,
                            pr1_path: str = "BENCH_pr1.json") -> list[str]:
    """Gate the disabled path against BENCH_pr3 (PR1 noted for context)."""
    lines = []
    after = payload["audit_scenario"]["scenario_wall_s"]
    pr3 = pathlib.Path(pr3_path)
    if pr3.exists():
        before = json.loads(pr3.read_text())["audit_scenario"][
            "scenario_wall_s"]
        overhead = after / before - 1.0
        payload["disabled_overhead_vs_pr3"] = round(overhead, 3)
        verdict = "OK" if overhead <= MAX_DISABLED_OVERHEAD else "EXCEEDED"
        lines.append(f"disabled-path overhead vs {pr3.name}: "
                     f"{after:.3f}s / {before:.3f}s = {overhead:+.1%} "
                     f"(budget {MAX_DISABLED_OVERHEAD:.0%}) {verdict}")
    pr1 = pathlib.Path(pr1_path)
    if pr1.exists():
        before = json.loads(pr1.read_text())["micro_audit"][
            "scenario_wall_s"]
        payload["disabled_overhead_vs_pr1"] = round(after / before - 1.0, 3)
        lines.append(f"disabled-path overhead vs {pr1.name}: "
                     f"{after:.3f}s / {before:.3f}s = "
                     f"{payload['disabled_overhead_vs_pr1']:+.1%} (context)")
    return lines


def test_micro_net_smoke():
    """CI smoke: tiny scenario, both modes, structural assertions only
    (wall-clock gates live in ``main`` — CI boxes are too noisy)."""
    payload = run_bench({**SCENARIO, "arrival_rate": 0.3,
                         "duration": 120.0, "settle": 40.0,
                         "src_items": 32, "sink_items": 32}, repeats=1)
    assert payload["off"]["decided"] > 0
    assert payload["off"]["committed"] == payload["bundled"]["committed"]
    assert payload["bundled"]["envelopes_sent"] \
        < payload["off"]["envelopes_sent"]
    assert payload["bundled"]["kernel_events"] \
        < payload["off"]["kernel_events"]
    assert payload["bundled"]["acks_suppressed"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_micro_net.json")
    parser.add_argument("--baseline", default="BENCH_pr3.json",
                        help="prior bench JSON to gate the disabled "
                             "path against (default BENCH_pr3.json)")
    args = parser.parse_args(argv)
    payload = run_bench()
    lines = check_against_baselines(payload, args.baseline)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    for line in lines:
        print(line)
    failed = False
    if payload["message_cut"] < MIN_MESSAGE_CUT:
        print(f"message cut {payload['message_cut']:.1%} "
              f"below gate {MIN_MESSAGE_CUT:.0%}")
        failed = True
    if payload["wall_cut"] < MIN_WALL_CUT:
        print(f"wall cut {payload['wall_cut']:.1%} "
              f"below gate {MIN_WALL_CUT:.0%}")
        failed = True
    overhead = payload.get("disabled_overhead_vs_pr3")
    if overhead is not None and overhead > MAX_DISABLED_OVERHEAD:
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
