"""Bench: the rebalance-policy axis of E6 — does aiming the shipment
budget beat spraying it?

Runs the three ``_run_rebalance`` cells of
:mod:`repro.harness.experiments.e06_hotspot` through the cached
parallel harness (:mod:`repro.harness.parallel`) and records the
hot-spot commit rates side by side, emitted as
``BENCH_e06_rebalance.json`` (committed as ``BENCH_pr4.json``). Every
policy gets an identical shipment budget (same daemon period and
``max_ship``), so the deltas measure placement quality alone:

* ``demand_weighted_delta`` — commit-rate gain of ``demand-weighted``
  over ``static-rr``;
* ``pull_delta`` — commit-rate gain of ``pull`` over ``static-rr``.

``main`` gates on the demand-aware side winning: the best of the two
demand-aware policies must out-commit ``static-rr``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e06_rebalance.py \
        [--out FILE] [--jobs N] [--cache-dir DIR | --no-cache]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness.experiments import e06_hotspot
from repro.harness.parallel import (
    GridEvaluator,
    ResultCache,
    evaluate_cells,
)

POLICIES = ("static-rr", "demand-weighted", "pull")


def run_bench(params: "e06_hotspot.Params | None" = None,
              jobs: int = 1,
              cache: ResultCache | None = None) -> dict:
    params = params or e06_hotspot.Params()
    evaluator = GridEvaluator(jobs=jobs, cache=cache)
    cells = [("_run_rebalance", {"params": params, "policy": policy})
             for policy in POLICIES]
    results = evaluate_cells(e06_hotspot.EXPERIMENT, cells, evaluator)
    by_policy = {policy: stats
                 for policy, stats in zip(POLICIES, results)}
    static = by_policy["static-rr"]["commit_rate"]
    payload = {
        "bench": "e06_rebalance",
        "budget": {"period": params.rebalance_period,
                   "max_ship": params.rebalance_max_ship},
        "policies": by_policy,
        "demand_weighted_delta": round(
            by_policy["demand-weighted"]["commit_rate"] - static, 4),
        "pull_delta": round(by_policy["pull"]["commit_rate"] - static, 4),
        "cells_cached": evaluator.cache_hits,
        "cells_computed": evaluator.computed,
    }
    payload["demand_aware_wins"] = max(
        payload["demand_weighted_delta"], payload["pull_delta"]) > 0
    return payload


def test_e06_rebalance_smoke():
    """CI smoke: full cells (they are cheap — a few hundred txns) and
    the headline claim: a demand-aware policy beats static-rr at an
    equal shipment budget."""
    payload = run_bench()
    for policy in POLICIES:
        stats = payload["policies"][policy]
        assert stats["decided"] > 0
        assert 0.0 < stats["commit_rate"] <= 1.0
    assert payload["demand_aware_wins"], payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_e06_rebalance.json")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=".repro-cache")
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args(argv)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    payload = run_bench(jobs=args.jobs, cache=cache)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not payload["demand_aware_wins"]:
        print("demand-aware policies did not beat static-rr",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
