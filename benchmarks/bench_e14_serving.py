"""Serving-knee bench: offered-load sweep across routing/admission
policies (PR 8; committed as ``BENCH_pr8.json``).

Runs the E14 grid (16 and 64 sites on the sharded kernel, open-loop
arrivals, conc2 locking) and gates on the three phenomena the serving
front-end exists to produce:

1. **Saturation knee** — ``random`` and ``lq-unbounded`` must both
   reach a knee inside the swept range (p99 above 2.5x their own
   unloaded tail, or >5% shed): the sweep really crosses saturation.
2. **Routing wins** — at the headline 16-site grid, an informed
   policy (``least-queue`` or ``locality``) holds a strictly lower
   p99 commit latency than ``random`` at every swept rate from 80% of
   random's knee load upward; at every site count the same holds
   strictly past the knee.
3. **Admission bounds the tail** — past the unbounded policy's knee,
   bounded least-queue holds a strictly lower p99 than the identical
   router with admission off, and does it by shedding (shed > 0)
   while the unbounded queue never sheds — bounded latency bought
   with refusals, not magic.

``--smoke`` runs the quick preset (16 sites, 3 rates) and gates only
on the top-rate orderings — the CI serving job.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e14_serving.py [--out FILE]
    PYTHONPATH=src python benchmarks/bench_e14_serving.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import asdict

from repro.harness.experiments.e14_serving import (
    POLICIES,
    Params,
    _run_one,
    knee_rate,
)

#: The headline grid for the routing-domination gate: small enough
#: that locality's hot-owner concentration never self-saturates, so
#: the comparison isolates routing policy, not item skew.
HEADLINE_SITES = 16

#: Fraction of random's knee load from which an informed policy must
#: already dominate (the "at >=80% of knee load" acceptance bound).
KNEE_FRACTION = 0.8


def sweep(params: Params) -> list[dict]:
    """Run the grid; one dict per (sites, policy) with its rate rows."""
    sweeps = []
    for sites_n in params.site_counts:
        for label, _router, _admit in POLICIES:
            rows = []
            for rate in params.rates:
                begin = time.perf_counter()
                offered, commit, abort, shed, p50, p99 = _run_one(
                    params, sites_n, label, rate)
                rows.append({
                    "rate": rate, "offered": offered,
                    "commit_pct": round(commit, 2),
                    "abort_pct": round(abort, 2),
                    "shed_pct": round(shed, 2),
                    "p50": round(p50, 3), "p99": round(p99, 3),
                    "wall_s": round(time.perf_counter() - begin, 2),
                })
                print(f"  n={sites_n:3d} {label:<12s} rate={rate:<4g} "
                      f"shed={shed:5.1f}% p99={p99:7.2f}",
                      file=sys.stderr)
            knee = knee_rate([row["rate"] for row in rows],
                             [row["p99"] for row in rows],
                             [row["shed_pct"] / 100.0 for row in rows])
            sweeps.append({"sites": sites_n, "policy": label,
                           "knee": knee, "rows": rows})
    return sweeps


def _series(sweeps: list[dict], sites: int, policy: str) -> dict:
    for entry in sweeps:
        if entry["sites"] == sites and entry["policy"] == policy:
            return entry
    raise KeyError((sites, policy))


def check_gates(sweeps: list[dict], params: Params) -> list[str]:
    failures = []
    site_counts = sorted({entry["sites"] for entry in sweeps})

    for sites_n in site_counts:
        for policy in ("random", "lq-unbounded"):
            if _series(sweeps, sites_n, policy)["knee"] is None:
                failures.append(
                    f"n={sites_n} {policy}: no saturation knee inside "
                    f"rates {params.rates} — sweep never saturated")

    for sites_n in site_counts:
        random_series = _series(sweeps, sites_n, "random")
        knee = random_series["knee"]
        if knee is None:
            continue
        # From 80% of the knee at the headline grid; strictly past the
        # knee everywhere (64 sites: zipf hot-owners saturate locality
        # on absolute load before random's knee, so the routing win is
        # a past-the-knee claim there — the rows record both regimes).
        threshold = (KNEE_FRACTION * knee
                     if sites_n == HEADLINE_SITES else knee + 1e-9)
        for index, row in enumerate(random_series["rows"]):
            if row["rate"] < threshold:
                continue
            informed = min(
                _series(sweeps, sites_n, "least-queue")["rows"][index]["p99"],
                _series(sweeps, sites_n, "locality")["rows"][index]["p99"])
            if not informed < row["p99"]:
                failures.append(
                    f"n={sites_n} rate={row['rate']}: best informed "
                    f"p99 {informed} not below random {row['p99']}")

    for sites_n in site_counts:
        unbounded = _series(sweeps, sites_n, "lq-unbounded")
        knee = unbounded["knee"]
        if knee is None:
            continue
        for index, row in enumerate(unbounded["rows"]):
            if row["rate"] <= knee:
                continue
            bounded = _series(sweeps, sites_n, "least-queue")["rows"][index]
            if not bounded["p99"] < row["p99"]:
                failures.append(
                    f"n={sites_n} rate={row['rate']}: bounded p99 "
                    f"{bounded['p99']} not below unbounded {row['p99']}")
            if not bounded["shed_pct"] > 0:
                failures.append(
                    f"n={sites_n} rate={row['rate']}: bounded queue "
                    "past the knee shed nothing — depth bound inert")
            if row["shed_pct"] != 0:
                failures.append(
                    f"n={sites_n} rate={row['rate']}: unbounded queue "
                    f"shed {row['shed_pct']}% — admission not disabled")
    return failures


def check_smoke_gates(sweeps: list[dict], params: Params) -> list[str]:
    """Top-rate orderings only: fast, still catches a dead front-end."""
    failures = []
    top = len(params.rates) - 1
    sites_n = params.site_counts[0]
    random_p99 = _series(sweeps, sites_n, "random")["rows"][top]["p99"]
    locality = _series(sweeps, sites_n, "locality")["rows"][top]["p99"]
    bounded = _series(sweeps, sites_n, "least-queue")["rows"][top]
    unbounded = _series(sweeps, sites_n, "lq-unbounded")["rows"][top]
    if not locality < random_p99:
        failures.append(f"smoke: locality p99 {locality} not below "
                        f"random {random_p99} at the top rate")
    if not bounded["p99"] < unbounded["p99"]:
        failures.append(f"smoke: bounded p99 {bounded['p99']} not below "
                        f"unbounded {unbounded['p99']} at the top rate")
    if not bounded["shed_pct"] > 0:
        failures.append("smoke: bounded queue shed nothing at the "
                        "top rate")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_e14_serving.json")
    parser.add_argument("--smoke", action="store_true",
                        help="quick preset + top-rate gates only "
                             "(the CI serving job)")
    args = parser.parse_args(argv)

    params = Params.quick() if args.smoke else Params()
    cell_count = (len(params.site_counts) * len(POLICIES)
                  * len(params.rates))
    print(f"serving sweep: {cell_count} cells "
          f"(sites={params.site_counts}, rates={params.rates}):",
          file=sys.stderr)
    begin = time.perf_counter()
    sweeps = sweep(params)
    wall = time.perf_counter() - begin

    failures = (check_smoke_gates(sweeps, params) if args.smoke
                else check_gates(sweeps, params))

    payload = {
        "bench": "e14_serving",
        "smoke": args.smoke,
        "params": asdict(params),
        "wall_s": round(wall, 1),
        "sweeps": sweeps,
        "knees": {f"n={entry['sites']}:{entry['policy']}": entry["knee"]
                  for entry in sweeps},
        "gates": ("top-rate orderings (smoke)" if args.smoke else
                  ["knee exists for random and lq-unbounded",
                   f"informed p99 < random p99 from "
                   f"{KNEE_FRACTION:.0%} of knee (n={HEADLINE_SITES}) "
                   "and past the knee everywhere",
                   "bounded p99 < unbounded p99 past the knee, "
                   "with sheds"]),
        "gate_failures": failures,
    }
    path = pathlib.Path(args.out)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path} ({wall:.0f}s)", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
