"""Bench E9: regenerate the timeout-retry-frontier table.

See ``repro.harness.experiments.e09_timeouts`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e09_timeouts as experiment_module


def test_e9(experiment):
    table = experiment(experiment_module)
    for row in table.rows:
        timeout, _retries = row[0], row[1]
        assert row[4] <= timeout + 1e-6  # non-blocking bound holds
