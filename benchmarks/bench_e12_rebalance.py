"""Bench E12: regenerate the proactive-rebalancing ablation table.

See ``repro.harness.experiments.e12_rebalance`` for the experiment
design and EXPERIMENTS.md for the recorded comparison.
"""

from repro.harness.experiments import e12_rebalance as experiment_module


def test_e12(experiment):
    table = experiment(experiment_module)
    # Columns: period, policy, commit%, latency, requests, ships, msgs.
    off_rows = [row for row in table.rows if row[0] == "off"]
    assert len(off_rows) == 1
    off = off_rows[0]
    daemon_rows = [row for row in table.rows if row[0] != "off"]
    assert daemon_rows
    # The daemon-off row carries no policy and ships nothing.
    assert off[1] == "-" and off[5] == 0
    assert all(row[5] > 0 for row in daemon_rows)
    # Rebalancing lifts the sale commit rate...
    assert max(row[2] for row in daemon_rows) > off[2]
    # ...and cuts the on-demand request traffic.
    assert min(row[4] for row in daemon_rows) < off[4]
    # The quick preset sweeps at least two policies at one period.
    assert len({row[1] for row in daemon_rows}) >= 2
