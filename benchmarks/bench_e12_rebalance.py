"""Bench E12: regenerate the proactive-rebalancing ablation table.

See ``repro.harness.experiments.e12_rebalance`` for the experiment
design and EXPERIMENTS.md for the recorded comparison.
"""

from repro.harness.experiments import e12_rebalance as experiment_module


def test_e12(experiment):
    table = experiment(experiment_module)
    rows = {row[0]: row for row in table.rows}
    assert "off" in rows
    daemon_rows = [row for key, row in rows.items() if key != "off"]
    assert daemon_rows
    # Rebalancing lifts the sale commit rate...
    assert max(row[1] for row in daemon_rows) > rows["off"][1]
    # ...and cuts the on-demand request traffic.
    assert min(row[3] for row in daemon_rows) < rows["off"][3]
