"""Microbenchmark: experiment-harness wall-clock on the E6 sweep.

Times the e06 hot-spot sweep (site_counts x {lock, escrow, DvP}) three
ways and emits ``BENCH_micro_harness.json``:

* ``sequential_s``    — the plain in-process path (the only path the
  seed repo has);
* ``parallel_cold_s`` — the ``repro.harness.parallel`` engine with 4
  workers and an empty result cache (pure fan-out);
* ``parallel_warm_s`` — the same run again with the cache populated
  (re-runs only compute changed cells; here none changed).

``speedup`` is sequential/parallel_warm — the wall-clock win a repeat
sweep gets from the cached parallel harness; ``speedup_cold`` isolates
the multiprocessing fan-out alone. On the seed repo (no parallel
harness) only the sequential number is recorded.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_micro_harness.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro.harness.experiments import e06_hotspot as e06

JOBS = 4

SWEEP = {
    "site_counts": [4, 8, 12],
    "arrival_rate": 1.0,
    "duration": 2000.0,
}

SMOKE_SWEEP = {
    "site_counts": [1, 2],
    "arrival_rate": 0.1,
    "duration": 120.0,
}


def _params(sweep: dict) -> "e06.Params":
    return e06.Params(site_counts=list(sweep["site_counts"]),
                      arrival_rate=sweep["arrival_rate"],
                      duration=sweep["duration"])


def run_bench(sweep: dict | None = None, jobs: int = JOBS) -> dict:
    sweep = sweep or SWEEP
    params = _params(sweep)
    # Cold fan-out is bounded by the hardware: on a single-core box it
    # cannot beat sequential, so record what the workers had to work
    # with alongside the timings.
    payload: dict = {"bench": "micro_harness", "sweep": dict(sweep),
                     "jobs": jobs, "cpus": os.cpu_count()}

    start = time.perf_counter()
    table = e06.run(params)
    payload["sequential_s"] = round(time.perf_counter() - start, 3)
    assert table.rows, "sequential sweep produced no rows"

    try:
        from repro.harness import parallel
    except ImportError:
        payload["parallel"] = "unavailable"
        return payload

    payload["cells"] = len(e06.cells(params))
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold = parallel.GridEvaluator(
            jobs=jobs, cache=parallel.ResultCache(cache_dir))
        start = time.perf_counter()
        cold_table = e06.run(params, evaluate=cold)
        payload["parallel_cold_s"] = round(time.perf_counter() - start, 3)

        warm = parallel.GridEvaluator(
            jobs=jobs, cache=parallel.ResultCache(cache_dir))
        start = time.perf_counter()
        warm_table = e06.run(params, evaluate=warm)
        payload["parallel_warm_s"] = round(time.perf_counter() - start, 3)

        assert [r[:2] for r in cold_table.rows] == \
            [r[:2] for r in table.rows], "parallel rows diverge"
        assert warm_table.render() == cold_table.render(), \
            "cache replay diverges from computed results"
        payload["cache_hits_warm"] = warm.cache_hits
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload["speedup_cold"] = round(
        payload["sequential_s"] / max(payload["parallel_cold_s"], 1e-9), 2)
    payload["speedup"] = round(
        payload["sequential_s"] / max(payload["parallel_warm_s"], 1e-9), 2)
    return payload


def test_micro_harness_smoke():
    """CI smoke: tiny sweep; checks parallel/cached rows match."""
    payload = run_bench(SMOKE_SWEEP, jobs=2)
    assert payload["sequential_s"] > 0
    if payload.get("parallel") != "unavailable":
        assert payload["cache_hits_warm"] == payload["cells"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_micro_harness.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep (CI)")
    args = parser.parse_args(argv)
    payload = run_bench(SMOKE_SWEEP if args.smoke else SWEEP)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
