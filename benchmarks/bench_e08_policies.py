"""Bench E8: regenerate the redistribution-policies table.

See ``repro.harness.experiments.e08_policies`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e08_policies as experiment_module


def test_e8(experiment):
    table = experiment(experiment_module)
    by_policy = {row[0]: row for row in table.rows}
    assert "ask-all" in by_policy and "ask-few(1)" in by_policy
    # Asking one peer is cheaper in messages than broadcasting.
    assert by_policy["ask-few(1)"][3] < by_policy["ask-all"][3]
