"""Bounded-staleness read-view bench (PR 10; committed as
``BENCH_pr10.json``).

Four gates, one per claim the PR exists to produce:

1. **O(1) vs O(n)** — at a 100:1 read:write mix on >= 32 sites, every
   certificate-served view read pays **zero** redistribution messages
   (and view reads dominate the committed reads), while the exact
   fan-out baseline pays >= sites-1 messages per committed read.
2. **The certificate never overshoots** — across every view cell run,
   every accepted certificate's staleness is <= the reader's bound.
3. **WAN tail collapse** — on the multi-region topology at 100:1, the
   view cells' client-perceived read-decision p99 is at least 5x below
   the fan-out baseline's (a local certificate answers immediately;
   the exact drain pays two WAN crossings when it wins and the full
   timeout when it loses — at scale it mostly loses).
4. **Free when off** (full mode only) — with views disabled nothing
   pays: the E15 dvp availability cells re-run within 5% of the walls
   recorded in ``BENCH_pr9.json`` (plus a 0.5 s noise floor per cell
   sum — the recorded walls are sub-second, where scheduler jitter
   swamps percentages).

``--smoke`` runs gates 1-3 on the E16 quick preset (32 sites, shorter
horizon) and skips the wall-clock gate, per the repo convention that
CI never gates on wall time.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e16_reads.py [--out FILE]
    PYTHONPATH=src python benchmarks/bench_e16_reads.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import asdict

from repro.harness.experiments import e15_commit
from repro.harness.experiments.e16_reads import Params, _cell
from repro.metrics.stats import percentile_sorted

#: Float slack for staleness comparisons (mirrors the chaos oracles).
EPSILON = 1e-9

#: The read:write ratio the gates run at (the paper's read-mostly
#: regime; the experiment sweeps more).
RATIO = 100

#: Steady-state cutoff: reads submitted before this are warmup and not
#: scored. The view caches start cold and the first refresh needs
#: refresh_period + a WAN crossing (~24 virtual units) to land, so
#: early view reads lawfully fall back — a startup transient, not the
#: regime the gates compare.
WARMUP = 30.0


def _read_stats(collector, warmup: float = WARMUP) -> dict:
    """Read metrics for one cell's collector (post-warmup reads only)."""
    decided = [txn for txn in collector.results
               if txn.label.startswith(("estimate:", "audit:"))
               and txn.submitted_at >= warmup]
    reads = [txn for txn in decided if txn.committed]
    served = [txn for txn in reads
              if txn.view_reads and not txn.view_fallbacks]
    latencies = sorted(txn.latency for txn in reads)
    decided_latencies = sorted(txn.latency for txn in decided)
    return {
        "decided_reads": len(decided),
        "committed_reads": len(reads),
        "served": len(served),
        "served_msgs_max": max((txn.requests_sent for txn in served),
                               default=0),
        "fallback_or_exact": len(reads) - len(served),
        "msgs_per_read": (sum(txn.requests_sent for txn in reads)
                          / len(reads)) if reads else 0.0,
        "stale_max": max((cert.staleness for txn in served
                          for cert in txn.view_reads.values()),
                         default=0.0),
        "bound_violations": sum(
            1 for txn in served for cert in txn.view_reads.values()
            if cert.bound is not None
            and cert.staleness > cert.bound + EPSILON),
        "p50": percentile_sorted(latencies, 50) if latencies else 0.0,
        "p99": percentile_sorted(latencies, 99) if latencies else 0.0,
        #: Client-perceived decision tail: an aborted exact read still
        #: made its client wait the whole redistribution (usually the
        #: full timeout) before hearing "no". At scale the WAN fan-out
        #: baseline commits few or no reads, so the decision tail is
        #: the comparison that always exists.
        "p99_decided": (percentile_sorted(decided_latencies, 99)
                        if decided_latencies else 0.0),
    }


def run_read_cells(params: Params) -> tuple[list[str], dict]:
    """Gates 1-3 over the four (wan x mode) cells at RATIO."""
    failures: list[str] = []
    sites_n = max(params.site_counts)
    detail: dict = {"sites": sites_n, "ratio": RATIO, "cells": {}}
    stats: dict[tuple[bool, str], dict] = {}
    for wan in (False, True):
        for mode in ("view", "fanout"):
            key = f"{'wan' if wan else 'lan'}/{mode}"
            print(f"  cell {key} (n={sites_n}, {RATIO}:1)",
                  file=sys.stderr)
            _system, _frontend, collector = _cell(
                params, sites_n, wan, RATIO, mode)
            stats[(wan, mode)] = _read_stats(collector)
            detail["cells"][key] = stats[(wan, mode)]

    # Gate 1: O(1) vs O(n) messages.
    for wan in (False, True):
        where = "wan" if wan else "lan"
        view, fanout = stats[(wan, "view")], stats[(wan, "fanout")]
        if view["committed_reads"] == 0:
            failures.append(f"{where}: no committed view reads")
            continue
        if view["served_msgs_max"] != 0:
            failures.append(
                f"{where}: a certificate-served read sent "
                f"{view['served_msgs_max']} messages; the certified "
                "path must be message-free")
        if view["served"] * 2 < view["committed_reads"]:
            failures.append(
                f"{where}: views served only {view['served']} of "
                f"{view['committed_reads']} committed reads — the "
                "cache tier is not carrying the load")
        if fanout["committed_reads"] and \
                fanout["msgs_per_read"] < sites_n - 1:
            failures.append(
                f"{where}: fan-out baseline paid only "
                f"{fanout['msgs_per_read']:.1f} messages per read; "
                f"expected >= {sites_n - 1} (O(n) drain)")

    # Gate 2: staleness <= bound, everywhere views ran.
    for (wan, mode), cell_stats in stats.items():
        if mode == "view" and cell_stats["bound_violations"]:
            failures.append(
                f"{'wan' if wan else 'lan'}: "
                f"{cell_stats['bound_violations']} certificates "
                f"overshot their bound (max staleness "
                f"{cell_stats['stale_max']:.2f} vs {params.bound:g})")

    # Gate 3: WAN decision tail at least 5x better.
    view, fanout = stats[(True, "view")], stats[(True, "fanout")]
    if fanout["decided_reads"] == 0:
        failures.append("wan: fan-out baseline decided no reads — "
                        "nothing to compare the tail against")
    elif not view["p99_decided"] * 5.0 <= fanout["p99_decided"]:
        failures.append(
            f"wan: view decision p99 {view['p99_decided']:.2f} not 5x "
            f"below fan-out {fanout['p99_decided']:.2f}")
    return failures, detail


def gate_disabled_overhead(baseline_path: pathlib.Path
                           ) -> tuple[list[str], dict]:
    """Gate 4: views-off E15 dvp cells re-run within 5% of PR 9 walls."""
    failures: list[str] = []
    recorded = json.loads(baseline_path.read_text())
    params = e15_commit.Params()
    detail: dict = {"baseline": str(baseline_path), "cells": []}
    recorded_total = 0.0
    measured_total = 0.0
    for row in recorded["availability"]:
        sites_n = row["sites"]
        recorded_wall = row["stats"]["dvp"]["wall_s"]
        begin = time.perf_counter()
        e15_commit._run_one("dvp", params, sites_n)
        wall = time.perf_counter() - begin
        print(f"  dvp n={sites_n:3d}: {wall:.2f}s "
              f"(pr9 recorded {recorded_wall:.2f}s)", file=sys.stderr)
        detail["cells"].append({"sites": sites_n,
                                "recorded_s": recorded_wall,
                                "measured_s": round(wall, 3)})
        recorded_total += recorded_wall
        measured_total += wall
    allowed = max(recorded_total * 1.05, recorded_total + 0.5)
    detail["recorded_total_s"] = round(recorded_total, 3)
    detail["measured_total_s"] = round(measured_total, 3)
    detail["allowed_total_s"] = round(allowed, 3)
    if measured_total > allowed:
        failures.append(
            f"views-disabled path regressed: E15 dvp cells took "
            f"{measured_total:.2f}s vs {recorded_total:.2f}s recorded "
            f"in PR 9 (allowed {allowed:.2f}s)")
    return failures, detail


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_e16_reads.json")
    parser.add_argument("--smoke", action="store_true",
                        help="E16 quick preset, wall-clock gate "
                             "skipped — the CI reads job")
    parser.add_argument("--pr9", default=None,
                        help="BENCH_pr9.json path for the "
                             "disabled-overhead gate (default: next "
                             "to this script)")
    args = parser.parse_args(argv)

    params = Params.quick() if args.smoke else Params()
    begin = time.perf_counter()
    print(f"gates 1-3: read cells at {RATIO}:1 "
          f"(sites={max(params.site_counts)})", file=sys.stderr)
    read_failures, read_detail = run_read_cells(params)
    failures = list(read_failures)
    payload = {
        "bench": "e16_reads",
        "smoke": args.smoke,
        "params": asdict(params),
        "reads": read_detail,
        "gates": [
            "certificate-served reads pay 0 messages; fan-out pays "
            ">= sites-1 per read",
            "every accepted certificate's staleness <= its bound",
            "wan view read-decision p99 at least 5x below fan-out",
            "views disabled: E15 dvp walls within 5% of BENCH_pr9 "
            "(full mode only)",
        ],
    }
    if args.smoke:
        payload["disabled_overhead"] = "skipped (wall gates never "\
            "run in CI smoke)"
    else:
        baseline = (pathlib.Path(args.pr9) if args.pr9 else
                    pathlib.Path(__file__).parent / "BENCH_pr9.json")
        print("gate 4: views-disabled overhead vs BENCH_pr9",
              file=sys.stderr)
        overhead_failures, overhead_detail = gate_disabled_overhead(
            baseline)
        failures += overhead_failures
        payload["disabled_overhead"] = overhead_detail
    payload["wall_s"] = round(time.perf_counter() - begin, 1)
    payload["gate_failures"] = failures

    path = pathlib.Path(args.out)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path} ({payload['wall_s']:.0f}s)", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
