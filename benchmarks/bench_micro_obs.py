"""Microbenchmark: observability overhead on the E1 hot loop.

The structured trace/metrics layer (``repro.obs``) promises to be
zero-cost when disabled: every emission site caches the bus and guards
event construction behind ``if obs.enabled:``. This bench puts a
number on both sides of that promise, emitted as ``BENCH_micro_obs.json``
(committed as ``BENCH_pr3.json``):

* ``e1_disabled_s`` / ``e1_enabled_s`` — wall-clock of an E1-style
  cross-site-transfer hot loop (the workload behind the paper's
  non-blocking claim) with the bus left disabled vs. enabled with a
  full ring; ``e1_enabled_overhead`` is the relative cost of turning
  tracing on.
* ``audit_scenario`` — an unmodified re-run of
  ``bench_micro_audit.bench_scenario`` so ``scenario_wall_s`` compares
  directly against the pre-instrumentation number recorded in
  ``BENCH_pr1.json``: that ratio is the disabled-path overhead, gated
  at <= 5% by ``main``.

Every loop is timed best-of-``REPEATS`` after a warmup run: on a noisy
host the minimum is the defensible estimate of the code's cost (GC
scheduling and CPU contention only ever add time).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_micro_obs.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from bench_micro_audit import bench_scenario as audit_scenario

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.harness.experiments.e01_nonblocking import CrossSiteTransfers
from repro.metrics.collector import Collector
from repro.net.link import LinkConfig
from repro.workloads.base import WorkloadConfig, WorkloadDriver

SCENARIO = {
    "sites": ["W", "X", "Y", "Z"],
    "arrival_rate": 0.5,
    "duration": 1500.0,
    "total_per_item": 400,
    "settle": 60.0,
    "seed": 11,
}

#: Best-of-N timing; the loops are deterministic so the spread is pure
#: host noise.
REPEATS = 3

#: Disabled-path budget vs. the BENCH_pr1 baseline (acceptance gate).
MAX_DISABLED_OVERHEAD = 0.05


def run_hot_loop(scenario: dict, enable_obs: bool) -> dict:
    """One E1-style transfer run; returns wall time and evidence."""
    sites = list(scenario["sites"])
    system = DvPSystem(SystemConfig(
        sites=sites, seed=scenario["seed"], txn_timeout=15.0,
        link=LinkConfig(base_delay=2.0, jitter=1.0)))
    if enable_obs:
        system.sim.obs.enable()
    source = CrossSiteTransfers(sites)
    for site in sites:
        system.add_item(source.item_of(site), CounterDomain(),
                        total=scenario["total_per_item"])
    collector = Collector()
    driver = WorkloadDriver(
        system.sim, system, sites, source,
        WorkloadConfig(arrival_rate=scenario["arrival_rate"],
                       duration=scenario["duration"]), collector)
    driver.install()
    start = time.perf_counter()
    system.run_until(scenario["duration"])
    system.run_for(scenario["settle"])
    wall = time.perf_counter() - start
    system.auditor.assert_ok()
    assert collector.results, "hot loop decided no transactions"
    return {"wall_s": wall,
            "decided": len(collector.results),
            "events_emitted": system.sim.obs.emitted}


def bench_hot_loop(scenario: dict, repeats: int) -> dict:
    run_hot_loop(scenario, enable_obs=False)  # warmup
    runs = {mode: [run_hot_loop(scenario, enable_obs=mode == "enabled")
                   for _ in range(repeats)]
            for mode in ("disabled", "enabled")}
    for mode, results in runs.items():
        decided = {run["decided"] for run in results}
        assert len(decided) == 1, f"{mode} runs diverged: {decided}"
    assert runs["disabled"][0]["events_emitted"] == 0
    assert runs["enabled"][0]["events_emitted"] > 0
    disabled = min(run["wall_s"] for run in runs["disabled"])
    enabled = min(run["wall_s"] for run in runs["enabled"])
    return {
        "e1_disabled_s": round(disabled, 3),
        "e1_enabled_s": round(enabled, 3),
        "e1_enabled_overhead": round(enabled / disabled - 1.0, 3),
        "e1_decided": runs["disabled"][0]["decided"],
        "e1_events_emitted": runs["enabled"][0]["events_emitted"],
    }


def run_bench(scenario: dict | None = None,
              repeats: int = REPEATS) -> dict:
    scenario = scenario or SCENARIO
    payload = {"bench": "micro_obs", "scenario": dict(scenario),
               "repeats": repeats}
    payload.update(bench_hot_loop(scenario, repeats))
    audits = [audit_scenario() for _ in range(repeats)]
    best = min(audits, key=lambda run: run["scenario_wall_s"])
    payload["audit_scenario"] = best
    return payload


def check_against_baseline(payload: dict, baseline_path: str) -> str:
    """Compute the disabled-path overhead vs. BENCH_pr1; '' if absent."""
    path = pathlib.Path(baseline_path)
    if not path.exists():
        return ""
    baseline = json.loads(path.read_text())
    before = baseline["micro_audit"]["scenario_wall_s"]
    after = payload["audit_scenario"]["scenario_wall_s"]
    overhead = after / before - 1.0
    payload["disabled_overhead_vs_pr1"] = round(overhead, 3)
    verdict = "OK" if overhead <= MAX_DISABLED_OVERHEAD else "EXCEEDED"
    return (f"disabled-path overhead vs {path.name}: "
            f"{after:.3f}s / {before:.3f}s = {overhead:+.1%} "
            f"(budget {MAX_DISABLED_OVERHEAD:.0%}) {verdict}")


def test_micro_obs_smoke():
    """CI smoke: tiny loop, both modes, structural assertions only
    (wall-clock gates live in ``main`` — CI boxes are too noisy)."""
    payload = run_bench({"sites": ["W", "X", "Y"], "arrival_rate": 0.3,
                         "duration": 120.0, "total_per_item": 90,
                         "settle": 40.0, "seed": 11}, repeats=1)
    assert payload["e1_decided"] > 0
    assert payload["e1_events_emitted"] > 0
    assert payload["e1_disabled_s"] > 0
    assert payload["audit_scenario"]["scenario_committed"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_micro_obs.json")
    parser.add_argument("--baseline", default="BENCH_pr1.json",
                        help="prior bench JSON to gate the disabled "
                             "path against (default BENCH_pr1.json)")
    args = parser.parse_args(argv)
    payload = run_bench()
    verdict = check_against_baseline(payload, args.baseline)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    if verdict:
        print(verdict)
    overhead = payload.get("disabled_overhead_vs_pr1")
    if overhead is not None and overhead > MAX_DISABLED_OVERHEAD:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
