"""Bench E11: regenerate the hybrid-mode-crossover table.

See ``repro.harness.experiments.e11_hybrid`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e11_hybrid as experiment_module


def test_e11(experiment):
    table = experiment(experiment_module)
    rows = {(row[0], row[1]): row for row in table.rows}
    # DvP wins the update phase on latency and messages...
    assert rows[("dvp", "updates")][3] < rows[("central", "updates")][3]
    # ...central wins the read phase on commit rate...
    assert rows[("central", "reads")][2] > rows[("dvp", "reads")][2]
    # ...and hybrid matches (or beats) the winner in each phase.
    assert rows[("hybrid", "updates")][3] <= \
        rows[("central", "updates")][3]
    assert rows[("hybrid", "reads")][2] >= rows[("dvp", "reads")][2]
