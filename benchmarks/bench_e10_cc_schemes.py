"""Bench E10: regenerate the concurrency-control-schemes table.

See ``repro.harness.experiments.e10_cc_schemes`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e10_cc_schemes as experiment_module


def test_e10(experiment):
    table = experiment(experiment_module)
    rows = {(row[0], row[1]): row for row in table.rows}
    # Conc2 converts aborts into waits on its synchronous network.
    assert rows[("conc2", "sync")][2] >= rows[("conc1", "async")][2]
    # Conservation holds under every scheme/network combination.
    assert all(row[-1] == "yes" for row in table.rows)
    # Conc1 is sound on both networks (violations asserted zero).
    assert rows[("conc1", "async")][7] == 0
    assert rows[("conc1", "sync")][7] == 0
