"""Kernel scaling bench: sites × events, single-queue vs sharded (PR 6).

Two questions, answered with numbers in ``BENCH_kernel_scale.json``
(committed as ``BENCH_pr6.json``):

1. **Shard scaling** — the same site-local-chain + ring-hop workload
   (every site runs a dense local timer chain and mails a neighbour
   twice per virtual-time window) executed three ways per grid row:

   * ``single`` — one shard, one event queue: the classic kernel path,
     run through the same harness so the workload code is identical;
   * ``sharded_serial`` — the full barrier-round protocol over
     ``min(sites, 8)`` shards, still on one core (measures pure
     protocol overhead: outbox drains, horizon bookkeeping, rounds);
   * ``sharded_procs`` — the same shards split across forked worker
     processes (:func:`repro.sim.parallel.run_parallel`).

   The grid tops out at 128 sites / ~2M events. Determinism is
   asserted, not assumed: serial and process runs of the sharded plan
   must produce bit-identical fingerprints and step counts, and every
   mode must execute the same number of events. ``speedup`` is
   reported against ``single``; on a single-core host (``cores: 1``)
   process workers cannot win and the result records that honestly —
   the CI smoke only gates on determinism, never on wall time.

2. **Calendar-queue win** — the PR 5 ``bench_micro_net`` fanned-
   transfer scenario (bundling off: ~55k kernel events of link
   deliveries, timers and retransmissions) measured two ways against
   the binary heap the calendar queue replaced:

   * ``end_to_end`` — the full protocol run with each queue behind the
     kernel. Outcomes must match exactly (the calendar pops in the
     identical (time, priority, seq) order); the wall delta is small
     because protocol Python dominates per-event cost.
   * ``replay`` — the run's recorded *op trace* (every push / pop /
     pop_if_due / peek / cancel, in order) replayed against the bare
     queues: the queue's own cost on the real op distribution,
     isolated from the protocol. This is where the win must clear
     ``MIN_QUEUE_WIN``.

Timing is best-of-``REPEATS`` after warmup, like every bench here: the
loops are deterministic, so the minimum is the defensible estimate.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel_scale.py [--out FILE]
    PYTHONPATH=src python benchmarks/bench_kernel_scale.py --smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pathlib
import sys
import time

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.metrics.collector import Collector
from repro.net.link import LinkConfig
from repro.sim import kernel as kernel_module
from repro.sim.events import CalendarEventQueue, Event, HeapEventQueue
from repro.sim.parallel import run_parallel
from repro.sim.shard import ShardPlan
from repro.workloads.base import WorkloadConfig, WorkloadDriver

#: sites × duration rows; events ≈ sites × duration × 11 (a 0.1-period
#: local chain, a 2.0-period hop pulse, and the matching deliveries).
SCALE_GRID = [
    {"sites": 4, "duration": 400.0},        # ~18k events
    {"sites": 16, "duration": 400.0},       # ~70k events
    {"sites": 64, "duration": 600.0},       # ~420k events
    {"sites": 128, "duration": 1500.0},     # ~2.1M events
]

#: Shards per row (site-groups); workers never exceeds this.
MAX_SHARDS = 8

#: Cross-shard hop delay and the lookahead that admits it.
HOP_DELAY = 1.0
LOOKAHEAD = 0.5

CHAIN_PERIOD = 0.1
HOP_PERIOD = 2.0

REPEATS = 3

#: The calendar queue must beat the heap on the micro_net scenario's
#: replayed op trace by at least this fraction of wall time.
MIN_QUEUE_WIN = 0.05

#: The grid's largest row must really be at the promised scale.
MIN_TOP_SITES = 100
MIN_TOP_EVENTS = 1_000_000


class ChainAndHop:
    """The scaling workload: a shard program (see repro.sim.parallel).

    Per site: a local timer chain every ``CHAIN_PERIOD`` (the bulk of
    the events — all queue churn, no mail) and a pulse every
    ``HOP_PERIOD`` mailing a counter to the next site in the global
    ring (the cross-shard traffic that exercises barriers and the
    canonical mail order).
    """

    def __init__(self, sites: list[str], duration: float) -> None:
        self.sites = sites
        self.duration = duration
        self._counts: dict[int, dict[str, int]] = {}

    def build(self, sim, shard_id, sites, send):
        counts = {"local": 0, "hops_out": 0, "hops_in": 0}
        self._counts[shard_id] = counts
        ring = self.sites
        duration = self.duration

        def deliver(payload):
            counts["hops_in"] += 1

        for site in sites:
            def make_tick(site):
                def tick():
                    counts["local"] += 1
                    if sim.now + CHAIN_PERIOD <= duration:
                        sim.after(CHAIN_PERIOD, tick,
                                  label=f"tick:{site}")
                return tick

            def make_pulse(site):
                target = ring[(ring.index(site) + 1) % len(ring)]

                def pulse():
                    counts["hops_out"] += 1
                    send(target, HOP_DELAY, counts["hops_out"],
                         label=f"hop:{target}")
                    if sim.now + HOP_PERIOD <= duration:
                        sim.after(HOP_PERIOD, pulse,
                                  label=f"pulse:{site}")
                return pulse

            sim.at(0.0, make_tick(site), label=f"tick:{site}")
            sim.at(0.0, make_pulse(site), label=f"pulse:{site}")
        return deliver

    def collect(self, sim, shard_id):
        return dict(self._counts[shard_id])


def _site_names(count: int) -> list[str]:
    return [f"S{index}" for index in range(count)]


def _run_mode(sites: list[str], duration: float, shards: int,
              workers: int) -> dict:
    gc.collect()
    plan = ShardPlan.round_robin(sites, shards, LOOKAHEAD)
    program = ChainAndHop(sites, duration)
    start = time.perf_counter()
    result = run_parallel(plan, program, seed=1, workers=workers)
    wall = time.perf_counter() - start
    totals = {"local": 0, "hops_out": 0, "hops_in": 0}
    for summary in result.collected:
        for key in totals:
            totals[key] += summary[key]
    assert totals["hops_in"] == totals["hops_out"]
    return {
        "wall_s": wall,
        "events": result.steps,
        "rounds": result.rounds,
        "fingerprint": result.fingerprint,
        "workers": result.workers,
        "hops": totals["hops_in"],
    }


def bench_scale(grid: list[dict], workers: int, repeats: int) -> list[dict]:
    rows = []
    for cell in grid:
        sites = _site_names(cell["sites"])
        duration = cell["duration"]
        shards = min(cell["sites"], MAX_SHARDS)
        modes = {
            "single": (1, 0),
            "sharded_serial": (shards, 0),
            "sharded_procs": (shards, workers),
        }
        row = {"sites": cell["sites"], "duration": duration,
               "shards": shards}
        runs = {}
        for mode, (mode_shards, mode_workers) in modes.items():
            best = None
            for _ in range(repeats):
                result = _run_mode(sites, duration, mode_shards,
                                   mode_workers)
                if best is None or result["wall_s"] < best["wall_s"]:
                    best = result
            runs[mode] = best
        # Determinism and equivalence gates.
        assert runs["sharded_serial"]["fingerprint"] == \
            runs["sharded_procs"]["fingerprint"], \
            "sharded fingerprint diverged between serial and processes"
        events = {run["events"] for run in runs.values()}
        assert len(events) == 1, f"event counts diverged: {events}"
        row["events"] = events.pop()
        for mode, run in runs.items():
            row[mode] = {
                "wall_s": round(run["wall_s"], 3),
                "events_per_s": int(row["events"] / run["wall_s"]),
                "rounds": run["rounds"],
                "workers": run["workers"],
            }
        row["speedup_serial"] = round(
            runs["single"]["wall_s"] / runs["sharded_serial"]["wall_s"], 3)
        row["speedup_procs"] = round(
            runs["single"]["wall_s"] / runs["sharded_procs"]["wall_s"], 3)
        rows.append(row)
        print(f"  sites={row['sites']:>4} events={row['events']:>9,} "
              f"single={row['single']['wall_s']:.2f}s "
              f"sharded={row['sharded_serial']['wall_s']:.2f}s "
              f"procs={row['sharded_procs']['wall_s']:.2f}s "
              f"(speedup {row['speedup_procs']})", file=sys.stderr)
    return rows


# -- calendar vs heap on the micro_net scenario ---------------------------

#: One recorded queue op: ("push", time, priority) | ("pop", 0, 0) |
#: ("due", horizon, 0) | ("peek", 0, 0) | ("cancel", push_index, 0).
_OpTrace = list

class _Recorder:
    """Captures the exact queue-op sequence of one simulation run.

    A :class:`CalendarEventQueue` subclass logs every public queue call;
    ``Event.cancel`` is patched for the recording's duration to log
    which pushed event (by push index) was cancelled, since ``Event``
    is a slots dataclass and takes no per-instance wrapper. Strong refs
    to every pushed event keep ``id()`` keys unique for the whole run.
    """

    def __init__(self) -> None:
        self.ops: _OpTrace = []
        self._push_index: dict[int, int] = {}
        self._keep: list[Event] = []
        recorder = self

        class RecordingQueue(CalendarEventQueue):
            def push(self, time, action, priority=0, label=""):
                recorder.ops.append(("push", time, priority))
                event = super().push(time, action, priority, label)
                recorder._push_index[id(event)] = \
                    len(recorder._push_index)
                recorder._keep.append(event)
                return event

            def pop(self):
                recorder.ops.append(("pop", 0.0, 0))
                return super().pop()

            def pop_if_due(self, time):
                recorder.ops.append(("due", time, 0))
                return super().pop_if_due(time)

            def peek_time(self):
                recorder.ops.append(("peek", 0.0, 0))
                return super().peek_time()

        self.queue_factory = RecordingQueue

    def __enter__(self) -> "_Recorder":
        self._original_cancel = Event.cancel
        push_index, ops = self._push_index, self.ops
        original = self._original_cancel

        def recording_cancel(event):
            index = push_index.get(id(event))
            if index is not None:
                ops.append(("cancel", index, 0))
            original(event)

        Event.cancel = recording_cancel
        return self

    def __exit__(self, *exc) -> None:
        Event.cancel = self._original_cancel


def _noop() -> None:
    pass


def _replay(queue_factory, ops: _OpTrace) -> float:
    """Feed a recorded op trace to a bare queue; return the wall time."""
    gc.collect()
    queue = queue_factory()
    handles = []
    start = time.perf_counter()
    for kind, value, priority in ops:
        if kind == "push":
            handles.append(queue.push(value, _noop, priority))
        elif kind == "due":
            queue.pop_if_due(value)
        elif kind == "pop":
            queue.pop()
        elif kind == "cancel":
            handles[int(value)].cancel()
        else:
            queue.peek_time()
    return time.perf_counter() - start


def _run_micro_net(scenario: dict, queue_factory) -> dict:
    """The bench_micro_net fanned-transfer run (bundling off) with a
    chosen queue implementation behind the kernel's default."""
    gc.collect()
    from bench_micro_net import FannedTransfers
    original = kernel_module.EventQueue
    kernel_module.EventQueue = queue_factory
    try:
        sites = list(scenario["sites"])
        system = DvPSystem(SystemConfig(
            sites=sites, seed=scenario["seed"],
            txn_timeout=scenario["txn_timeout"],
            retransmit_period=scenario["retransmit_period"],
            link=LinkConfig(base_delay=2.0, jitter=1.0)))
        source = FannedTransfers(sites, scenario["src_items"],
                                 scenario["sink_items"],
                                 scenario["ops_per_txn"])
        for site in sites:
            peer_split = {peer: scenario["initial_per_peer"]
                          for peer in sites if peer != site}
            for index in range(scenario["src_items"]):
                system.add_item(f"acct_{site}_{index}", CounterDomain(),
                                split=peer_split)
            for index in range(scenario["sink_items"]):
                system.add_item(f"sink_{site}_{index}", CounterDomain(),
                                split={name: 1 for name in sites})
        collector = Collector()
        WorkloadDriver(
            system.sim, system, sites, source,
            WorkloadConfig(arrival_rate=scenario["arrival_rate"],
                           duration=scenario["duration"]),
            collector).install()
        start = time.perf_counter()
        system.run_until(scenario["duration"])
        system.run_for(scenario["settle"])
        wall = time.perf_counter() - start
        system.auditor.assert_ok()
        return {
            "wall_s": wall,
            "kernel_events": system.sim.steps,
            "decided": len(system.results),
            "committed": len(system.committed()),
            "ns_per_event": wall / system.sim.steps * 1e9,
        }
    finally:
        kernel_module.EventQueue = original


def bench_queue(scenario: dict, repeats: int) -> dict:
    _run_micro_net(scenario, CalendarEventQueue)     # warmup
    runs = {name: [_run_micro_net(scenario, factory)
                   for _ in range(repeats)]
            for name, factory in (("calendar", CalendarEventQueue),
                                  ("heap", HeapEventQueue))}
    payload = {"end_to_end": {}}
    for name, results in runs.items():
        # Identical schedules regardless of queue internals.
        structural = {(run["kernel_events"], run["decided"],
                       run["committed"]) for run in results}
        assert len(structural) == 1, f"{name} diverged: {structural}"
        summary = dict(min(results, key=lambda run: run["wall_s"]))
        summary["wall_s"] = round(summary["wall_s"], 3)
        summary["ns_per_event"] = round(summary["ns_per_event"])
        payload["end_to_end"][name] = summary
    end = payload["end_to_end"]
    assert end["calendar"]["kernel_events"] == \
        end["heap"]["kernel_events"]
    assert end["calendar"]["committed"] == end["heap"]["committed"]
    end["win"] = round(
        1.0 - end["calendar"]["wall_s"] / end["heap"]["wall_s"], 3)

    # Isolated queue cost: record one run's op trace, replay it.
    with _Recorder() as recorder:
        _run_micro_net(scenario, recorder.queue_factory)
    ops = recorder.ops
    replay = {}
    for name, factory in (("calendar", CalendarEventQueue),
                          ("heap", HeapEventQueue)):
        wall = min(_replay(factory, ops) for _ in range(repeats + 1))
        replay[name] = {"wall_s": round(wall, 3),
                        "ns_per_op": round(wall / len(ops) * 1e9)}
    replay["ops"] = len(ops)
    replay["pushes"] = sum(1 for op in ops if op[0] == "push")
    replay["cancels"] = sum(1 for op in ops if op[0] == "cancel")
    replay["win"] = round(1.0 - replay["calendar"]["wall_s"]
                          / replay["heap"]["wall_s"], 3)
    payload["replay"] = replay
    payload["queue_win"] = replay["win"]
    return payload


def test_kernel_scale_smoke():
    """CI smoke: a tiny grid row through all three modes (the in-bench
    asserts already check fingerprint and event-count agreement) plus a
    short queue comparison. Structural gates only — wall-clock gates
    live in ``main``, CI boxes are too noisy."""
    rows = bench_scale([{"sites": 8, "duration": 40.0}], workers=2,
                       repeats=1)
    row = rows[0]
    assert row["events"] > 0
    assert row["shards"] == 8
    assert row["sharded_procs"]["workers"] >= 1

    from bench_micro_net import SCENARIO
    queue = bench_queue({**SCENARIO, "duration": 120.0}, repeats=1)
    end = queue["end_to_end"]
    assert end["calendar"]["committed"] == end["heap"]["committed"] > 0
    assert queue["replay"]["pushes"] > 0
    assert queue["replay"]["ops"] > queue["replay"]["pushes"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_kernel_scale.json")
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N per cell (default: 1 for rows "
                             ">= 64 sites, otherwise REPEATS)")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid, 2 workers, determinism gates "
                             "only (the CI kernel-scale job)")
    args = parser.parse_args(argv)

    if args.smoke:
        grid = [{"sites": 8, "duration": 60.0}]
        workers = 2
        queue_scenario_duration = 150.0
    else:
        grid = SCALE_GRID
        workers = args.workers
        queue_scenario_duration = None

    print(f"scaling grid ({len(grid)} rows, workers={workers}):",
          file=sys.stderr)
    rows = []
    for cell in grid:
        repeats = (args.repeats if args.repeats is not None
                   else (1 if cell["sites"] >= 64 else REPEATS))
        rows.extend(bench_scale([cell], workers, repeats))

    from bench_micro_net import SCENARIO
    scenario = dict(SCENARIO)
    if queue_scenario_duration is not None:
        scenario["duration"] = queue_scenario_duration
    print("calendar vs heap on micro_net scenario:", file=sys.stderr)
    queue = bench_queue(scenario, repeats=1 if args.smoke else REPEATS)
    end = queue["end_to_end"]
    replay = queue["replay"]
    print(f"  end-to-end: calendar {end['calendar']['ns_per_event']} vs "
          f"heap {end['heap']['ns_per_event']} ns/event "
          f"(win {end['win']:.1%}, "
          f"{end['calendar']['kernel_events']:,} events)",
          file=sys.stderr)
    print(f"  op replay : calendar {replay['calendar']['ns_per_op']} vs "
          f"heap {replay['heap']['ns_per_op']} ns/op "
          f"(win {replay['win']:.1%}, {replay['ops']:,} ops)",
          file=sys.stderr)

    cores = os.cpu_count() or 1
    payload = {
        "bench": "kernel_scale",
        "cores": cores,
        "workers": workers,
        "scale": rows,
        "queue": queue,
        "notes": [
            ("speedup_procs is honest for this host: with one core, "
             "forked workers cannot beat the single process."
             if cores == 1 else
             "multi-core host: speedup_procs reflects real parallel "
             "execution."),
            ("all columns are same-host, same-session measurements; "
             "wall times recorded in earlier BENCH_pr*.json files came "
             "from different hosts and are not comparable."),
        ],
    }

    failures = []
    top = max(rows, key=lambda row: row["events"])
    if not args.smoke:
        if top["sites"] < MIN_TOP_SITES or top["events"] < MIN_TOP_EVENTS:
            failures.append(
                f"largest row too small: {top['sites']} sites / "
                f"{top['events']} events")
        if queue["queue_win"] < MIN_QUEUE_WIN:
            failures.append(
                f"calendar win {queue['queue_win']:.1%} below the "
                f"{MIN_QUEUE_WIN:.0%} gate")
        if cores > 1 and top["speedup_procs"] <= 1.0:
            failures.append(
                f"no parallel speedup on a {cores}-core host "
                f"({top['speedup_procs']})")

    path = pathlib.Path(args.out)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
