"""Bench E7: regenerate the full-read-cost table.

See ``repro.harness.experiments.e07_read_cost`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e07_read_cost as experiment_module


def test_e7(experiment):
    table = experiment(experiment_module)
    read_msgs = table.column("read msgs")
    update_msgs = table.column("update msgs")
    sites = table.column("sites")
    assert all(value == 0 for value in update_msgs)
    # Read message cost grows with the site count.
    assert read_msgs[-1] > read_msgs[0]
    assert read_msgs[-1] >= 2 * (sites[-1] - 1)
