"""Bench E5: regenerate the independent-recovery table.

See ``repro.harness.experiments.e05_recovery`` for the experiment design
and EXPERIMENTS.md for the recorded claim-vs-measured comparison.
"""

from repro.harness.experiments import e05_recovery as experiment_module


def test_e5(experiment):
    table = experiment(experiment_module)
    rows = {row[0]: row for row in table.rows}
    assert rows["dvp-one"][1] == 0
    assert rows["dvp-all"][1] == 0
    assert rows["2pc-reachable"][1] >= 1
    assert rows["2pc-cut-off"][1] >= 1
    assert rows["2pc-cut-off"][7] >= 1  # items still locked
