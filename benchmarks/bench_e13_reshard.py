"""Bench E13: regenerate the reshard-under-load table.

See ``repro.harness.experiments.e13_reshard`` for the experiment
design and docs/PARTITIONING.md for the migration protocol it stresses.
"""

from repro.harness.experiments import e13_reshard as experiment_module


def test_e13(experiment):
    table = experiment(experiment_module)
    # Columns: sites, reshard, before%, during%, after%, ships,
    # value moved, epochs, msgs.
    off_rows = [row for row in table.rows if row[1] == "off"]
    on_rows = [row for row in table.rows if row[1] == "join+leave"]
    assert off_rows and len(off_rows) == len(on_rows)
    # Without topology changes nothing migrates and no epoch bumps.
    assert all(row[5] == 0 and row[7] == 0 for row in off_rows)
    # A join plus a decommission is two epochs, and the decommission
    # drain always ships the leaver's fragments.
    assert all(row[7] == 2 for row in on_rows)
    assert all(row[5] > 0 and row[6] > 0 for row in on_rows)
    # The reshard must not collapse the commit rate: every phase stays
    # within 20 points of the undisturbed run at the same scale.
    for off, on in zip(off_rows, on_rows):
        for column in (2, 3, 4):
            assert on[column] >= off[column] - 20.0
