"""Shared benchmark plumbing.

Each bench runs one experiment's ``quick`` preset through
pytest-benchmark (a single round — these are end-to-end protocol
simulations, not microbenchmarks) and prints the regenerated table so
the run reproduces the report recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_experiment_benchmark(benchmark, module, quick: bool = True):
    """Benchmark an experiment module and print its table."""
    params = module.Params.quick() if quick else module.Params()

    def once():
        return module.run(params)

    table = benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    print(table.render())
    assert table.rows, "experiment produced no rows"
    return table


@pytest.fixture
def experiment(benchmark):
    def runner(module, quick: bool = True):
        return run_experiment_benchmark(benchmark, module, quick)
    return runner
