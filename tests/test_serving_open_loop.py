"""Open-loop arrivals: fingerprint equality and worker invariance.

The open-loop driver chains per-site timers lazily instead of
pre-materializing the horizon, but it must describe the *same* arrival
process: same per-site gap streams, same specs, same times. These
tests pin that equivalence and the sharded-kernel worker invariance
of the whole serving path.
"""

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.metrics.collector import Collector
from repro.serving import ServingConfig, ServingFrontend
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver

ITEMS = [f"flight{index}" for index in range(8)]


def run_driver(mode, seed=7, sites_n=4, rate=0.4, duration=40.0,
               shards=1, shard_workers=1):
    sites = [f"S{index}" for index in range(sites_n)]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=seed, shards=shards,
        shard_workers=shard_workers))
    for item in ITEMS:
        system.add_item(item, CounterDomain(), total=1000)
    config = WorkloadConfig(arrival_rate=rate, duration=duration,
                            zipf_skew=0.5, work=0.5,
                            mix=OpMix(reserve=0.7, cancel=0.3))
    driver = WorkloadDriver(system.sim, system, sites,
                            AirlineWorkload(ITEMS, config), config)
    installed = getattr(driver, f"install_{mode}")()
    assert installed > 0
    system.sim.run_until(duration + 60.0)
    return driver.collector


def fingerprint(collector):
    return sorted((r.label, r.site, round(r.submitted_at, 9),
                   r.outcome.name)
                  for r in collector.results)


class TestOpenLoopEquivalence:
    def test_matches_prescheduled_at_same_horizon(self):
        open_loop = run_driver("open_loop")
        prescheduled = run_driver("prescheduled")
        assert open_loop.submitted == prescheduled.submitted
        assert fingerprint(open_loop) == fingerprint(prescheduled)

    def test_deterministic_across_runs_and_seeds(self):
        assert fingerprint(run_driver("open_loop")) == \
            fingerprint(run_driver("open_loop"))
        assert fingerprint(run_driver("open_loop", seed=7)) != \
            fingerprint(run_driver("open_loop", seed=8))

    def test_equivalence_holds_on_sharded_kernel(self):
        open_loop = run_driver("open_loop", shards=2)
        prescheduled = run_driver("prescheduled", shards=2)
        assert fingerprint(open_loop) == fingerprint(prescheduled)


def run_serving(shard_workers, router="least-queue", seed=13):
    sites = [f"S{index}" for index in range(8)]
    system = DvPSystem(SystemConfig(
        sites=sites, seed=seed, shards=4, shard_workers=shard_workers,
        partitioner="hash", replicas=2))
    for item in ITEMS:
        system.add_item(item, CounterDomain(), total=10_000)
    config = WorkloadConfig(arrival_rate=0.8, duration=40.0,
                            zipf_skew=0.6, work=0.5,
                            mix=OpMix(reserve=0.7, cancel=0.3))
    collector = Collector()
    frontend = ServingFrontend(system, ServingConfig(
        router=router, max_inflight=2, max_depth=8,
        board_period=2.0), collector)
    driver = WorkloadDriver(system.sim, frontend, sites,
                            AirlineWorkload(ITEMS, config), config,
                            collector)
    frontend.start()
    driver.install_open_loop()
    system.sim.run_until(40.0)
    frontend.stop()
    system.sim.run_until(120.0)
    system.auditor.assert_ok()
    samples = sorted((s.site, round(s.arrived_at, 9),
                      round(s.dispatched_at, 9),
                      round(s.finished_at, 9), s.committed)
                     for s in frontend.samples)
    sheds = sorted((o.site, round(o.at, 9), o.reason)
                   for o in frontend.overloads)
    return samples, sheds, collector.submitted


class TestServingWorkerInvariance:
    def test_full_serving_path_is_worker_invariant(self):
        one_worker = run_serving(shard_workers=1)
        two_workers = run_serving(shard_workers=2)
        assert one_worker == two_workers

    def test_locality_router_is_worker_invariant(self):
        one_worker = run_serving(shard_workers=1, router="locality")
        two_workers = run_serving(shard_workers=2, router="locality")
        assert one_worker == two_workers
