"""Property-based tests (hypothesis) for the partition directory.

These pin the placement contracts docs/PARTITIONING.md relies on:

* consistent hashing moves minimally — a join only ever pulls items
  *toward* the joiner, a leave only moves the leaver's items, and the
  moved fraction on a join is ~1/(N+1), not a reshuffle;
* placement is a pure function of (item, site list, replicas) — no
  hidden state, no dependence on ``PYTHONHASHSEED``, identical across
  process boundaries (checked in a real subprocess with a different
  hash seed, and across :func:`repro.sim.parallel.run_parallel` forked
  workers);
* the directory's wire form round-trips exactly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import (
    ConsistentHashPartitioner,
    Directory,
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
    stable_hash,
)
from repro.sim.parallel import run_parallel
from repro.sim.shard import ShardPlan

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")

site_names = st.lists(
    st.text(alphabet="ABCDEFGHijklmn0123456789", min_size=1, max_size=6),
    min_size=2, max_size=8, unique=True)

item_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789:_",
            min_size=1, max_size=12),
    min_size=1, max_size=30, unique=True)

replica_counts = st.integers(min_value=1, max_value=3)


class TestConsistentHashMinimalMovement:
    @given(site_names, item_names, replica_counts)
    def test_join_only_pulls_items_toward_the_joiner(self, sites, items,
                                                     replicas):
        """Every ownership change on a join involves the joiner: the
        only site that may appear in a new owner set is the joiner, and
        it displaces at most one old owner per item."""
        partitioner = ConsistentHashPartitioner()
        joiner = "JOINER"
        before = tuple(sites)
        after = before + (joiner,)
        for item in items:
            old = set(partitioner.owners(item, before, replicas))
            new = set(partitioner.owners(item, after, replicas))
            assert new - old <= {joiner}
            assert len(old - new) <= 1
            if old != new:
                assert joiner in new

    @given(site_names, item_names, replica_counts)
    def test_leave_moves_only_the_leavers_items(self, sites, items,
                                                replicas):
        """Removing a site leaves every item it did not own untouched:
        the ring points of the survivors never move."""
        partitioner = ConsistentHashPartitioner()
        leaver = sites[0]
        before = tuple(sites)
        after = tuple(site for site in sites if site != leaver)
        for item in items:
            old = partitioner.owners(item, before, replicas)
            new = partitioner.owners(item, after, replicas)
            if leaver not in old:
                assert new == old

    def test_join_moves_about_one_nth_of_the_items(self):
        """The acceptance bound: an N -> N+1 join remaps ~1/(N+1) of
        single-owner items (allow 3x slack for hash variance)."""
        partitioner = ConsistentHashPartitioner()
        sites = tuple(f"S{index}" for index in range(16))
        items = [f"item{index}" for index in range(200)]
        before = {item: partitioner.owners(item, sites, 1)
                  for item in items}
        joined = sites + ("E0",)
        moved = sum(1 for item in items
                    if partitioner.owners(item, joined, 1) != before[item])
        assert 0 < moved <= 3 * len(items) / (len(sites) + 1)


class TestPlacementIsPure:
    @given(site_names, item_names, replica_counts,
           st.sampled_from(["hash", "range", "consistent"]))
    def test_fresh_instances_agree(self, sites, items, replicas, name):
        """Placement depends only on the inputs — two independently
        constructed partitioners of the same kind always agree."""
        first = make_partitioner(name)
        second = make_partitioner(name)
        for item in items:
            assert (first.owners(item, tuple(sites), replicas)
                    == second.owners(item, tuple(sites), replicas))

    @given(st.text(min_size=0, max_size=30))
    def test_stable_hash_is_blake2_not_builtin_hash(self, key):
        import hashlib
        expected = int.from_bytes(
            hashlib.blake2b(f"\x1f{key}".encode(), digest_size=8).digest(),
            "big")
        assert stable_hash(key) == expected

    @pytest.mark.parametrize("name", ["hash", "range", "consistent"])
    def test_owners_identical_across_hash_seeds(self, name):
        """The check PYTHONHASHSEED randomization would break if any
        placement path used builtin ``hash``: compute the same owner
        map in subprocesses pinned to two different hash seeds."""
        script = (
            "import json, sys\n"
            "from repro.core.partition import make_partitioner\n"
            "sites = tuple(f'S{i}' for i in range(7))\n"
            "p = make_partitioner(sys.argv[1])\n"
            "print(json.dumps({f'item{i}': p.owners(f'item{i}', sites, 2)"
            " for i in range(40)}))\n")
        outputs = []
        for hash_seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=SRC_DIR)
            proc = subprocess.run(
                [sys.executable, "-c", script, name],
                capture_output=True, text=True, env=env, check=True)
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]
        assert outputs[0]  # the map is non-trivial

    @pytest.mark.parametrize("workers", [0, 2])
    def test_owners_identical_across_forked_workers(self, workers):
        """Each forked shard worker re-derives the same placement map
        the parent computes — the sharded kernel's shard programs may
        resolve the directory independently on any process boundary."""
        sites = [f"S{index}" for index in range(6)]
        items = [f"item{index}" for index in range(25)]

        class PlacementProgram:
            def build(self, sim, shard_id, shard_sites, send):
                return lambda payload: None

            def collect(self, sim, shard_id):
                directory = Directory(make_partitioner("consistent"),
                                      sites, replicas=2)
                return {item: list(directory.owners(item))
                        for item in items}

        parent = Directory(make_partitioner("consistent"), sites,
                           replicas=2)
        expected = {item: list(parent.owners(item)) for item in items}
        plan = ShardPlan.round_robin(sites, 2, lookahead=1.0)
        result = run_parallel(plan, PlacementProgram(), seed=3,
                              workers=workers)
        assert len(result.collected) == 2
        for shard_map in result.collected:
            assert shard_map == expected


class TestDirectoryWireForm:
    @given(site_names,
           st.one_of(st.none(), replica_counts),
           st.integers(min_value=0, max_value=50),
           st.sampled_from(["all", "hash", "range", "consistent"]))
    @settings(max_examples=40)
    def test_encode_decode_round_trip(self, sites, replicas, epoch, name):
        directory = Directory(make_partitioner(name), sites,
                              replicas=replicas, epoch=epoch)
        clone = Directory.decode(directory.encode())
        assert clone.sites == directory.sites
        assert clone.replicas == directory.replicas
        assert clone.epoch == directory.epoch
        assert clone.partitioner.name == name
        for item in ("a", "zz", "item17"):
            assert clone.owners(item) == directory.owners(item)
        assert clone.encode() == directory.encode()

    def test_consistent_vnodes_survive_the_round_trip(self):
        directory = Directory(ConsistentHashPartitioner(vnodes=16),
                              ["A", "B"], replicas=1)
        clone = Directory.decode(directory.encode())
        assert clone.partitioner.vnodes == 16

    def test_decode_rejects_foreign_payloads(self):
        with pytest.raises(ValueError, match="dvp-directory/1"):
            Directory.decode({"format": "something-else"})


class TestOwnerSetShape:
    @given(site_names, item_names, replica_counts,
           st.sampled_from(["hash", "range", "consistent"]))
    def test_owners_are_distinct_sites_with_clamped_arity(
            self, sites, items, replicas, name):
        partitioner = make_partitioner(name)
        for item in items:
            owners = partitioner.owners(item, tuple(sites), replicas)
            assert len(owners) == min(replicas, len(sites))
            assert len(set(owners)) == len(owners)
            assert set(owners) <= set(sites)

    @given(site_names, item_names)
    def test_all_partitioner_is_the_seed_topology(self, sites, items):
        partitioner = make_partitioner("all")
        for item in items:
            assert partitioner.owners(item, tuple(sites), 1) \
                == tuple(sites)
