"""Unit tests for the fragment store and protocol message payloads."""

import pytest

from repro.core.domain import CounterDomain, DomainError
from repro.core.fragments import FragmentStore
from repro.core.messages import (
    READ_MODE,
    TRANSFER_MODE,
    DataRequest,
    TsAdvisory,
    VmAck,
    VmTransfer,
)
from repro.storage.pages import PageStore
from repro.storage.records import VmEntry


def build_store():
    pages = PageStore("A")
    store = FragmentStore("A", pages)
    store.register("x", CounterDomain(), 10)
    return store


class TestFragmentStore:
    def test_register_and_read(self):
        store = build_store()
        assert store.knows("x")
        assert not store.knows("y")
        assert store.value("x") == 10
        assert store.timestamp("x") == 0

    def test_register_validates_initial(self):
        pages = PageStore("A")
        store = FragmentStore("A", pages)
        with pytest.raises(DomainError):
            store.register("bad", CounterDomain(), -1)

    def test_write_validates_domain(self):
        store = build_store()
        with pytest.raises(DomainError):
            store.write("x", -5, lsn=1)

    def test_write_and_redo(self):
        store = build_store()
        store.write("x", 7, lsn=3)
        assert store.value("x") == 7
        assert not store.redo_write("x", 99, lsn=3)
        assert store.redo_write("x", 99, lsn=4)

    def test_stamping(self):
        store = build_store()
        store.stamp("x", 5)
        assert store.timestamp("x") == 5
        store.stamp_if_newer("x", 3)
        assert store.timestamp("x") == 5
        store.stamp_if_newer("x", 9)
        assert store.timestamp("x") == 9

    def test_reset_timestamps(self):
        store = build_store()
        store.stamp("x", 5)
        store.reset_timestamps()
        assert store.timestamp("x") == 0

    def test_snapshot(self):
        store = build_store()
        store.register("y", CounterDomain(), 3)
        assert store.snapshot() == {"x": 10, "y": 3}

    def test_items_iterates_registered(self):
        store = build_store()
        assert list(store.items()) == ["x"]

    def test_domain_lookup(self):
        store = build_store()
        assert isinstance(store.domain("x"), CounterDomain)


class TestMessages:
    def test_data_request_modes(self):
        read = DataRequest("t", "A", "x", READ_MODE, None, 1)
        transfer = DataRequest("t", "A", "x", TRANSFER_MODE, 5, 1)
        assert read.mode == "read"
        assert transfer.need == 5

    def test_messages_are_frozen(self):
        request = DataRequest("t", "A", "x", READ_MODE, None, 1)
        with pytest.raises(Exception):
            request.ts = 99  # type: ignore[misc]

    def test_vm_transfer_carries_piggyback(self):
        entry = VmEntry(dst="B", item="x", amount=5, channel_seq=1)
        transfer = VmTransfer(src="A", entry=entry, piggyback_ack=7, ts=3)
        assert transfer.piggyback_ack == 7
        assert transfer.entry.amount == 5

    def test_ack_fields(self):
        ack = VmAck(src="B", cumulative=4, ts=1)
        assert ack.cumulative == 4

    def test_advisory(self):
        assert TsAdvisory(ts=9).ts == 9
