"""Deeper integration tests for Conc2 on its synchronous network."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import (
    DecrementOp,
    IncrementOp,
    ReadFullOp,
    TransactionSpec,
)
from repro.harness.serial import check_serializable
from repro.metrics.collector import Collector
from repro.workloads.airline import AirlineWorkload
from repro.workloads.base import OpMix, WorkloadConfig, WorkloadDriver


def build(total=120, timeout=15.0, seed=43, split=None):
    system = DvPSystem(SystemConfig(
        sites=["A", "B", "C", "D"], seed=seed, cc="conc2",
        txn_timeout=timeout, sync_delay=1.0))
    if split is None:
        system.add_item("x", CounterDomain(), total=total)
    else:
        system.add_item("x", CounterDomain(), split=split)
    return system


class TestCrossSiteWaiting:
    def test_remote_honor_waits_for_lock(self):
        # B is the ONLY site with spare value, and a long-working
        # transaction holds B's fragment: the honoring Rds must queue
        # behind the worker instead of being refused (Conc2's
        # difference from Conc1), and the requester still commits.
        system = build(split={"A": 10, "B": 110})
        system.submit("B", TransactionSpec(
            ops=(DecrementOp("x", 1),), work=6.0))
        system.run_for(0.5)
        results = []
        system.submit("A", TransactionSpec(
            ops=(DecrementOp("x", 60),)), results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        # It had to wait for the worker's remaining work before B's
        # grant could even be created.
        assert results[0].latency >= 5.0
        system.auditor.assert_ok()

    def test_no_cc_aborts_under_contention(self):
        system = build()
        collector = Collector()
        workload_config = WorkloadConfig(
            arrival_rate=0.25, duration=120.0,
            mix=OpMix(reserve=0.5, cancel=0.5))
        source = AirlineWorkload(["x"], workload_config)
        WorkloadDriver(system.sim, system, list(system.sites), source,
                       workload_config, collector).install()
        system.run_for(400.0)
        reasons = collector.abort_reasons()
        assert reasons.get("locked", 0) == 0
        assert reasons.get("timestamp-refused", 0) == 0
        system.auditor.assert_ok()

    def test_serializable_under_heavy_contention(self):
        system = build(total=60, seed=44)
        collector = Collector()
        workload_config = WorkloadConfig(
            arrival_rate=0.35, duration=150.0,
            mix=OpMix(reserve=0.45, cancel=0.35, transfer=0.0, read=0.2))
        source = AirlineWorkload(["x"], workload_config)
        WorkloadDriver(system.sim, system, list(system.sites), source,
                       workload_config, collector).install()
        system.run_for(500.0)
        report = check_serializable(collector.results, {"x": 60},
                                    {"x": CounterDomain()})
        assert report.ok, (report.read_mismatches, report.negative_dips)
        system.auditor.assert_ok()

    def test_quiet_read_commits_under_conc2(self):
        system = build()
        results = []
        system.submit("A", TransactionSpec(
            ops=(ReadFullOp("x"),)), results.append)
        system.run_for(30.0)
        assert results and results[0].committed
        assert results[0].read_values["x"] == 120


class TestBroadcastAtInit:
    def test_requests_sent_before_locks_granted(self):
        system = build()
        # Deplete A so its next decrement needs remote value, then have
        # a worker hold A's lock: the Conc2 transaction broadcasts its
        # requests at initiation, so gathering overlaps the lock wait.
        system.submit("A", TransactionSpec(
            ops=(DecrementOp("x", 30),)))  # drains A's quota of 30
        system.run_for(5.0)
        system.submit("A", TransactionSpec(
            ops=(IncrementOp("x", 1),), work=4.0))  # lock holder
        system.run_for(0.5)
        results = []
        txn = system.sites["A"].submit(TransactionSpec(
            ops=(DecrementOp("x", 10),)), results.append)
        assert txn.requests_sent > 0  # broadcast happened immediately
        system.run_for(40.0)
        assert results and results[0].committed
        system.auditor.assert_ok()


class TestConc2Recovery:
    def test_crash_recover_under_conc2(self):
        system = build()
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 50),)))
        system.run_for(1.5)
        system.crash("B")
        system.run_for(10.0)
        report = system.recover("B")
        assert report.messages_needed == 0
        system.run_for(300.0)
        system.auditor.assert_ok()
