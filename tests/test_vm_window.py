"""Tests for the sliding-window variant of the Vm channel."""

import pytest

from repro.core.domain import CounterDomain
from repro.core.messages import VmAck, VmTransfer
from repro.core.system import DvPSystem, SystemConfig
from repro.core.transactions import DecrementOp, TransactionSpec
from repro.core.vm import VmManager
from repro.net.link import LinkConfig
from repro.sim.kernel import Simulator

from tests.test_vm import Harness


class WindowHarness(Harness):
    def __init__(self, window: int, retransmit_period: float = 5.0):
        super().__init__(retransmit_period)
        # Rebuild managers with a window.
        for name in ("A", "B"):
            old = self.managers[name]
            manager = VmManager(name, self.sim, send=old._send,
                                accept=old._accept,
                                clock_ts=old._clock_ts,
                                retransmit_period=retransmit_period,
                                window=window)
            self.managers[name] = manager


class TestWindow:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            VmManager("A", Simulator(), send=lambda d, p: None,
                      accept=lambda e, s: True, clock_ts=lambda: 1,
                      window=0)

    def test_only_window_entries_transmitted(self):
        h = WindowHarness(window=1)
        for amount in (1, 2, 3):
            h.send_value("A", "B", "x", amount)
        transfers = [payload for _s, _d, payload in h.wire
                     if isinstance(payload, VmTransfer)]
        assert len(transfers) == 1
        assert transfers[0].entry.channel_seq == 1

    def test_ack_slides_window_open(self):
        h = WindowHarness(window=1)
        for amount in (1, 2, 3):
            h.send_value("A", "B", "x", amount)
        h.flush()   # delivers #1, B accepts, acks
        h.flush()   # ack reaches A -> #2 transmits immediately
        h.flush()   # #2 delivered, acked
        h.flush()   # ack -> #3 transmits
        h.flush()
        h.flush()
        assert [entry.amount for _s, entry in h.accepted["B"]] == [1, 2, 3]
        assert h.managers["A"].unacked_count() == 0

    def test_out_of_window_entries_remain_live(self):
        h = WindowHarness(window=2)
        for amount in (1, 2, 3, 4, 5):
            h.send_value("A", "B", "x", amount)
        # All five are live Vm (logged) even though only two flew.
        assert h.managers["A"].unacked_count() == 5
        assert h.managers["A"].has_outstanding("x")

    def test_retransmit_respects_window(self):
        h = WindowHarness(window=2, retransmit_period=5.0)
        for amount in (1, 2, 3, 4):
            h.send_value("A", "B", "x", amount)
        h.wire.clear()  # everything lost
        h.sim.run_until(5.0)
        transfers = [payload for _s, _d, payload in h.wire
                     if isinstance(payload, VmTransfer)]
        assert sorted(t.entry.channel_seq for t in transfers) == [1, 2]

    def test_end_to_end_with_window_and_loss(self):
        system = DvPSystem(SystemConfig(
            sites=["A", "B", "C"], seed=33, txn_timeout=30.0,
            retransmit_period=2.0, vm_window=1,
            link=LinkConfig(base_delay=1.0, loss_probability=0.3)))
        system.add_item("x", CounterDomain(), total=90)
        results = []
        system.submit("A", TransactionSpec(ops=(DecrementOp("x", 70),)),
                      results.append)
        system.run_for(60.0)
        system.run_for(400.0)
        assert results
        system.auditor.assert_ok()
        for site in system.sites.values():
            assert site.vm.unacked_count() == 0
